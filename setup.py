"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works on offline hosts whose setuptools lacks the
``wheel`` package needed for PEP 660 editable builds.
"""

from setuptools import setup

setup()
