"""Aggregation statistics: mean and standard error of the mean.

The paper reports every score as ``mean ± standard error`` over 5 trials;
this module provides exactly that aggregation plus helpers for combining
aggregates across workflow systems (the "Overall" rows/columns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stderr(values: Sequence[float]) -> float:
    """Standard error of the mean (sample std with ddof=1, over sqrt(n)).

    A single observation has zero spread information; we report 0.0 for it,
    matching how the paper renders deterministic cells (e.g. ``25.0±0.0``).
    """
    n = len(values)
    if n == 0:
        raise ValueError("stderr of empty sequence")
    if n == 1:
        return 0.0
    mu = mean(values)
    var = sum((v - mu) ** 2 for v in values) / (n - 1)
    se = math.sqrt(var) / math.sqrt(n)
    # identical observations differ only by float round-off; report exact 0
    return 0.0 if se < 1e-9 else se


@dataclass(frozen=True)
class Aggregate:
    """Mean ± standard error over a set of observations."""

    mean: float
    stderr: float
    n: int

    def render(self, precision: int = 1) -> str:
        return f"{self.mean:.{precision}f}±{self.stderr:.{precision}f}"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Aggregate raw observations into :class:`Aggregate`."""
    return Aggregate(mean=mean(values), stderr=stderr(values), n=len(values))


def pool(aggregates: Iterable[Aggregate]) -> Aggregate:
    """Combine per-condition aggregates into an "Overall" aggregate.

    Follows the paper's convention: the overall mean is the unweighted mean
    of condition means, and the overall uncertainty is the standard error of
    those condition means (spread *across conditions*, which is why overall
    stderr in the paper's tables can exceed the per-condition stderr).
    """
    means = [a.mean for a in aggregates]
    if not means:
        raise ValueError("pool of empty aggregate sequence")
    return Aggregate(mean=mean(means), stderr=stderr(means), n=len(means))
