"""BLEU (bilingual evaluation understudy), sacrebleu-compatible.

Implements corpus and sentence BLEU with:

* mteval-13a tokenization (:mod:`repro.metrics.tokenizers`),
* clipped modified n-gram precision up to ``max_order`` (default 4),
* brevity penalty ``exp(1 - ref_len / hyp_len)`` for short hypotheses,
* the sacrebleu smoothing methods ``"exp"`` (default), ``"floor"``,
  ``"add-k"`` and ``"none"``.

Scores are in 0..100.  A hypothesis identical to its reference scores 100.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MetricError
from repro.metrics.tokenizers import clipped_matches, ngrams, tokenize_13a

DEFAULT_MAX_ORDER = 4


@dataclass
class BleuScore:
    """Full BLEU decomposition, mirroring sacrebleu's ``BLEUScore``."""

    score: float
    precisions: list[float]
    bp: float
    sys_len: int
    ref_len: int
    counts: list[int] = field(default_factory=list)
    totals: list[int] = field(default_factory=list)

    def __float__(self) -> float:
        return self.score

    def format(self) -> str:
        precs = "/".join(f"{p:.1f}" for p in self.precisions)
        return (
            f"BLEU = {self.score:.2f} {precs} "
            f"(BP = {self.bp:.3f} ratio = {self.sys_len / max(self.ref_len, 1):.3f} "
            f"hyp_len = {self.sys_len} ref_len = {self.ref_len})"
        )


def _segment_statistics(
    hypothesis: str, references: Sequence[str], max_order: int
) -> tuple[list[int], list[int], int, int]:
    """Per-segment clipped match counts, totals, and length bookkeeping."""
    hyp_tokens = tokenize_13a(hypothesis)
    ref_token_lists = [tokenize_13a(r) for r in references]
    sys_len = len(hyp_tokens)
    # closest reference length (ties broken toward the shorter, per mteval)
    ref_len = min(
        (abs(len(rt) - sys_len), len(rt)) for rt in ref_token_lists
    )[1]

    counts: list[int] = []
    totals: list[int] = []
    for order in range(1, max_order + 1):
        hyp_grams = ngrams(hyp_tokens, order) if sys_len >= order else Counter()
        merged_ref: Counter = Counter()
        for rt in ref_token_lists:
            for gram, c in ngrams(rt, order).items():
                merged_ref[gram] = max(merged_ref[gram], c)
        counts.append(clipped_matches(hyp_grams, merged_ref))
        totals.append(max(sys_len - order + 1, 0))
    return counts, totals, sys_len, ref_len


def _compute_score(
    counts: list[int],
    totals: list[int],
    sys_len: int,
    ref_len: int,
    smooth_method: str,
    smooth_value: float | None,
    max_order: int,
) -> BleuScore:
    precisions = [0.0] * max_order
    smooth_mteval = 1.0
    effective_order = max_order
    for n in range(max_order):
        if totals[n] == 0:
            # hypothesis shorter than the order: shrink the effective order
            effective_order = min(effective_order, n)
            continue
        if counts[n] == 0:
            if smooth_method == "exp":
                smooth_mteval *= 2.0
                precisions[n] = 100.0 / (smooth_mteval * totals[n])
            elif smooth_method == "floor":
                floor = 0.1 if smooth_value is None else smooth_value
                precisions[n] = 100.0 * floor / totals[n]
            elif smooth_method == "add-k":
                k = 1.0 if smooth_value is None else smooth_value
                precisions[n] = 100.0 * k / (totals[n] + k)
            else:  # "none"
                precisions[n] = 0.0
        else:
            if smooth_method == "add-k" and n > 0:
                k = 1.0 if smooth_value is None else smooth_value
                precisions[n] = 100.0 * (counts[n] + k) / (totals[n] + k)
            else:
                precisions[n] = 100.0 * counts[n] / totals[n]

    if effective_order == 0 or sys_len == 0 or ref_len == 0:
        # sys_len == 0: nothing was produced; ref_len == 0: nothing to
        # match, so smoothing must not fabricate a positive score
        bp = 0.0 if sys_len == 0 else _brevity_penalty(sys_len, ref_len)
        return BleuScore(0.0, precisions, bp, sys_len, ref_len, counts, totals)

    usable = precisions[:effective_order] if effective_order < max_order else precisions
    if any(p <= 0.0 for p in usable):
        score = 0.0
    else:
        log_avg = sum(math.log(p) for p in usable) / len(usable)
        score = math.exp(log_avg)
        score *= _brevity_penalty(sys_len, ref_len)
        score = min(score, 100.0)
    bp = _brevity_penalty(sys_len, ref_len)
    return BleuScore(score, precisions, bp, sys_len, ref_len, counts, totals)


def _brevity_penalty(sys_len: int, ref_len: int) -> float:
    if sys_len == 0:
        return 0.0
    if sys_len >= ref_len:
        return 1.0
    return math.exp(1.0 - ref_len / sys_len)


def corpus_bleu(
    hypotheses: Sequence[str],
    references: Sequence[Sequence[str]] | Sequence[str],
    *,
    max_order: int = DEFAULT_MAX_ORDER,
    smooth_method: str = "exp",
    smooth_value: float | None = None,
) -> BleuScore:
    """Corpus-level BLEU over parallel hypothesis/reference segments.

    ``references`` may be a flat list (one reference per hypothesis) or a
    list of reference lists (multi-reference).
    """
    if smooth_method not in ("exp", "floor", "add-k", "none"):
        raise MetricError(f"unknown BLEU smoothing method: {smooth_method!r}")
    if len(hypotheses) == 0:
        raise MetricError("corpus_bleu requires at least one segment")
    norm_refs: list[Sequence[str]] = []
    for ref in references:
        norm_refs.append([ref] if isinstance(ref, str) else list(ref))
    if len(norm_refs) != len(hypotheses):
        raise MetricError(
            f"got {len(hypotheses)} hypotheses but {len(norm_refs)} reference sets"
        )

    counts = [0] * max_order
    totals = [0] * max_order
    sys_len = ref_len = 0
    for hyp, refs in zip(hypotheses, norm_refs):
        if not refs:
            raise MetricError("every hypothesis needs at least one reference")
        c, t, sl, rl = _segment_statistics(hyp, refs, max_order)
        counts = [a + b for a, b in zip(counts, c)]
        totals = [a + b for a, b in zip(totals, t)]
        sys_len += sl
        ref_len += rl
    return _compute_score(
        counts, totals, sys_len, ref_len, smooth_method, smooth_value, max_order
    )


def bleu(
    hypothesis: str,
    reference: str | Sequence[str],
    *,
    max_order: int = DEFAULT_MAX_ORDER,
    smooth_method: str = "exp",
    smooth_value: float | None = None,
) -> float:
    """Sentence-level BLEU score (0..100) of ``hypothesis`` vs ``reference``."""
    refs = [reference] if isinstance(reference, str) else list(reference)
    return corpus_bleu(
        [hypothesis],
        [refs],
        max_order=max_order,
        smooth_method=smooth_method,
        smooth_value=smooth_value,
    ).score
