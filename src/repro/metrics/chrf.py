"""ChrF: character n-gram F-score (Popović 2015), sacrebleu-compatible.

Precision and recall are computed per character-n-gram order 1..6 (with
whitespace removed, sacrebleu's default) and combined into a per-order
F-beta score with beta=2; the final score is the arithmetic mean over
orders, scaled to 0..100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import MetricError
from repro.metrics.tokenizers import char_ngrams, clipped_matches

DEFAULT_CHAR_ORDER = 6
DEFAULT_BETA = 2.0


@dataclass
class ChrfScore:
    """ChrF decomposition: final score plus per-order F values."""

    score: float
    per_order_f: list[float]
    char_order: int
    beta: float

    def __float__(self) -> float:
        return self.score

    def format(self) -> str:
        return f"chrF{self.beta:g} = {self.score:.2f}"


def _order_statistics(
    hypothesis: str, references: Sequence[str], char_order: int, remove_whitespace: bool
) -> list[tuple[int, int, int]]:
    """Per order: (matches, hyp_count, ref_count) against the best reference."""
    stats: list[tuple[int, int, int]] = []
    for order in range(1, char_order + 1):
        hyp_grams = char_ngrams(hypothesis, order, remove_whitespace=remove_whitespace)
        best = (0, sum(hyp_grams.values()), 0)
        best_f = -1.0
        for ref in references:
            ref_grams = char_ngrams(ref, order, remove_whitespace=remove_whitespace)
            matches = clipped_matches(hyp_grams, ref_grams)
            h = sum(hyp_grams.values())
            r = sum(ref_grams.values())
            f = _fscore(matches, h, r, DEFAULT_BETA)
            if f > best_f:
                best_f = f
                best = (matches, h, r)
        stats.append(best)
    return stats


def _fscore(matches: int, hyp_count: int, ref_count: int, beta: float) -> float:
    precision = matches / hyp_count if hyp_count > 0 else 0.0
    recall = matches / ref_count if ref_count > 0 else 0.0
    if precision + recall == 0.0:
        return 0.0
    beta2 = beta * beta
    return (1.0 + beta2) * precision * recall / (beta2 * precision + recall)


def corpus_chrf(
    hypotheses: Sequence[str],
    references: Sequence[Sequence[str]] | Sequence[str],
    *,
    char_order: int = DEFAULT_CHAR_ORDER,
    beta: float = DEFAULT_BETA,
    remove_whitespace: bool = True,
) -> ChrfScore:
    """Corpus chrF: per-order statistics summed over segments, then F-mean."""
    if len(hypotheses) == 0:
        raise MetricError("corpus_chrf requires at least one segment")
    norm_refs: list[Sequence[str]] = []
    for ref in references:
        norm_refs.append([ref] if isinstance(ref, str) else list(ref))
    if len(norm_refs) != len(hypotheses):
        raise MetricError(
            f"got {len(hypotheses)} hypotheses but {len(norm_refs)} reference sets"
        )

    totals = [(0, 0, 0)] * char_order
    for hyp, refs in zip(hypotheses, norm_refs):
        if not refs:
            raise MetricError("every hypothesis needs at least one reference")
        seg = _order_statistics(hyp, refs, char_order, remove_whitespace)
        totals = [
            (tm + m, th + h, tr + r)
            for (tm, th, tr), (m, h, r) in zip(totals, seg)
        ]

    per_order_f: list[float] = []
    for matches, hyp_count, ref_count in totals:
        if hyp_count == 0 and ref_count == 0:
            continue
        per_order_f.append(_fscore(matches, hyp_count, ref_count, beta))
    score = 100.0 * (sum(per_order_f) / len(per_order_f)) if per_order_f else 0.0
    return ChrfScore(score, per_order_f, char_order, beta)


def chrf(
    hypothesis: str,
    reference: str | Sequence[str],
    *,
    char_order: int = DEFAULT_CHAR_ORDER,
    beta: float = DEFAULT_BETA,
    remove_whitespace: bool = True,
) -> float:
    """Sentence-level chrF score (0..100)."""
    refs = [reference] if isinstance(reference, str) else list(reference)
    return corpus_chrf(
        [hypothesis],
        [refs],
        char_order=char_order,
        beta=beta,
        remove_whitespace=remove_whitespace,
    ).score
