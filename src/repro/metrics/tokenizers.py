"""Tokenization for similarity metrics.

:func:`tokenize_13a` reimplements the mteval-v13a tokenizer used by
sacrebleu's default BLEU configuration: language-independent punctuation
splitting with special handling of periods/commas adjacent to digits.
It is what the paper's BLEU numbers are computed with.

The hot-path implementation is heavily cached: the single-character
punctuation rule runs through ``str.translate`` instead of a regex, and
multi-line texts tokenize line-by-line through a per-line LRU so the
thousands of near-identical corrupted artifacts scored during
calibration re-tokenize only the lines that changed.  Equivalence with
the literal rule-by-rule implementation (:func:`_tokenize_13a_reference`)
is property-tested in ``tests/test_metrics_tokenizers.py``.
"""

from __future__ import annotations

import re
from collections import Counter
from functools import lru_cache
from typing import Iterable, Sequence

# mteval-v13a language-independent tokenization patterns, applied in order.
_13A_RULES: list[tuple[re.Pattern[str], str]] = [
    # separate out punctuation (skip-able symbols and general punctuation)
    (re.compile(r"([\{-\~\[-\` -\&\(-\+\:-\@\/])"), r" \1 "),
    # separate period/comma unless both neighbours are digits
    (re.compile(r"([^0-9])([\.,])"), r"\1 \2 "),
    (re.compile(r"([\.,])([^0-9])"), r" \1 \2"),
    # separate dash when preceded by a digit
    (re.compile(r"([0-9])(-)"), r"\1 \2 "),
]

_ENTITY_MAP = {
    "&quot;": '"',
    "&amp;": "&",
    "&lt;": "<",
    "&gt;": ">",
}

# str.translate table equivalent to the first (single-character) rule:
# every char the class matches maps to itself wrapped in spaces.  A
# translate pass over the text is several times faster than a regex sub
# with a backreference template, and produces the identical string.
_RULE1_TABLE = {
    cp: f" {chr(cp)} " for cp in range(128) if _13A_RULES[0][0].match(chr(cp))
}


def _tokenize_flat(text: str) -> tuple[str, ...]:
    """Apply the 13a rules to a newline-free text."""
    for entity, char in _ENTITY_MAP.items():
        text = text.replace(entity, char)
    text = text.translate(_RULE1_TABLE)
    for pattern, repl in _13A_RULES[1:]:
        text = pattern.sub(repl, text)
    return tuple(text.split())


@lru_cache(maxsize=65536)
def _tokenize_segment(segment: str) -> tuple[str, ...]:
    """Per-line token cache (segments carry their boundary-space context)."""
    return _tokenize_flat(segment)


@lru_cache(maxsize=4096)
def tokenize_13a_cached(text: str) -> tuple[str, ...]:
    """LRU-cached 13a tokenization, returned as an immutable tuple.

    Multi-line texts tokenize line-by-line: every 13a rule is local (at
    most a two-character window) and line boundaries become plain spaces
    after the newline join, so tokenizing each line with an explicit
    space sentinel on its interior boundaries concatenates to exactly
    the whole-text token stream.  The per-line cache then turns
    re-tokenizing a corrupted artifact that shares most lines with its
    predecessor into a handful of dict hits.
    """
    text = text.replace("\r\n", "\n").replace("\r", "\n")
    if "\n" not in text:
        return _tokenize_segment(text)
    if "-\n" in text:
        # end-of-line hyphenation joins words across lines; the per-line
        # decomposition no longer applies, take the whole-text path
        return _tokenize_flat(text.replace("-\n", "").replace("\n", " "))
    lines = text.split("\n")
    last = len(lines) - 1
    tokens: list[str] = []
    for i, line in enumerate(lines):
        # interior boundaries get a space sentinel so the digit-context
        # rules see the same neighbour they would in the joined text;
        # the text's outer edges must stay contextless
        if i > 0:
            line = " " + line
        if i < last:
            line = line + " "
        tokens.extend(_tokenize_segment(line))
    return tuple(tokens)


def tokenize_13a(text: str) -> list[str]:
    """Tokenize ``text`` following the mteval-v13a conventions.

    Backed by :func:`tokenize_13a_cached`; returns a fresh list each
    call so callers may mutate the result without corrupting the cache.

    >>> tokenize_13a('engine.put(var, data)')
    ['engine', '.', 'put', '(', 'var', ',', 'data', ')']
    """
    return list(tokenize_13a_cached(text))


def _tokenize_13a_reference(text: str) -> list[str]:
    """The literal mteval-v13a algorithm, uncached and rule-by-rule.

    Kept as the ground truth the cached fast path is property-tested
    against; never used on a hot path.
    """
    text = text.replace("\r\n", "\n").replace("\r", "\n")
    # mteval: strip end-of-line hyphenation and join lines
    text = text.replace("-\n", "").replace("\n", " ")
    for entity, char in _ENTITY_MAP.items():
        text = text.replace(entity, char)
    for pattern, repl in _13A_RULES:
        text = pattern.sub(repl, text)
    return text.split()


def ngrams(tokens: Sequence[str], order: int) -> Counter:
    """Multiset of ``order``-grams over ``tokens`` (as tuples)."""
    if order <= 0:
        raise ValueError(f"n-gram order must be positive, got {order}")
    # zip of shifted slices emits the n-gram tuples at C speed (1-grams
    # included: zip over one slice yields 1-tuples, keeping keys uniform)
    return Counter(zip(*(tokens[i:] for i in range(order))))


def all_ngrams(tokens: Sequence[str], max_order: int) -> dict[int, Counter]:
    """N-gram multisets for every order 1..max_order."""
    return {n: ngrams(tokens, n) for n in range(1, max_order + 1)}


def char_ngrams(text: str, order: int, *, remove_whitespace: bool = True) -> Counter:
    """Character n-gram multiset, optionally ignoring all whitespace (chrF default)."""
    if remove_whitespace:
        text = "".join(text.split())
    return Counter(text[i : i + order] for i in range(len(text) - order + 1))


def clipped_matches(hyp: Counter, ref: Counter) -> int:
    """Sum of per-n-gram matches clipped to the reference count."""
    get = ref.get
    total = 0
    for gram, count in hyp.items():
        r = get(gram, 0)
        total += count if count < r else r
    return total


def token_count(texts: Iterable[str]) -> int:
    """Total 13a token count over an iterable of texts (usage accounting)."""
    return sum(len(tokenize_13a_cached(t)) for t in texts)
