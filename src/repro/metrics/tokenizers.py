"""Tokenization for similarity metrics.

:func:`tokenize_13a` reimplements the mteval-v13a tokenizer used by
sacrebleu's default BLEU configuration: language-independent punctuation
splitting with special handling of periods/commas adjacent to digits.
It is what the paper's BLEU numbers are computed with.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, Sequence

# mteval-v13a language-independent tokenization patterns, applied in order.
_13A_RULES: list[tuple[re.Pattern[str], str]] = [
    # separate out punctuation (skip-able symbols and general punctuation)
    (re.compile(r"([\{-\~\[-\` -\&\(-\+\:-\@\/])"), r" \1 "),
    # separate period/comma unless both neighbours are digits
    (re.compile(r"([^0-9])([\.,])"), r"\1 \2 "),
    (re.compile(r"([\.,])([^0-9])"), r" \1 \2"),
    # separate dash when preceded by a digit
    (re.compile(r"([0-9])(-)"), r"\1 \2 "),
]

_ENTITY_MAP = {
    "&quot;": '"',
    "&amp;": "&",
    "&lt;": "<",
    "&gt;": ">",
}


def tokenize_13a(text: str) -> list[str]:
    """Tokenize ``text`` following the mteval-v13a conventions.

    >>> tokenize_13a('engine.put(var, data)')
    ['engine', '.', 'put', '(', 'var', ',', 'data', ')']
    """
    text = text.replace("\r\n", "\n").replace("\r", "\n")
    # mteval: strip end-of-line hyphenation and join lines
    text = text.replace("-\n", "").replace("\n", " ")
    for entity, char in _ENTITY_MAP.items():
        text = text.replace(entity, char)
    for pattern, repl in _13A_RULES:
        text = pattern.sub(repl, text)
    return text.split()


def ngrams(tokens: Sequence[str], order: int) -> Counter:
    """Multiset of ``order``-grams over ``tokens`` (as tuples)."""
    if order <= 0:
        raise ValueError(f"n-gram order must be positive, got {order}")
    return Counter(tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1))


def all_ngrams(tokens: Sequence[str], max_order: int) -> dict[int, Counter]:
    """N-gram multisets for every order 1..max_order."""
    return {n: ngrams(tokens, n) for n in range(1, max_order + 1)}


def char_ngrams(text: str, order: int, *, remove_whitespace: bool = True) -> Counter:
    """Character n-gram multiset, optionally ignoring all whitespace (chrF default)."""
    if remove_whitespace:
        text = "".join(text.split())
    return Counter(text[i : i + order] for i in range(len(text) - order + 1))


def clipped_matches(hyp: Counter, ref: Counter) -> int:
    """Sum of per-n-gram matches clipped to the reference count."""
    return sum(min(count, ref[gram]) for gram, count in hyp.items())


def token_count(texts: Iterable[str]) -> int:
    """Total 13a token count over an iterable of texts (usage accounting)."""
    return sum(len(tokenize_13a(t)) for t in texts)
