"""Vectorized metric kernels: id-interned n-gram counting over numpy.

The compiled engine (:mod:`repro.metrics.compiled`) already tokenizes
and counts each reference once, but every *hypothesis* still pays a
Python ``Counter`` build plus a dict-intersection per n-gram order —
per-hypothesis Python overhead that dominates the score-heavy sweeps.

This module interns each reference's n-gram vocabulary once into
id-indexed numpy count arrays on the :class:`CompiledReference`
(token orders for BLEU, character orders for chrF) and scores a
hypothesis with a handful of vectorized array operations:

1. map the hypothesis symbols (13a tokens / codepoints) to small
   integer ids against the reference vocabulary — symbols the reference
   never saw get a sentinel id that cannot collide;
2. pack every n-gram into one ``int64`` code positionally
   (``code_n = code_{n-1} * base + id``, ``base = |vocab| + 1``), a
   bijection for all orders at once, so exact n-gram identity becomes
   integer equality;
3. match against the reference's sorted unique codes with
   ``np.searchsorted``, histogram with ``np.bincount``, and clip with
   ``np.minimum`` — the entire clipped-match computation for one order
   is three array ops instead of a Python loop.

Numerical identity is by construction: the kernels produce the exact
same integer match counts and totals as the ``Counter`` path and then
call the *same* ``_compute_score`` / ``_fscore`` arithmetic, so scores
are bit-equal to :func:`bleu_compiled` / :func:`chrf_compiled`
(property-tested in ``tests/test_metrics_kernels.py``).

When packed codes would overflow 63-bit integers (``base**order >=
2**62``, i.e. a reference with an enormous alphabet) or numpy is
unavailable, the kernel for that reference silently falls back to the
compiled path — same scores, the old speed.  ``REPRO_METRIC_KERNELS=0``
disables the vectorized path globally (the escape hatch the equivalence
tests use to produce reference grids).

:func:`score_batch` scores a whole group of completions against one
target in a single call — the unit the :class:`ScoringPool` workers and
the inline path operate on.  Its kernel backends
:func:`bleu_kernel_batch` / :func:`chrf_kernel_batch` go further than
amortizing reference compilation: all hypotheses are concatenated (with
out-of-vocabulary sentinel separators, which can never match a
reference n-gram) into **one** id array, packed once per order, and the
per-hypothesis clipped matches come out of a single fused
``np.bincount`` over ``(gram id, hypothesis)`` keys — the numpy
per-call overhead that dominates short hypotheses is paid once per
*group* per order instead of once per hypothesis.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Sequence

try:  # numpy is a baked-in dependency, but degrade gracefully without it
    import numpy as np
except ImportError:  # pragma: no cover - environment without numpy
    np = None  # type: ignore[assignment]

from repro.errors import MetricError
from repro.metrics.bleu import DEFAULT_MAX_ORDER, _compute_score
from repro.metrics.chrf import DEFAULT_BETA, DEFAULT_CHAR_ORDER, _fscore
from repro.metrics.compiled import (
    CompiledReference,
    bleu_compiled,
    chrf_compiled,
    compile_reference,
)
from repro.metrics.tokenizers import tokenize_13a_cached

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scorers import Score

# packed codes live in int64; reserve a sign bit and one headroom bit
_CODE_LIMIT = 2**62


def kernels_enabled() -> bool:
    """Whether the vectorized path is active (numpy + not opted out)."""
    return np is not None and os.environ.get("REPRO_METRIC_KERNELS", "") != "0"


def _pack_codes(ids: "np.ndarray", base: int, max_order: int) -> list:
    """Per-order arrays of packed n-gram codes (base-``base`` positional).

    ``out[n-1][i]`` is the integer code of the n-gram starting at ``i``;
    the packing is a bijection (every digit is ``< base``), so two
    n-grams share a code iff they are equal symbol-for-symbol.
    """
    out = [ids]
    codes = ids
    for order in range(2, max_order + 1):
        codes = codes[:-1] * base + ids[order - 1 :]
        out.append(codes)
    return out


def _clipped_counts(codes, vocab) -> int:
    """Vectorized clipped-match count of ``codes`` against one order's vocab."""
    uniq, ref_counts = vocab
    if len(codes) == 0 or len(uniq) == 0:
        return 0
    idx = np.searchsorted(uniq, codes)
    np.clip(idx, 0, len(uniq) - 1, out=idx)
    valid = uniq[idx] == codes
    if not valid.any():
        return 0
    hyp_counts = np.bincount(idx[valid], minlength=len(uniq))
    return int(np.minimum(hyp_counts, ref_counts).sum())


def _concat_with_separators(ids_list: list, base: int, max_order: int):
    """All hypotheses as one id array, plus per-position ownership.

    ``max_order - 1`` out-of-vocabulary sentinel digits (``base - 1``,
    an id no reference symbol carries) separate consecutive hypotheses,
    so any n-gram spanning a boundary contains a sentinel and can never
    equal a reference code — it contributes nothing, which makes the
    start-position ownership attribution safe for every counted gram.
    """
    n = len(ids_list)
    sep_len = max_order - 1
    sep_ids = np.full(sep_len, base - 1, dtype=np.int64)
    parts: list = []
    owners: list = []
    for h, ids in enumerate(ids_list):
        parts.append(ids)
        owners.append(np.full(len(ids), h, dtype=np.int64))
        if sep_len and h < n - 1:
            parts.append(sep_ids)
            owners.append(np.full(sep_len, h, dtype=np.int64))
    if not parts:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(parts), np.concatenate(owners)


def _batch_clipped_counts(codes, owner, vocab, n: int):
    """Per-hypothesis clipped matches of one order, in one fused bincount.

    The ``(gram id, hypothesis)`` pair is folded into a single integer
    key, histogrammed once, reshaped to a ``(grams, hypotheses)`` count
    matrix, clipped against the reference counts column-wise, and summed
    — the whole order for the whole group is a handful of array ops.
    """
    uniq, ref_counts = vocab
    if len(codes) == 0 or len(uniq) == 0:
        return np.zeros(n, dtype=np.int64)
    idx = np.searchsorted(uniq, codes)
    np.clip(idx, 0, len(uniq) - 1, out=idx)
    valid = uniq[idx] == codes
    if not valid.any():
        return np.zeros(n, dtype=np.int64)
    key = idx[valid] * n + owner[: len(codes)][valid]
    counts = np.bincount(key, minlength=len(uniq) * n).reshape(len(uniq), n)
    return np.minimum(counts, ref_counts[:, None]).sum(axis=0)


class _TokenKernel:
    """Interned token n-gram vocabulary of one reference (BLEU side)."""

    __slots__ = ("vocab", "base", "orders")

    def __init__(self, tokens: Sequence[str], max_order: int) -> None:
        vocab: dict[str, int] = {}
        for token in tokens:
            if token not in vocab:
                vocab[token] = len(vocab)
        self.vocab = vocab
        self.base = len(vocab) + 1  # +1: the out-of-vocabulary sentinel digit
        if self.base**max_order >= _CODE_LIMIT:
            raise OverflowError("packed token codes would overflow int64")
        ids = np.fromiter(
            (vocab[token] for token in tokens), dtype=np.int64, count=len(tokens)
        )
        self.orders = []
        for codes in _pack_codes(ids, self.base, max_order):
            self.orders.append(np.unique(codes, return_counts=True))

    def __getstate__(self):  # __slots__ classes need explicit pickle state
        return (self.vocab, self.base, self.orders)

    def __setstate__(self, state) -> None:
        self.vocab, self.base, self.orders = state

    def stats(self, hyp_tokens: Sequence[str]) -> tuple[list[int], list[int]]:
        """Per-order (clipped matches, hypothesis n-gram totals) for BLEU."""
        sentinel = len(self.vocab)
        get = self.vocab.get
        ids = np.fromiter(
            (get(token, sentinel) for token in hyp_tokens),
            dtype=np.int64,
            count=len(hyp_tokens),
        )
        counts: list[int] = []
        totals: list[int] = []
        for codes, vocab in zip(_pack_codes(ids, self.base, len(self.orders)),
                                self.orders):
            counts.append(_clipped_counts(codes, vocab))
            totals.append(len(codes))
        return counts, totals

    def batch_stats(self, hyp_token_lists: Sequence[Sequence[str]]):
        """Per-order (matches, totals) arrays over a whole hypothesis group.

        Index ``[order][h]`` gives hypothesis ``h``'s clipped matches /
        n-gram total for that order — the same integers ``stats`` would
        produce per hypothesis, computed with one set of array ops per
        order for the entire group.
        """
        sentinel = len(self.vocab)
        get = self.vocab.get
        ids_list = [
            np.fromiter(
                (get(token, sentinel) for token in tokens),
                dtype=np.int64,
                count=len(tokens),
            )
            for tokens in hyp_token_lists
        ]
        n = len(ids_list)
        max_order = len(self.orders)
        cat, owner = _concat_with_separators(ids_list, self.base, max_order)
        lengths = np.fromiter(
            (len(ids) for ids in ids_list), dtype=np.int64, count=n
        )
        counts = []
        totals = []
        for order, (codes, vocab) in enumerate(
            zip(_pack_codes(cat, self.base, max_order), self.orders), start=1
        ):
            counts.append(_batch_clipped_counts(codes, owner, vocab, n))
            totals.append(np.maximum(lengths - order + 1, 0))
        return counts, totals


class _CharKernel:
    """Interned character n-gram vocabulary of one reference (chrF side)."""

    __slots__ = ("alphabet", "base", "remove_whitespace", "orders", "totals")

    def __init__(self, text: str, char_order: int, remove_whitespace: bool) -> None:
        self.remove_whitespace = remove_whitespace
        codepoints = self._codepoints(text)
        self.alphabet = np.unique(codepoints)
        self.base = len(self.alphabet) + 1
        if self.base**char_order >= _CODE_LIMIT:
            raise OverflowError("packed char codes would overflow int64")
        ids = np.searchsorted(self.alphabet, codepoints)
        self.orders = []
        self.totals: list[int] = []
        for codes in _pack_codes(ids, self.base, char_order):
            self.orders.append(np.unique(codes, return_counts=True))
            self.totals.append(len(codes))

    def __getstate__(self):
        return (self.alphabet, self.base, self.remove_whitespace,
                self.orders, self.totals)

    def __setstate__(self, state) -> None:
        (self.alphabet, self.base, self.remove_whitespace,
         self.orders, self.totals) = state

    def _codepoints(self, text: str) -> "np.ndarray":
        if self.remove_whitespace:
            text = "".join(text.split())
        # surrogatepass: lone surrogates must round-trip, not raise — the
        # Counter path counts them like any other character
        raw = text.encode("utf-32-le", "surrogatepass")
        return np.frombuffer(raw, dtype=np.uint32).astype(np.int64)

    def _map_ids(self, codepoints: "np.ndarray") -> "np.ndarray":
        if len(self.alphabet) == 0:
            # empty reference alphabet: every hypothesis char is unknown
            return np.zeros(len(codepoints), dtype=np.int64)
        ids = np.searchsorted(self.alphabet, codepoints)
        np.clip(ids, 0, len(self.alphabet) - 1, out=ids)
        ids[self.alphabet[ids] != codepoints] = len(self.alphabet)  # sentinel
        return ids

    def stats(self, hypothesis: str) -> list[tuple[int, int, int]]:
        """Per-order (matches, hyp total, ref total) for the chrF F-score."""
        ids = self._map_ids(self._codepoints(hypothesis))
        out: list[tuple[int, int, int]] = []
        for codes, vocab, ref_total in zip(
            _pack_codes(ids, self.base, len(self.orders)), self.orders, self.totals
        ):
            out.append((_clipped_counts(codes, vocab), len(codes), ref_total))
        return out

    def batch_stats(self, hypotheses: Sequence[str]):
        """Per-order (matches, hyp totals, ref total) over a whole group.

        ``[order]`` holds two arrays indexed by hypothesis plus the
        shared reference total — the same integers ``stats`` produces,
        one fused set of array ops per order for the entire group.
        """
        ids_list = [self._map_ids(self._codepoints(hyp)) for hyp in hypotheses]
        n = len(ids_list)
        char_order = len(self.orders)
        cat, owner = _concat_with_separators(ids_list, self.base, char_order)
        lengths = np.fromiter(
            (len(ids) for ids in ids_list), dtype=np.int64, count=n
        )
        out = []
        for order, (codes, vocab, ref_total) in enumerate(
            zip(_pack_codes(cat, self.base, char_order), self.orders, self.totals),
            start=1,
        ):
            matches = _batch_clipped_counts(codes, owner, vocab, n)
            out.append((matches, np.maximum(lengths - order + 1, 0), ref_total))
        return out


def _token_kernel(ref: CompiledReference, max_order: int) -> _TokenKernel | None:
    """The reference's interned token kernel (built once, memoized).

    Returns ``None`` when vectorization is unsupported for this
    reference (packed-code overflow) — callers fall back to the
    compiled path, which is numerically identical.
    """
    key = ("token", max_order)
    kernel = ref._kernels.get(key)
    if kernel is None:
        try:
            kernel = _TokenKernel(ref.tokens, max_order)
        except OverflowError:
            kernel = False
        ref._kernels[key] = kernel
    return kernel if kernel is not False else None


def _char_kernel(
    ref: CompiledReference, char_order: int, remove_whitespace: bool
) -> _CharKernel | None:
    key = ("char", char_order, remove_whitespace)
    kernel = ref._kernels.get(key)
    if kernel is None:
        try:
            kernel = _CharKernel(ref.text, char_order, remove_whitespace)
        except OverflowError:
            kernel = False
        ref._kernels[key] = kernel
    return kernel if kernel is not False else None


def bleu_kernel(
    hypothesis: str,
    reference: CompiledReference | str,
    *,
    max_order: int = DEFAULT_MAX_ORDER,
    smooth_method: str = "exp",
    smooth_value: float | None = None,
) -> float:
    """Sentence BLEU via the vectorized kernel (bit-equal to compiled).

    The clipped match counts and totals are exact integers computed by
    array operations instead of ``Counter`` intersections; the score
    combination is the shared ``_compute_score``, so the result is
    bit-identical to :func:`~repro.metrics.compiled.bleu_compiled`.
    """
    if smooth_method not in ("exp", "floor", "add-k", "none"):
        raise MetricError(f"unknown BLEU smoothing method: {smooth_method!r}")
    ref = compile_reference(reference) if isinstance(reference, str) else reference
    kernel = _token_kernel(ref, max_order) if kernels_enabled() else None
    if kernel is None:
        return bleu_compiled(
            hypothesis,
            ref,
            max_order=max_order,
            smooth_method=smooth_method,
            smooth_value=smooth_value,
        )
    hyp_tokens = tokenize_13a_cached(hypothesis)
    counts, totals = kernel.stats(hyp_tokens)
    return _compute_score(
        counts, totals, len(hyp_tokens), ref.ref_len,
        smooth_method, smooth_value, max_order,
    ).score


def chrf_kernel(
    hypothesis: str,
    reference: CompiledReference | str,
    *,
    char_order: int = DEFAULT_CHAR_ORDER,
    beta: float = DEFAULT_BETA,
    remove_whitespace: bool = True,
) -> float:
    """Sentence chrF via the vectorized kernel (bit-equal to compiled)."""
    ref = compile_reference(reference) if isinstance(reference, str) else reference
    kernel = (
        _char_kernel(ref, char_order, remove_whitespace)
        if kernels_enabled()
        else None
    )
    if kernel is None:
        return chrf_compiled(
            hypothesis,
            ref,
            char_order=char_order,
            beta=beta,
            remove_whitespace=remove_whitespace,
        )
    per_order_f: list[float] = []
    for matches, hyp_count, ref_count in kernel.stats(hypothesis):
        if hyp_count == 0 and ref_count == 0:
            continue
        per_order_f.append(_fscore(matches, hyp_count, ref_count, beta))
    return 100.0 * (sum(per_order_f) / len(per_order_f)) if per_order_f else 0.0


def bleu_kernel_batch(
    hypotheses: Sequence[str],
    reference: CompiledReference | str,
    *,
    max_order: int = DEFAULT_MAX_ORDER,
    smooth_method: str = "exp",
    smooth_value: float | None = None,
) -> list[float]:
    """Sentence BLEU for a whole hypothesis group (bit-equal per element).

    One tokenization pass per hypothesis, then one set of vectorized
    array operations per order for the *entire group* — the per-call
    numpy overhead that makes single-hypothesis kernels a wash on short
    references is amortized across the batch.  Element ``i`` is exactly
    ``bleu_kernel(hypotheses[i], reference, ...)``.
    """
    if smooth_method not in ("exp", "floor", "add-k", "none"):
        raise MetricError(f"unknown BLEU smoothing method: {smooth_method!r}")
    ref = compile_reference(reference) if isinstance(reference, str) else reference
    kernel = _token_kernel(ref, max_order) if kernels_enabled() else None
    if kernel is None:
        return [
            bleu_compiled(
                hyp,
                ref,
                max_order=max_order,
                smooth_method=smooth_method,
                smooth_value=smooth_value,
            )
            for hyp in hypotheses
        ]
    if not hypotheses:
        return []
    token_lists = [tokenize_13a_cached(hyp) for hyp in hypotheses]
    counts, totals = kernel.batch_stats(token_lists)
    return [
        _compute_score(
            [int(order_counts[i]) for order_counts in counts],
            [int(order_totals[i]) for order_totals in totals],
            len(token_lists[i]),
            ref.ref_len,
            smooth_method,
            smooth_value,
            max_order,
        ).score
        for i in range(len(hypotheses))
    ]


def chrf_kernel_batch(
    hypotheses: Sequence[str],
    reference: CompiledReference | str,
    *,
    char_order: int = DEFAULT_CHAR_ORDER,
    beta: float = DEFAULT_BETA,
    remove_whitespace: bool = True,
) -> list[float]:
    """Sentence chrF for a whole hypothesis group (bit-equal per element)."""
    ref = compile_reference(reference) if isinstance(reference, str) else reference
    kernel = (
        _char_kernel(ref, char_order, remove_whitespace)
        if kernels_enabled()
        else None
    )
    if kernel is None:
        return [
            chrf_compiled(
                hyp,
                ref,
                char_order=char_order,
                beta=beta,
                remove_whitespace=remove_whitespace,
            )
            for hyp in hypotheses
        ]
    if not hypotheses:
        return []
    stats = kernel.batch_stats(hypotheses)
    out: list[float] = []
    for i in range(len(hypotheses)):
        per_order_f: list[float] = []
        for matches, hyp_totals, ref_total in stats:
            hyp_count = int(hyp_totals[i])
            if hyp_count == 0 and ref_total == 0:
                continue
            per_order_f.append(_fscore(int(matches[i]), hyp_count, ref_total, beta))
        out.append(
            100.0 * (sum(per_order_f) / len(per_order_f)) if per_order_f else 0.0
        )
    return out


def score_batch(
    completions: Sequence[str],
    target: str,
    scorer: Callable[[str, str], "Score"],
) -> "list[Score]":
    """Score a whole unit-group of completions against one target.

    The batch is the amortization unit: a scorer exposing
    ``score_batch`` (e.g. :class:`~repro.core.scorers.CodeSimilarityScorer`)
    compiles the target and looks up its interned kernels once for the
    entire group; any other scorer is called per completion.  This is
    the worker-side body of :meth:`ScoringPool.submit_many` and the
    inline path's group scorer — results are element-wise identical to
    ``[scorer(c, target) for c in completions]``.
    """
    batch = getattr(scorer, "score_batch", None)
    if batch is not None:
        return batch(completions, target)
    return [scorer(completion, target) for completion in completions]
