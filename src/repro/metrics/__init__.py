"""Code-similarity metrics used by the paper: BLEU and ChrF.

Both metrics are implemented from scratch (sacrebleu is not available
offline) but follow the sacrebleu definitions:

* :func:`bleu` — mteval-13a tokenization, clipped n-gram precision up to
  order 4, brevity penalty, exponential smoothing for zero counts.
* :func:`chrf` — character n-grams of order 1..6, beta=2, whitespace
  removed prior to n-gram extraction.

Scores are returned in the 0..100 range, matching how the paper reports
them ("multiplied by a factor of 100").

For hot paths that score many hypotheses against one reference, use the
numerically identical compiled variants — :func:`compile_reference`
once, then :func:`bleu_compiled` / :func:`chrf_compiled` per
hypothesis — or the vectorized kernels :func:`bleu_kernel` /
:func:`chrf_kernel` (id-interned numpy n-gram counting; bit-equal,
several times faster per hypothesis) and :func:`score_batch` for whole
completion groups.
"""

from repro.metrics.bleu import BleuScore, bleu, corpus_bleu
from repro.metrics.chrf import ChrfScore, chrf, corpus_chrf
from repro.metrics.compiled import (
    CompiledReference,
    bleu_compiled,
    chrf_compiled,
    compile_reference,
)
from repro.metrics.kernels import (
    bleu_kernel,
    bleu_kernel_batch,
    chrf_kernel,
    chrf_kernel_batch,
    kernels_enabled,
    score_batch,
)
from repro.metrics.stats import Aggregate, aggregate, mean, stderr
from repro.metrics.tokenizers import char_ngrams, ngrams, tokenize_13a

__all__ = [
    "BleuScore",
    "bleu",
    "corpus_bleu",
    "ChrfScore",
    "chrf",
    "corpus_chrf",
    "CompiledReference",
    "compile_reference",
    "bleu_compiled",
    "chrf_compiled",
    "bleu_kernel",
    "bleu_kernel_batch",
    "chrf_kernel",
    "chrf_kernel_batch",
    "score_batch",
    "kernels_enabled",
    "Aggregate",
    "aggregate",
    "mean",
    "stderr",
    "tokenize_13a",
    "ngrams",
    "char_ngrams",
]
