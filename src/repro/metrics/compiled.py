"""Precompiled references: tokenize once, score many.

Every calibrated cell and every scored unit compares hundreds of
hypotheses against the *same* reference artifact.  The plain
:func:`~repro.metrics.bleu.bleu` / :func:`~repro.metrics.chrf.chrf`
entry points re-tokenize and re-count that reference on every call —
pure waste on the hot path.  :class:`CompiledReference` does the work
once (13a tokens, per-order token n-gram counters, per-order character
n-gram counters) and :func:`bleu_compiled` / :func:`chrf_compiled`
score a hypothesis against it.

Both compiled scorers run the *same arithmetic in the same order* as
the reference implementations (they share ``_compute_score`` /
``_fscore``), so results are numerically identical — property-tested to
1e-9 in ``tests/test_metrics_compiled.py``, and in practice bit-equal.

:func:`compile_reference` is LRU-cached by reference *content hash*, so
scorer instances, calibration cells and benches that share an artifact
also share one compiled object.  The cache capacity is configurable via
``REPRO_COMPILE_CACHE`` (entries; default 512, 0 disables caching) to
bound memory on many-artifact sweeps — compiled objects now also carry
interned numpy n-gram vocabularies (see :mod:`repro.metrics.kernels`),
so a pinned entry is no longer just a few counters.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import Counter, OrderedDict

from repro.errors import MetricError
from repro.metrics.bleu import DEFAULT_MAX_ORDER, _compute_score
from repro.metrics.chrf import DEFAULT_BETA, DEFAULT_CHAR_ORDER, _fscore
from repro.metrics.tokenizers import (
    char_ngrams,
    clipped_matches,
    ngrams,
    tokenize_13a_cached,
)


class CompiledReference:
    """One reference artifact with all metric statistics precomputed lazily.

    Counters are filled on first use per (order, options) and shared by
    every subsequent scoring call.  Fills are idempotent, so concurrent
    access from executor threads is safe without a lock.
    """

    __slots__ = (
        "text",
        "_tokens",
        "_token_ngrams",
        "_char_grams",
        "_char_totals",
        "_kernels",
    )

    def __init__(self, text: str) -> None:
        self.text = text
        self._tokens: tuple[str, ...] | None = None
        self._token_ngrams: dict[int, Counter] = {}
        self._char_grams: dict[tuple[int, bool], Counter] = {}
        self._char_totals: dict[tuple[int, bool], int] = {}
        # interned vectorized-kernel vocabularies, keyed and filled by
        # repro.metrics.kernels (False marks "vectorization unsupported
        # for this reference/options", e.g. packed codes would overflow)
        self._kernels: dict[tuple, object] = {}

    @property
    def tokens(self) -> tuple[str, ...]:
        if self._tokens is None:
            self._tokens = tokenize_13a_cached(self.text)
        return self._tokens

    @property
    def ref_len(self) -> int:
        return len(self.tokens)

    def token_ngrams(self, order: int) -> Counter:
        """Token ``order``-gram multiset (computed once per order)."""
        grams = self._token_ngrams.get(order)
        if grams is None:
            grams = self._token_ngrams[order] = ngrams(self.tokens, order)
        return grams

    def char_grams(self, order: int, remove_whitespace: bool = True) -> Counter:
        """Character ``order``-gram multiset (computed once per options)."""
        key = (order, remove_whitespace)
        grams = self._char_grams.get(key)
        if grams is None:
            grams = self._char_grams[key] = char_ngrams(
                self.text, order, remove_whitespace=remove_whitespace
            )
        return grams

    def char_total(self, order: int, remove_whitespace: bool = True) -> int:
        """Total character ``order``-gram count (the chrF recall denominator)."""
        key = (order, remove_whitespace)
        total = self._char_totals.get(key)
        if total is None:
            total = self._char_totals[key] = sum(
                self.char_grams(order, remove_whitespace).values()
            )
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledReference({self.text[:32]!r}..., ref_len={self.ref_len})"


def _compile_cache_capacity() -> int:
    """Entries the compile cache may hold (``REPRO_COMPILE_CACHE``)."""
    raw = os.environ.get("REPRO_COMPILE_CACHE", "")
    try:
        return int(raw) if raw else 512
    except ValueError:
        return 512


_compile_lock = threading.Lock()
_compile_cache: OrderedDict[str, CompiledReference] = OrderedDict()


def compile_reference(text: str) -> CompiledReference:
    """The shared :class:`CompiledReference` for ``text`` (LRU by content hash).

    Keyed by the SHA-256 of the reference text rather than the text
    itself: the key table stays small no matter how large the artifacts
    are, and the capacity (``REPRO_COMPILE_CACHE``, default 512) bounds
    how many compiled objects — counters plus interned kernel
    vocabularies — a many-artifact sweep can pin at once.
    """
    # surrogatepass: artifacts decoded with errors="surrogateescape" may
    # carry lone surrogates; they must hash, not raise
    key = hashlib.sha256(text.encode("utf-8", "surrogatepass")).hexdigest()
    with _compile_lock:
        ref = _compile_cache.get(key)
        if ref is not None:
            _compile_cache.move_to_end(key)
            return ref
    ref = CompiledReference(text)
    capacity = _compile_cache_capacity()
    if capacity <= 0:
        return ref
    with _compile_lock:
        racer = _compile_cache.get(key)
        if racer is not None:  # a concurrent compile won: share its object
            _compile_cache.move_to_end(key)
            return racer
        _compile_cache[key] = ref
        while len(_compile_cache) > capacity:
            _compile_cache.popitem(last=False)
    return ref


def _compile_cache_clear() -> None:
    with _compile_lock:
        _compile_cache.clear()


def _compile_cache_len() -> int:
    with _compile_lock:
        return len(_compile_cache)


# lru_cache-compatible management surface (benches/tests call these)
compile_reference.cache_clear = _compile_cache_clear  # type: ignore[attr-defined]
compile_reference.cache_len = _compile_cache_len  # type: ignore[attr-defined]


def bleu_compiled(
    hypothesis: str,
    reference: CompiledReference | str,
    *,
    max_order: int = DEFAULT_MAX_ORDER,
    smooth_method: str = "exp",
    smooth_value: float | None = None,
) -> float:
    """Sentence BLEU against a precompiled reference.

    Numerically identical to ``bleu(hypothesis, reference.text, ...)``:
    the clipped-match counting and score combination are the exact same
    code path, only the reference-side statistics come precomputed.
    """
    if smooth_method not in ("exp", "floor", "add-k", "none"):
        raise MetricError(f"unknown BLEU smoothing method: {smooth_method!r}")
    ref = compile_reference(reference) if isinstance(reference, str) else reference
    hyp_tokens = tokenize_13a_cached(hypothesis)
    sys_len = len(hyp_tokens)

    counts: list[int] = []
    totals: list[int] = []
    for order in range(1, max_order + 1):
        hyp_grams = ngrams(hyp_tokens, order) if sys_len >= order else Counter()
        counts.append(clipped_matches(hyp_grams, ref.token_ngrams(order)))
        totals.append(max(sys_len - order + 1, 0))
    return _compute_score(
        counts, totals, sys_len, ref.ref_len, smooth_method, smooth_value, max_order
    ).score


def chrf_compiled(
    hypothesis: str,
    reference: CompiledReference | str,
    *,
    char_order: int = DEFAULT_CHAR_ORDER,
    beta: float = DEFAULT_BETA,
    remove_whitespace: bool = True,
) -> float:
    """Sentence chrF against a precompiled reference.

    Numerically identical to ``chrf(hypothesis, reference.text, ...)``
    (single-reference path: the best-reference loop is trivial).
    """
    ref = compile_reference(reference) if isinstance(reference, str) else reference
    per_order_f: list[float] = []
    for order in range(1, char_order + 1):
        hyp_grams = char_ngrams(hypothesis, order, remove_whitespace=remove_whitespace)
        hyp_count = sum(hyp_grams.values())
        ref_count = ref.char_total(order, remove_whitespace)
        if hyp_count == 0 and ref_count == 0:
            continue
        matches = clipped_matches(hyp_grams, ref.char_grams(order, remove_whitespace))
        per_order_f.append(_fscore(matches, hyp_count, ref_count, beta))
    return 100.0 * (sum(per_order_f) / len(per_order_f)) if per_order_f else 0.0
