"""Phase instrumentation: where a sweep's wall time actually goes.

The runtime's hot paths (generation, scoring, cache lookups, store I/O)
are wrapped in nestable :func:`span` timers.  With no profiler active a
span costs one global load and a no-op context manager; inside a
:func:`profiling` block every span accumulates into a thread-safe
:class:`Profiler`, whose :class:`PhaseProfile` snapshots break a run
down phase by phase.

Quickstart::

    from repro import perf
    from repro.core.experiments import run_configuration

    with perf.profiling() as prof:
        run_configuration(epochs=2)
    print(perf.render_profile(prof.snapshot()))

:func:`repro.runtime.run` attaches a per-run profile to its
:class:`~repro.runtime.runner.RunStats` whenever a profiler is active,
``examples/reproduce_tables.py --profile`` prints the whole-script
breakdown (``--profile-json PATH`` saves it), and
``python -m repro.perf report PATH`` renders a saved profile.
"""

from repro.perf.report import (
    load_profile,
    profile_payload,
    render_manifest,
    render_profile,
)
from repro.perf.spans import (
    PhaseProfile,
    PhaseTotals,
    Profiler,
    active_profiler,
    profiling,
    span,
)

__all__ = [
    "span",
    "profiling",
    "active_profiler",
    "Profiler",
    "PhaseProfile",
    "PhaseTotals",
    "render_profile",
    "render_manifest",
    "load_profile",
    "profile_payload",
]
