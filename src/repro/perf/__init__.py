"""Deprecated alias for :mod:`repro.obs` (the observability layer).

``repro.perf`` grew into ``repro.obs`` when the span profiler gained
distributed tracing, a metrics registry, and cross-run trend reports.
Everything importable from here forwards to :mod:`repro.obs` — same
objects, same process-wide active profiler — so existing code and the
``python -m repro.perf report`` CLI keep working unchanged.  New code
should import :mod:`repro.obs` directly; importing this shim raises a
:class:`DeprecationWarning` saying so.
"""

import warnings

warnings.warn(
    "repro.perf is deprecated; import repro.obs instead "
    "(same objects, same active profiler)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.obs import (  # noqa: E402,F401
    PhaseProfile,
    PhaseTotals,
    Profiler,
    active_profiler,
    load_profile,
    profile_payload,
    profiling,
    render_manifest,
    render_profile,
    span,
)

__all__ = [
    "span",
    "profiling",
    "active_profiler",
    "Profiler",
    "PhaseProfile",
    "PhaseTotals",
    "render_profile",
    "render_manifest",
    "load_profile",
    "profile_payload",
]
