"""Deprecated alias for :mod:`repro.obs.report`."""

from repro.obs.report import (  # noqa: F401
    is_manifest_payload,
    load_payload,
    load_profile,
    profile_payload,
    render_manifest,
    render_profile,
)
