"""``python -m repro.perf`` — render saved phase profiles."""

import sys

from repro.perf.cli import main

if __name__ == "__main__":
    sys.exit(main())
