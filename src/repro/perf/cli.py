"""CLI for the perf instrumentation layer.

Usage::

    python -m repro.perf report PROFILE.json

renders a profile saved by ``examples/reproduce_tables.py
--profile-json PROFILE.json`` (or any JSON produced by
:meth:`repro.perf.PhaseProfile.as_dict` /
:func:`repro.perf.profile_payload`).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import HarnessError
from repro.perf.report import load_profile, render_profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="render a saved phase profile")
    report.add_argument("profile", help="profile JSON file (--profile-json output)")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        profile = load_profile(args.profile)
    except HarnessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(render_profile(profile, title=f"phase profile — {args.profile}"))
    except BrokenPipeError:  # e.g. piped into head; not an error
        return 0
    return 0
