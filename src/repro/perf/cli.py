"""Deprecated ``python -m repro.perf`` CLI — forwards to ``repro.obs``.

Only the ``report`` subcommand exists here, for compatibility with
pre-obs scripts; ``python -m repro.obs`` additionally offers ``trace``
and ``trend``.
"""

from __future__ import annotations

from repro.obs.cli import main as _obs_main


def main(argv: list[str] | None = None) -> int:
    return _obs_main(argv)
