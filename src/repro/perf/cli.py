"""CLI for the perf instrumentation layer.

Usage::

    python -m repro.perf report PROFILE.json
    python -m repro.perf report STORE/manifests/run-....json

renders a profile saved by ``examples/reproduce_tables.py
--profile-json PROFILE.json`` (or any JSON produced by
:meth:`repro.perf.PhaseProfile.as_dict` /
:func:`repro.perf.profile_payload`) — or, given a run-manifest JSON
from a :class:`repro.persist.RunStore`, the run's stats (units,
chosen scoring worker count, store read-LRU traffic) followed by its
recorded per-run phase profile.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import HarnessError
from repro.perf.report import (
    is_manifest_payload,
    load_payload,
    render_manifest,
    render_profile,
)
from repro.perf.spans import PhaseProfile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render a saved phase profile or run manifest"
    )
    report.add_argument(
        "profile",
        help="profile JSON (--profile-json output) or a run-manifest JSON "
        "from a store's manifests/ directory",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        payload = load_payload(args.profile)
        if is_manifest_payload(payload):
            out = [render_manifest(payload, title=f"run manifest — {args.profile}")]
            recorded = (payload.get("stats") or {}).get("profile")
            if recorded:
                out += [
                    "",
                    render_profile(
                        PhaseProfile.from_dict(recorded),
                        title="phase profile (recorded with the run)",
                    ),
                ]
            rendered = "\n".join(out)
        else:
            if isinstance(payload, dict) and "profile" in payload:
                payload = payload["profile"]  # the --profile-json wrapper
            rendered = render_profile(
                PhaseProfile.from_dict(payload),
                title=f"phase profile — {args.profile}",
            )
    except HarnessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(rendered)
    except BrokenPipeError:  # e.g. piped into head; not an error
        return 0
    return 0
