"""Deprecated alias for :mod:`repro.obs.spans`."""

from repro.obs.spans import (  # noqa: F401
    PhaseProfile,
    PhaseTotals,
    Profiler,
    active_profiler,
    profiling,
    span,
)
