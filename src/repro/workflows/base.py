"""Common machinery for workflow-system descriptors and artifact validation.

The experiments in the paper hinge on whether an LLM uses a system's *real*
API surface — its hallucinations are "plausible but nonexistent" calls like
``henson_put`` or config fields like ``inputs`` instead of ``inports``.
:class:`ApiRegistry` records the real surface; validators compare artifacts
against it and emit :class:`Diagnostic` entries.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class ApiFunction:
    """One element of a system's public surface."""

    name: str
    kind: str = "function"  # function | decorator | field | class | keyword
    signature: str = ""
    description: str = ""
    required: bool = False  # must appear in a correct artifact of this kind


class ApiRegistry:
    """The authoritative API surface of one workflow system."""

    def __init__(self, system: str, entries: Iterable[ApiFunction] = ()) -> None:
        self.system = system
        self._entries: dict[str, ApiFunction] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: ApiFunction) -> None:
        self._entries[entry.name] = entry

    def known(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> ApiFunction | None:
        return self._entries.get(name)

    def names(self, kind: str | None = None) -> list[str]:
        return sorted(
            e.name for e in self._entries.values() if kind is None or e.kind == kind
        )

    def required_names(self, kind: str | None = None) -> list[str]:
        return sorted(
            e.name
            for e in self._entries.values()
            if e.required and (kind is None or e.kind == kind)
        )

    def suggest(self, name: str, cutoff: float = 0.5) -> str | None:
        """Closest real name to a hallucinated one (for diagnostics)."""
        matches = difflib.get_close_matches(name, list(self._entries), n=1, cutoff=cutoff)
        return matches[0] if matches else None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return self.known(name)


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding, tied to a line of the artifact when possible."""

    severity: Severity
    code: str  # nonexistent-api | missing-api | unknown-field | missing-field | parse-error | structure
    message: str
    line: int | None = None
    symbol: str | None = None
    suggestion: str | None = None

    def render(self) -> str:
        loc = f"line {self.line}: " if self.line is not None else ""
        hint = f" (did you mean {self.suggestion!r}?)" if self.suggestion else ""
        return f"[{self.severity.value}] {loc}{self.message}{hint}"


@dataclass
class ValidationReport:
    """Validator output for one artifact."""

    system: str
    artifact_kind: str  # config | task-code
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def hallucinations(self) -> list[Diagnostic]:
        """Uses of names that do not exist in the system's surface."""
        return [d for d in self.diagnostics if d.code in ("nonexistent-api", "unknown-field")]

    def missing(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code in ("missing-api", "missing-field")]

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def render(self) -> str:
        if not self.diagnostics:
            return f"{self.system} {self.artifact_kind}: OK"
        lines = [f"{self.system} {self.artifact_kind}: {len(self.errors())} error(s), "
                 f"{len(self.warnings())} warning(s)"]
        lines.extend("  " + d.render() for d in self.diagnostics)
        return "\n".join(lines)


@dataclass
class WorkflowSystem:
    """Descriptor tying together a system's identity, surface, and validators.

    ``validate_config`` / ``validate_task_code`` are callables taking the
    artifact text and returning a :class:`ValidationReport`; systems that
    have no notion of one artifact kind leave it ``None`` (e.g. Wilkins
    requires no task-code changes, PyCOMPSs/Parsl configs describe the
    execution environment rather than the workflow — the paper excludes
    those combinations for exactly these reasons).
    """

    name: str  # canonical key: adios2 | henson | parsl | pycompss | wilkins
    display_name: str
    kind: str  # in-situ | distributed | task-parallel
    task_language: str  # c | python
    config_language: str | None  # xml | hwl | yaml | None
    api: ApiRegistry
    config_fields: ApiRegistry | None = None
    validate_config: Callable[[str], ValidationReport] | None = None
    validate_task_code: Callable[[str], ValidationReport] | None = None

    @property
    def supports_configuration(self) -> bool:
        return self.validate_config is not None

    @property
    def supports_annotation(self) -> bool:
        return self.validate_task_code is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkflowSystem({self.name!r})"
