"""The Parsl API surface used for hallucination detection.

Includes the decorator names, staging classes, executor classes, and
kernel functions that legitimately appear in annotated Parsl task codes.
Names such as ``parsl_app`` or ``@parsl_task`` (common hallucinations) are
absent and therefore flagged.
"""

from __future__ import annotations

from repro.workflows.base import ApiFunction, ApiRegistry

PARSL_API = ApiRegistry(
    "Parsl",
    [
        ApiFunction("python_app", "decorator", "@python_app",
                    "declare a Python function as a Parsl app", required=True),
        ApiFunction("bash_app", "decorator", "@bash_app",
                    "declare a command-line app"),
        ApiFunction("join_app", "decorator", "@join_app",
                    "declare an app that returns futures of other apps"),
        ApiFunction("File", "class", "File(filepath)",
                    "staged file handle", required=True),
        ApiFunction("AppFuture", "class"),
        ApiFunction("DataFuture", "class"),
        ApiFunction("Config", "class", "Config(executors=[...])"),
        ApiFunction("ThreadPoolExecutor", "class"),
        ApiFunction("HighThroughputExecutor", "class"),
        ApiFunction("load", "function", "parsl.load(config)"),
        ApiFunction("clear", "function", "parsl.clear()"),
        ApiFunction("dfk", "function"),
        ApiFunction("inputs", "keyword", required=True),
        ApiFunction("outputs", "keyword", required=True),
        ApiFunction("result", "function", "future.result()", required=True),
    ],
)
