"""Parsl configuration object.

In real Parsl the configuration describes the *execution environment*
(executors, providers, retries) rather than the workflow itself — which is
exactly why the paper excludes Parsl from the workflow-configuration
experiment.  The substrate keeps that semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.workflows.parsl_sim.executors import Executor, ThreadPoolExecutor


@dataclass
class Config:
    """Execution environment: one or more labelled executors."""

    executors: list[Executor] = field(default_factory=lambda: [ThreadPoolExecutor()])
    run_dir: str = "runinfo"
    retries: int = 0
    app_cache: bool = True

    def __post_init__(self) -> None:
        if not self.executors:
            raise ConfigError("Config needs at least one executor")
        labels = [e.label for e in self.executors]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"duplicate executor labels: {labels}")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")

    def executor(self, label: str | None) -> Executor:
        if label is None:
            return self.executors[0]
        for e in self.executors:
            if e.label == label:
                return e
        raise ConfigError(
            f"no executor labelled {label!r} "
            f"(have {[e.label for e in self.executors]})"
        )
