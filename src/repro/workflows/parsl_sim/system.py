"""WorkflowSystem descriptor for Parsl.

Parsl has no workflow-structure configuration file (its Config describes
the execution environment), so ``validate_config`` is ``None`` and the
configuration experiment excludes it — matching the paper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workflows.base import WorkflowSystem
from repro.workflows.parsl_sim.surface import PARSL_API
from repro.workflows.parsl_sim.validator import validate_task_code


@lru_cache(maxsize=1)
def parsl_system() -> WorkflowSystem:
    """Build (once) the Parsl system descriptor."""
    return WorkflowSystem(
        name="parsl",
        display_name="Parsl",
        kind="task-parallel",
        task_language="python",
        config_language=None,
        api=PARSL_API,
        config_fields=None,
        validate_config=None,
        validate_task_code=validate_task_code,
    )
