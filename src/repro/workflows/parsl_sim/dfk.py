"""The DataFlowKernel: Parsl's runtime, simulated.

Apps are submitted here; the kernel wires dependencies (futures among the
arguments plus ``inputs=[...]`` DataFutures), retries failed apps per the
config, executes bash apps through a tiny simulated shell, and exposes
run statistics.  One kernel is loaded at a time via :func:`load`,
mirroring ``parsl.load``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Callable

from repro.errors import WorkflowError
from repro.workflows.parsl_sim.apps import AppFuture, DataFuture, File
from repro.workflows.parsl_sim.config import Config

_current: "DataFlowKernel | None" = None
_current_lock = threading.Lock()


class DataFlowKernel:
    """Tracks apps, resolves dependencies, and dispatches to executors."""

    def __init__(self, config: Config) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._task_count = 0
        self._bash_log: list[str] = []
        for executor in config.executors:
            executor.start()

    # -- submission ----------------------------------------------------------

    def submit_app(
        self,
        fn: Callable,
        args: tuple,
        kwargs: dict,
        *,
        app_kind: str,
        executor_label: str | None,
    ) -> AppFuture:
        kwargs = dict(kwargs)
        inputs = list(kwargs.get("inputs", ()) or ())
        outputs = [f for f in kwargs.get("outputs", ()) or ()]
        for f in outputs:
            if not isinstance(f, File):
                raise WorkflowError(f"outputs must be File objects, got {type(f)!r}")
        out_futures = [DataFuture(f) for f in outputs]

        # dependencies: futures among inputs, positional args, and keyword args
        deps: list[Future] = [i for i in inputs if isinstance(i, Future)]
        deps += [a for a in args if isinstance(a, Future)]
        deps += [
            v
            for k, v in kwargs.items()
            if k not in ("inputs", "outputs") and isinstance(v, Future)
        ]
        resolved_inputs: list[Any] = list(inputs)

        with self._lock:
            self._task_count += 1
            task_name = f"{fn.__name__}#{self._task_count}"

        def run_once() -> Any:
            final_inputs = [
                i.result() if isinstance(i, Future) else i for i in resolved_inputs
            ]
            final_args = tuple(
                a.result() if isinstance(a, Future) else a for a in args
            )
            final_kwargs = {
                k: (v.result() if isinstance(v, Future) and k not in ("inputs", "outputs") else v)
                for k, v in kwargs.items()
            }
            if "inputs" in final_kwargs:
                final_kwargs["inputs"] = final_inputs
            if "outputs" in final_kwargs:
                final_kwargs["outputs"] = outputs
            if app_kind == "bash":
                command = fn(*final_args, **final_kwargs)
                if not isinstance(command, str):
                    raise WorkflowError(
                        f"bash app {fn.__name__!r} must return a command string"
                    )
                self._run_shell(command, outputs)
                return 0  # exit code
            return fn(*final_args, **final_kwargs)

        def run_with_retries() -> Any:
            attempts = self.config.retries + 1
            last_exc: BaseException | None = None
            for _ in range(attempts):
                try:
                    return run_once()
                except BaseException as exc:  # noqa: BLE001 - retried, then surfaced
                    last_exc = exc
            assert last_exc is not None
            raise last_exc

        executor = self.config.executor(executor_label)
        app_future = AppFuture(task_name, out_futures)
        inner = executor.submit(run_with_retries, (), {}, depends_on=deps)
        app_future._link(inner)
        return app_future

    # -- simulated shell ---------------------------------------------------------

    def _run_shell(self, command: str, outputs: list[File]) -> None:
        with self._lock:
            self._bash_log.append(command)
        for f in outputs:
            if not f.exists():
                f.write(f"<produced by: {command}>")

    def bash_history(self) -> list[str]:
        with self._lock:
            return list(self._bash_log)

    # -- stats / lifecycle ---------------------------------------------------------

    @property
    def task_count(self) -> int:
        with self._lock:
            return self._task_count

    def task_counts(self) -> dict[str, dict[str, int]]:
        return {e.label: e.task_counts() for e in self.config.executors}

    def cleanup(self) -> None:
        for executor in self.config.executors:
            executor.shutdown()


def load(config: Config | None = None) -> DataFlowKernel:
    """Load a kernel (``parsl.load``); only one may be active at a time."""
    global _current
    with _current_lock:
        if _current is not None:
            raise WorkflowError("a DataFlowKernel is already loaded; call clear() first")
        _current = DataFlowKernel(config or Config())
        return _current


def clear() -> None:
    """Tear down the active kernel (``parsl.clear``)."""
    global _current
    with _current_lock:
        if _current is not None:
            _current.cleanup()
            _current = None


def dfk() -> DataFlowKernel | None:
    """The currently loaded kernel, if any."""
    with _current_lock:
        return _current
