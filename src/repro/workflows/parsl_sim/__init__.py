"""Parsl substrate: pervasive parallel programming in Python.

Mirrors the Parsl programming model (Babuji et al. 2019): users decorate
plain Python functions as *apps*; calling an app returns an
:class:`~repro.workflows.parsl_sim.apps.AppFuture` immediately, and the
:class:`~repro.workflows.parsl_sim.dfk.DataFlowKernel` launches it once
its inputs (futures, ``inputs=[...]`` files) are ready.

Typical use, identical in shape to real Parsl::

    import repro.workflows.parsl_sim as parsl
    from repro.workflows.parsl_sim import Config, File, ThreadPoolExecutor, python_app

    parsl.load(Config(executors=[ThreadPoolExecutor(max_threads=4)]))

    @python_app
    def simulate(n, outputs=()):
        ...

    future = simulate(100, outputs=[File("result.npy")])
    future.result()
    parsl.clear()
"""

from repro.workflows.parsl_sim.apps import AppFuture, DataFuture, File, bash_app, python_app
from repro.workflows.parsl_sim.config import Config
from repro.workflows.parsl_sim.dfk import DataFlowKernel, clear, dfk, load
from repro.workflows.parsl_sim.executors import (
    Executor,
    HighThroughputExecutor,
    ThreadPoolExecutor,
)
from repro.workflows.parsl_sim.surface import PARSL_API
from repro.workflows.parsl_sim.system import parsl_system
from repro.workflows.parsl_sim.validator import validate_task_code

__all__ = [
    "python_app",
    "bash_app",
    "AppFuture",
    "DataFuture",
    "File",
    "Config",
    "DataFlowKernel",
    "load",
    "clear",
    "dfk",
    "Executor",
    "ThreadPoolExecutor",
    "HighThroughputExecutor",
    "PARSL_API",
    "validate_task_code",
    "parsl_system",
]
