"""Parsl executors (simulated).

Real Parsl offers a family of executors tuned for different regimes; our
substrate models the two the paper's task codes reference:

* :class:`ThreadPoolExecutor` — low-latency local execution on threads
  (Parsl's ``ThreadPoolExecutor``);
* :class:`HighThroughputExecutor` — Parsl's pilot-job executor; here it is
  a thread pool that additionally models per-task dispatch bookkeeping
  (worker assignment round-robin over ``max_workers_per_node * nodes``),
  which the tests introspect.

Both delegate dependency handling to the shared
:class:`~repro.workflows.dataflow.DataflowExecutor`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.workflows.dataflow import DataflowExecutor


@dataclass
class Executor:
    """Base executor descriptor; concrete classes configure the pool size."""

    label: str = "executor"
    _engine: DataflowExecutor | None = field(default=None, repr=False, compare=False)

    def start(self) -> None:
        if self._engine is None:
            self._engine = DataflowExecutor(self.pool_size(), label=self.label)

    def pool_size(self) -> int:
        return 2

    def submit(self, fn: Callable, args: tuple, kwargs: dict, depends_on=()) -> Any:
        if self._engine is None:
            self.start()
        assert self._engine is not None
        return self._engine.submit(fn, args, kwargs, depends_on=depends_on)

    def shutdown(self) -> None:
        if self._engine is not None:
            self._engine.shutdown()
            self._engine = None

    def task_counts(self) -> dict[str, int]:
        return self._engine.counts() if self._engine else {}


@dataclass
class ThreadPoolExecutor(Executor):
    """Local threads; Parsl's recommended executor for low-latency tasks."""

    label: str = "threads"
    max_threads: int = 4

    def pool_size(self) -> int:
        return self.max_threads


@dataclass
class HighThroughputExecutor(Executor):
    """Pilot-job style executor with per-node worker accounting."""

    label: str = "htex"
    max_workers_per_node: int = 2
    nodes: int = 1
    _dispatch: "itertools.cycle | None" = field(default=None, repr=False, compare=False)
    _assignments: dict[int, str] = field(default_factory=dict, repr=False, compare=False)
    _assign_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _counter: "itertools.count | None" = field(default=None, repr=False, compare=False)

    def pool_size(self) -> int:
        return self.max_workers_per_node * self.nodes

    def start(self) -> None:
        super().start()
        workers = [
            f"node{n}/worker{w}"
            for n in range(self.nodes)
            for w in range(self.max_workers_per_node)
        ]
        self._dispatch = itertools.cycle(workers)
        self._counter = itertools.count()

    def submit(self, fn: Callable, args: tuple, kwargs: dict, depends_on=()) -> Any:
        if self._engine is None:
            self.start()
        with self._assign_lock:
            task_no = next(self._counter)
            self._assignments[task_no] = next(self._dispatch)
        return super().submit(fn, args, kwargs, depends_on=depends_on)

    def assignments(self) -> dict[int, str]:
        """Task number → simulated worker id (dispatch order)."""
        with self._assign_lock:
            return dict(self._assignments)
