"""Parsl apps: ``@python_app`` / ``@bash_app`` decorators and futures.

Calling a decorated function submits it to the loaded
:class:`~repro.workflows.parsl_sim.dfk.DataFlowKernel` and returns an
:class:`AppFuture`.  ``inputs=[...]``/``outputs=[...]`` keyword arguments
carry :class:`File` staging descriptors; each output is mirrored by a
:class:`DataFuture` that resolves when the app completes (Parsl's file
staging model).
"""

from __future__ import annotations

import functools
from concurrent.futures import Future
from typing import Any, Callable

from repro.errors import WorkflowError
from repro.store import SimFilesystem, default_filesystem


class File:
    """A named file handle staged through a simulated filesystem."""

    def __init__(self, filepath: str, fs: SimFilesystem | None = None) -> None:
        self.filepath = filepath
        self.fs = fs if fs is not None else default_filesystem()

    def write(self, payload: Any) -> None:
        """Write the payload object to the simulated file."""
        self.fs.create(self.filepath, payload)

    def read(self) -> Any:
        return self.fs.open(self.filepath)

    def exists(self) -> bool:
        return self.fs.exists(self.filepath)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"File({self.filepath!r})"

    def __fspath__(self) -> str:
        return self.filepath


class DataFuture(Future):
    """Future for one output :class:`File` of an app invocation."""

    def __init__(self, file: File) -> None:
        super().__init__()
        self.file = file

    @property
    def filepath(self) -> str:
        return self.file.filepath


class AppFuture(Future):
    """Future for an app's return value, carrying its output DataFutures."""

    def __init__(self, task_name: str, outputs: list[DataFuture]) -> None:
        super().__init__()
        self.task_name = task_name
        self.outputs = outputs

    def _link(self, inner: Future) -> None:
        """Mirror the runtime future into this one and its outputs."""

        def done(f: Future) -> None:
            exc = f.exception()
            if exc is not None:
                self.set_exception(exc)
                for out in self.outputs:
                    out.set_exception(exc)
            else:
                self.set_result(f.result())
                for out in self.outputs:
                    out.set_result(out.file)

        inner.add_done_callback(done)


def _make_app(fn: Callable, app_kind: str, executor_label: str | None) -> Callable:
    @functools.wraps(fn)
    def app(*args: Any, **kwargs: Any) -> AppFuture:
        from repro.workflows.parsl_sim.dfk import dfk

        kernel = dfk()
        if kernel is None:
            raise WorkflowError(
                "no DataFlowKernel loaded; call parsl_sim.load(Config(...)) first"
            )
        return kernel.submit_app(
            fn, args, kwargs, app_kind=app_kind, executor_label=executor_label
        )

    app.__wrapped__ = fn
    app.app_kind = app_kind
    return app


def python_app(fn: Callable | None = None, *, executors: str | None = None) -> Callable:
    """Decorate a plain Python function as a Parsl app.

    Usable bare (``@python_app``) or parameterized
    (``@python_app(executors='htex')``).
    """
    if fn is not None:
        return _make_app(fn, "python", executors)
    return lambda real_fn: _make_app(real_fn, "python", executors)


def bash_app(fn: Callable | None = None, *, executors: str | None = None) -> Callable:
    """Decorate a function returning a command line as a Parsl bash app.

    The simulated shell records the command and materializes every
    ``outputs=[...]`` file with the command string as payload, which is
    enough for dependency plumbing in tests and examples.
    """
    if fn is not None:
        return _make_app(fn, "bash", executors)
    return lambda real_fn: _make_app(real_fn, "bash", executors)
