"""Validator for annotated Parsl task codes (Python).

Audits two things the paper's analysis highlights:

1. hallucinated names imported from parsl (``from parsl import X`` where X
   is not part of the surface) and unknown ``@*_app``-style decorators;
2. *redundant executor configuration* — the paper observes models
   gratuitously configuring executors when the prompt never asked for
   them, which tanks BLEU while ChrF stays tolerant.  Those are reported
   as warnings with code ``redundant-api``.
"""

from __future__ import annotations

import re

from repro.workflows.base import Diagnostic, Severity, ValidationReport
from repro.workflows.parsl_sim.surface import PARSL_API
from repro.workflows.validators import find_line

_IMPORT_RE = re.compile(r"^\s*from\s+parsl(?:\.\w+)*\s+import\s+(.+)$")
_DECORATOR_RE = re.compile(r"^\s*@([\w.]+)")
_EXECUTOR_RE = re.compile(r"\b(\w*Executor)\s*\(")


def validate_task_code(text: str) -> ValidationReport:
    report = ValidationReport(system="Parsl", artifact_kind="task-code")
    saw_app_decorator = False
    saw_result = ".result(" in text

    for lineno, line in enumerate(text.split("\n"), start=1):
        m = _IMPORT_RE.match(line)
        if m:
            names = [n.strip().split(" as ")[0] for n in m.group(1).split(",")]
            for name in names:
                if name and not PARSL_API.known(name):
                    report.diagnostics.append(
                        Diagnostic(
                            severity=Severity.ERROR,
                            code="nonexistent-api",
                            message=f"{name!r} is not importable from parsl",
                            line=lineno,
                            symbol=name,
                            suggestion=PARSL_API.suggest(name),
                        )
                    )
        d = _DECORATOR_RE.match(line)
        if d:
            deco = d.group(1).split(".")[-1].split("(")[0]
            if deco.endswith("_app") or deco in ("task", "app"):
                if PARSL_API.known(deco):
                    saw_app_decorator = True
                else:
                    report.diagnostics.append(
                        Diagnostic(
                            severity=Severity.ERROR,
                            code="nonexistent-api",
                            message=f"@{deco} is not a Parsl app decorator",
                            line=lineno,
                            symbol=deco,
                            suggestion=PARSL_API.suggest(deco),
                        )
                    )

    if not saw_app_decorator:
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="missing-api",
                message="no @python_app/@bash_app decorator found",
                symbol="python_app",
            )
        )
    if not saw_result:
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="missing-api",
                message="no .result() synchronization on any app future",
                symbol="result",
            )
        )

    # redundant executor configuration (legal but unrequested)
    for m in _EXECUTOR_RE.finditer(text):
        name = m.group(1)
        lineno = find_line(text, m.group(0))
        if PARSL_API.known(name):
            report.diagnostics.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    code="redundant-api",
                    message=(
                        f"{name} configured explicitly; prompt did not request "
                        "an executor configuration"
                    ),
                    line=lineno,
                    symbol=name,
                )
            )
        else:
            report.diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="nonexistent-api",
                    message=f"{name} is not a Parsl executor",
                    line=lineno,
                    symbol=name,
                    suggestion=PARSL_API.suggest(name),
                )
            )
    return report
