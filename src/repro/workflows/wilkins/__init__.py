"""Wilkins substrate: data-centric in-situ workflows made easy.

Wilkins (Yildiz et al. 2024) defines workflows in a YAML file listing
tasks with their process counts and data requirements as *inports* and
*outports*; datasets flow through an HDF5 namespace with per-dataset
``file``/``memory`` flags selecting the transport (LowFive).  Tasks need
no code changes — which is why the paper excludes Wilkins from the
annotation experiment.

This subpackage provides the YAML schema
(:mod:`~repro.workflows.wilkins.config`), the workflow-graph builder
(:mod:`~repro.workflows.wilkins.graph`), an executable runtime over the
simulated MPI and HDF5 substrates (:mod:`~repro.workflows.wilkins.runtime`),
and the config validator used by the evaluation harness.
"""

from repro.workflows.wilkins.config import (
    DsetConfig,
    PortConfig,
    TaskConfig,
    WilkinsConfig,
    parse_wilkins_yaml,
    render_wilkins_yaml,
)
from repro.workflows.wilkins.graph import build_graph
from repro.workflows.wilkins.runtime import TaskContext, WilkinsRuntime
from repro.workflows.wilkins.surface import WILKINS_CONFIG_FIELDS
from repro.workflows.wilkins.system import wilkins_system
from repro.workflows.wilkins.validator import validate_config

__all__ = [
    "WilkinsConfig",
    "TaskConfig",
    "PortConfig",
    "DsetConfig",
    "parse_wilkins_yaml",
    "render_wilkins_yaml",
    "build_graph",
    "WilkinsRuntime",
    "TaskContext",
    "WILKINS_CONFIG_FIELDS",
    "validate_config",
    "wilkins_system",
]
