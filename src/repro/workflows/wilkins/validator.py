"""Validator for Wilkins YAML configurations.

Classifies exactly the error families the paper's case study (Table 6)
exhibits for zero-shot o3 output:

* ``unknown-field`` — ``inputs``/``outputs`` instead of
  ``inports``/``outports``; ``command``, ``processes``, ``dependencies``,
  ``workflow``, ``datasets`` (all nonexistent in Wilkins);
* ``missing-field`` — required fields (``func``, ``nprocs``...) absent;
* ``parse-error`` — semantically invalid structure (caught by the parser);
* ``structure`` — the artifact is task code rather than a config.
"""

from __future__ import annotations

import re

import yaml

from repro.errors import ConfigError
from repro.workflows.base import Diagnostic, Severity, ValidationReport
from repro.workflows.validators import find_line
from repro.workflows.wilkins.config import parse_wilkins_yaml
from repro.workflows.wilkins.surface import WILKINS_CONFIG_FIELDS

_CODE_SIGNS = re.compile(r"(#include|int\s+main\s*\(|def\s+\w+\s*\(|import\s+\w+)")


_KEY_LINE_RE = re.compile(r"^\s*-?\s*([A-Za-z_][\w-]*)\s*:")


def _scan_keys_textually(text: str) -> set[str]:
    """Line-level ``key:`` extraction for YAML too broken to parse."""
    keys: set[str] = set()
    for line in text.split("\n"):
        m = _KEY_LINE_RE.match(line)
        if m:
            keys.add(m.group(1))
    return keys


def _walk_keys(node: object) -> set[str]:
    keys: set[str] = set()
    if isinstance(node, dict):
        for key, value in node.items():
            keys.add(str(key))
            keys |= _walk_keys(value)
    elif isinstance(node, list):
        for item in node:
            keys |= _walk_keys(item)
    return keys


def validate_config(text: str) -> ValidationReport:
    report = ValidationReport(system="Wilkins", artifact_kind="config")

    if _CODE_SIGNS.search(text):
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="structure",
                message="artifact looks like task code, not a Wilkins YAML config",
            )
        )
        return report

    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        report.diagnostics.append(
            Diagnostic(severity=Severity.ERROR, code="parse-error",
                       message=f"malformed YAML: {exc}")
        )
        # fall back to a line-level key scan so hallucinated fields are
        # still reported on chimeric, unparseable artifacts
        for key in sorted(_scan_keys_textually(text)):
            if not WILKINS_CONFIG_FIELDS.known(key):
                report.diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="unknown-field",
                        message=f"{key!r} is not a Wilkins config field",
                        line=find_line(text, key),
                        symbol=key,
                        suggestion=WILKINS_CONFIG_FIELDS.suggest(key),
                    )
                )
        return report

    # field vocabulary audit on the raw document (works even when the
    # overall structure is wrong, which is the interesting failure mode)
    for key in sorted(_walk_keys(doc)):
        if not WILKINS_CONFIG_FIELDS.known(key):
            report.diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="unknown-field",
                    message=f"{key!r} is not a Wilkins config field",
                    line=find_line(text, key),
                    symbol=key,
                    suggestion=WILKINS_CONFIG_FIELDS.suggest(key),
                )
            )

    try:
        parse_wilkins_yaml(text)
    except ConfigError as exc:
        message = str(exc)
        # unknown-field errors are already reported individually above
        if "unknown" not in message:
            code = "missing-field" if "missing" in message else "parse-error"
            report.diagnostics.append(
                Diagnostic(severity=Severity.ERROR, code=code, message=message)
            )
    return report
