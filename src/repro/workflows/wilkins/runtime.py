"""The Wilkins runtime: execute a YAML-defined workflow on the substrates.

Each task runs as an SPMD function over the simulated MPI
(:func:`repro.mpi.mpiexec`) on its configured ``nprocs``, all tasks
concurrently (in-situ style).  Dataset exchange goes through shared
:class:`~repro.store.h5.H5File` channels:

* ``memory`` transport — consumers block per step on
  :meth:`H5File.read_when_available`, overlapping with the producer
  (LowFive memory mode);
* ``file`` transport — consumers wait until every writer of the file has
  closed it, then read completed steps (classic file coupling).

Task callables have the signature ``fn(comm, ctx)`` where ``comm`` is the
task's own :class:`~repro.mpi.comm.SimComm` and ``ctx`` the
:class:`TaskContext` carrying the ports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import WorkflowError
from repro.mpi import mpiexec
from repro.store import H5File, SimFilesystem
from repro.workflows.wilkins.config import TaskConfig, WilkinsConfig
from repro.workflows.wilkins.graph import build_graph


class _FileChannel:
    """Shared state for one workflow file: the H5 namespace + writer refcount."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.h5 = H5File(filename)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._writers = 0
        self._closed_writers = 0

    def register_writer(self) -> None:
        with self._lock:
            self._writers += 1

    def close_writer(self) -> None:
        with self._cond:
            self._closed_writers += 1
            self._cond.notify_all()

    @property
    def complete(self) -> bool:
        with self._lock:
            return self._writers > 0 and self._closed_writers >= self._writers

    def wait_complete(self, timeout: float = 30.0) -> None:
        import time

        deadline = time.monotonic() + timeout
        with self._cond:
            while not (self._writers > 0 and self._closed_writers >= self._writers):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkflowError(
                        f"timed out waiting for writers of {self.filename!r} to close"
                    )
                self._cond.wait(remaining)


@dataclass
class _DsetBinding:
    """Resolved dataset binding for one task port."""

    channel: _FileChannel
    name: str
    transport: str  # memory | file


class TaskContext:
    """Per-task handle for data exchange, shared by all of the task's ranks.

    Writers publish with :meth:`write` and must :meth:`close` their
    outports when done (the runtime closes them automatically when the
    task function returns).  Readers use :meth:`read` for one step or
    :meth:`steps` to iterate a stream.
    """

    def __init__(
        self,
        task: TaskConfig,
        inbindings: dict[str, _DsetBinding],
        outbindings: dict[str, _DsetBinding],
        timeout: float = 30.0,
    ) -> None:
        self.task = task
        self._in = inbindings
        self._out = outbindings
        self._timeout = timeout
        self._closed = False
        self._published_steps: dict[str, int] = {}

    # -- writer side --------------------------------------------------------

    def write(self, dset: str, data: Any, step: int | None = None) -> None:
        binding = self._binding(self._out, dset, "outport")
        if step is None:
            step = self._published_steps.get(dset, 0)
        binding.channel.h5.write(binding.name, data, step=step)
        self._published_steps[dset] = step + 1

    def close(self) -> None:
        """Mark all outports complete (idempotent)."""
        if not self._closed:
            self._closed = True
            for binding in {id(b.channel): b for b in self._out.values()}.values():
                binding.channel.close_writer()

    # -- reader side ----------------------------------------------------------

    def read(self, dset: str, step: int = 0) -> Any:
        binding = self._binding(self._in, dset, "inport")
        if binding.transport == "file":
            binding.channel.wait_complete(self._timeout)
            return binding.channel.h5.read(binding.name, step=step).data
        return binding.channel.h5.read_when_available(
            binding.name, step, timeout=self._timeout
        ).data

    def steps(self, dset: str):
        """Iterate ``(step, data)`` pairs until the producer closes."""
        binding = self._binding(self._in, dset, "inport")
        step = 0
        while True:
            if binding.channel.h5.exists(binding.name, step=step):
                yield step, binding.channel.h5.read(binding.name, step=step).data
                step += 1
                continue
            if binding.channel.complete:
                if binding.channel.h5.exists(binding.name, step=step):
                    continue  # raced with a final write
                return
            import time

            time.sleep(0.001)

    # -- introspection -----------------------------------------------------------

    def in_dsets(self) -> list[str]:
        return sorted(self._in)

    def out_dsets(self) -> list[str]:
        return sorted(self._out)

    def _binding(self, table: dict[str, _DsetBinding], dset: str, kind: str) -> _DsetBinding:
        try:
            return table[dset]
        except KeyError:
            raise WorkflowError(
                f"task {self.task.func!r}: no {kind} dataset {dset!r} "
                f"(have {sorted(table)})"
            ) from None


class WilkinsRuntime:
    """Launch every task of a config concurrently and collect results."""

    def __init__(
        self,
        config: WilkinsConfig,
        library: dict[str, Callable],
        fs: SimFilesystem | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.config = config
        self.graph = build_graph(config)  # validates port matching
        self.library = dict(library)
        self.fs = fs or SimFilesystem()
        self.timeout = timeout
        missing = [t.func for t in config.tasks if t.func not in self.library]
        if missing:
            raise WorkflowError(f"no callables registered for tasks: {missing}")
        self._channels: dict[str, _FileChannel] = {}

    def _channel(self, filename: str) -> _FileChannel:
        if filename not in self._channels:
            channel = _FileChannel(filename)
            self._channels[filename] = channel
            self.fs.create(filename, channel.h5)
        return self._channels[filename]

    def _bindings(self, task: TaskConfig) -> tuple[dict, dict]:
        def leaf(name: str) -> str:
            return name.rsplit("/", 1)[-1]

        inb: dict[str, _DsetBinding] = {}
        for port in task.inports:
            channel = self._channel(port.filename)
            for d in port.dsets:
                # resolve glob inports against the producing outports
                resolved = d.name
                if any(ch in d.name for ch in "*?["):
                    for link in self.graph.producers_of(task.func):
                        from fnmatch import fnmatch

                        if fnmatch(link.dataset, d.name):
                            resolved = link.dataset
                            break
                inb[leaf(resolved)] = _DsetBinding(channel, resolved, d.transport)
        outb: dict[str, _DsetBinding] = {}
        for port in task.outports:
            channel = self._channel(port.filename)
            channel.register_writer()
            for d in port.dsets:
                outb[leaf(d.name)] = _DsetBinding(channel, d.name, d.transport)
        return inb, outb

    def run(self) -> dict[str, Any]:
        """Execute the workflow; returns task func → rank-0 return value."""
        results: dict[str, Any] = {}
        errors: list[tuple[str, BaseException]] = []
        lock = threading.Lock()
        contexts: dict[str, TaskContext] = {}
        for task in self.config.tasks:
            inb, outb = self._bindings(task)
            contexts[task.func] = TaskContext(task, inb, outb, timeout=self.timeout)

        def run_task(task: TaskConfig) -> None:
            ctx = contexts[task.func]
            fn = self.library[task.func]
            try:
                launch = mpiexec(
                    fn, task.nprocs, ctx, timeout=self.timeout * 2,
                    comm_timeout=self.timeout,
                )
                with lock:
                    results[task.func] = launch.returns[0]
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with lock:
                    errors.append((task.func, exc))
            finally:
                ctx.close()

        threads = [
            threading.Thread(target=run_task, args=(t,), name=f"wilkins-{t.func}", daemon=True)
            for t in self.config.tasks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(self.timeout * 3)
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            raise WorkflowError(f"tasks did not terminate: {alive}")
        if errors:
            errors.sort(key=lambda e: e[0])
            name, exc = errors[0]
            raise WorkflowError(f"task {name!r} failed: {exc!r}") from exc
        return results
