"""Wilkins YAML workflow configuration.

The exact schema the paper's ground-truth artifact uses (Table 6, left)::

    tasks:
    - func: producer
      nprocs: 3
      outports:
      - filename: outfile.h5
        dsets:
        - name: /group1/grid
          file: 0
          memory: 1
    - func: consumer1
      nprocs: 1
      inports:
      - filename: outfile.h5
        dsets:
        - name: /group1/grid
          file: 0
          memory: 1

``file`` and ``memory`` are 0/1 flags choosing the LowFive transport for
each dataset; both may be 1 (write-through).  Dataset names may use glob
patterns (Wilkins matches producer/consumer dsets by fnmatch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import yaml

from repro.errors import ConfigError

TASK_FIELDS = {"func", "nprocs", "inports", "outports", "args", "taskCount"}
PORT_FIELDS = {"filename", "dsets", "io_freq"}
DSET_FIELDS = {"name", "file", "memory", "zerocopy", "ownership"}


@dataclass
class DsetConfig:
    """One dataset requirement inside a port."""

    name: str
    file: int = 0
    memory: int = 1

    def __post_init__(self) -> None:
        if self.file not in (0, 1) or self.memory not in (0, 1):
            raise ConfigError(
                f"dset {self.name!r}: file/memory flags must be 0 or 1"
            )
        if self.file == 0 and self.memory == 0:
            raise ConfigError(
                f"dset {self.name!r}: at least one of file/memory must be 1"
            )

    @property
    def transport(self) -> str:
        return "memory" if self.memory else "file"


@dataclass
class PortConfig:
    """A named file endpoint carrying one or more datasets."""

    filename: str
    dsets: list[DsetConfig] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.dsets:
            raise ConfigError(f"port {self.filename!r}: needs at least one dset")


@dataclass
class TaskConfig:
    """One workflow task: callable name, process count, data ports."""

    func: str
    nprocs: int = 1
    inports: list[PortConfig] = field(default_factory=list)
    outports: list[PortConfig] = field(default_factory=list)
    args: tuple = ()

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ConfigError(f"task {self.func!r}: nprocs must be positive")


@dataclass
class WilkinsConfig:
    """A full parsed workflow."""

    tasks: list[TaskConfig] = field(default_factory=list)

    def task(self, func: str) -> TaskConfig:
        for t in self.tasks:
            if t.func == func:
                return t
        raise ConfigError(f"no task with func {func!r}")

    def total_procs(self) -> int:
        return sum(t.nprocs for t in self.tasks)


def _parse_dset(raw: object, where: str) -> DsetConfig:
    if not isinstance(raw, dict):
        raise ConfigError(f"{where}: dset entry must be a mapping, got {type(raw).__name__}")
    unknown = set(raw) - DSET_FIELDS
    if unknown:
        raise ConfigError(f"{where}: unknown dset field(s) {sorted(unknown)}")
    if "name" not in raw:
        raise ConfigError(f"{where}: dset missing required field 'name'")
    return DsetConfig(
        name=str(raw["name"]),
        file=int(raw.get("file", 0)),
        memory=int(raw.get("memory", 1)),
    )


def _parse_port(raw: object, where: str) -> PortConfig:
    if not isinstance(raw, dict):
        raise ConfigError(f"{where}: port entry must be a mapping, got {type(raw).__name__}")
    unknown = set(raw) - PORT_FIELDS
    if unknown:
        raise ConfigError(f"{where}: unknown port field(s) {sorted(unknown)}")
    if "filename" not in raw:
        raise ConfigError(f"{where}: port missing required field 'filename'")
    dsets_raw = raw.get("dsets")
    if not isinstance(dsets_raw, list) or not dsets_raw:
        raise ConfigError(f"{where}: port needs a non-empty 'dsets' list")
    return PortConfig(
        filename=str(raw["filename"]),
        dsets=[_parse_dset(d, f"{where}/dsets[{i}]") for i, d in enumerate(dsets_raw)],
    )


def parse_wilkins_yaml(text: str) -> WilkinsConfig:
    """Parse and semantically validate a Wilkins YAML document."""
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ConfigError(f"malformed YAML: {exc}") from exc
    if not isinstance(doc, dict):
        raise ConfigError(
            f"top level must be a mapping with a 'tasks' list, "
            f"got {type(doc).__name__}"
        )
    unknown_top = set(doc) - {"tasks"}
    if unknown_top:
        raise ConfigError(f"unknown top-level field(s) {sorted(unknown_top)}")
    tasks_raw = doc.get("tasks")
    if not isinstance(tasks_raw, list) or not tasks_raw:
        raise ConfigError("'tasks' must be a non-empty list")

    config = WilkinsConfig()
    seen: set[str] = set()
    for i, raw in enumerate(tasks_raw):
        where = f"tasks[{i}]"
        if not isinstance(raw, dict):
            raise ConfigError(f"{where}: task entry must be a mapping")
        unknown = set(raw) - TASK_FIELDS
        if unknown:
            raise ConfigError(f"{where}: unknown task field(s) {sorted(unknown)}")
        if "func" not in raw:
            raise ConfigError(f"{where}: task missing required field 'func'")
        func = str(raw["func"])
        if func in seen:
            raise ConfigError(f"{where}: duplicate task func {func!r}")
        seen.add(func)
        task = TaskConfig(
            func=func,
            nprocs=int(raw.get("nprocs", 1)),
            inports=[
                _parse_port(p, f"{where}/inports[{j}]")
                for j, p in enumerate(raw.get("inports", []) or [])
            ],
            outports=[
                _parse_port(p, f"{where}/outports[{j}]")
                for j, p in enumerate(raw.get("outports", []) or [])
            ],
            args=tuple(raw.get("args", []) or []),
        )
        config.tasks.append(task)
    return config


def render_wilkins_yaml(config: WilkinsConfig) -> str:
    """Serialize a config back to canonical Wilkins YAML (paper layout)."""
    lines = ["tasks:"]
    for t in config.tasks:
        lines.append(f"- func: {t.func}")
        lines.append(f"  nprocs: {t.nprocs}")
        for label, ports in (("outports", t.outports), ("inports", t.inports)):
            if not ports:
                continue
            lines.append(f"  {label}:")
            for port in ports:
                lines.append(f"  - filename: {port.filename}")
                lines.append("    dsets:")
                for d in port.dsets:
                    lines.append(f"    - name: {d.name}")
                    lines.append(f"      file: {d.file}")
                    lines.append(f"      memory: {d.memory}")
    return "\n".join(lines)
