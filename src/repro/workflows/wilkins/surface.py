"""The Wilkins YAML vocabulary.

The field names here are the ones the paper's Table 6 ground truth uses;
the common hallucinations it reports (``inputs``/``outputs`` instead of
``inports``/``outports``, ``command``, ``processes``, ``dependencies``,
``workflow``, ``datasets``) are absent and therefore flagged by the
validator.
"""

from __future__ import annotations

from repro.workflows.base import ApiFunction, ApiRegistry

WILKINS_CONFIG_FIELDS = ApiRegistry(
    "Wilkins",
    [
        ApiFunction("tasks", "field", required=True,
                    description="top-level list of workflow tasks"),
        ApiFunction("func", "field", required=True,
                    description="task callable / executable name"),
        ApiFunction("nprocs", "field", required=True,
                    description="number of processes for the task"),
        ApiFunction("inports", "field", description="data the task consumes"),
        ApiFunction("outports", "field", description="data the task produces"),
        ApiFunction("filename", "field", required=True,
                    description="HDF5 namespace carrying the datasets"),
        ApiFunction("dsets", "field", required=True,
                    description="list of dataset requirements in a port"),
        ApiFunction("name", "field", required=True,
                    description="dataset path, e.g. /group1/grid"),
        ApiFunction("file", "field", description="0/1 flag: file transport"),
        ApiFunction("memory", "field", description="0/1 flag: memory transport"),
        ApiFunction("args", "field", description="extra task arguments"),
        ApiFunction("taskCount", "field", description="task replication count"),
        ApiFunction("io_freq", "field", description="I/O frequency hint"),
        ApiFunction("zerocopy", "field", description="zero-copy hint"),
        ApiFunction("ownership", "field", description="data ownership hint"),
    ],
)
