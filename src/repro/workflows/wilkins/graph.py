"""Build the workflow graph from a Wilkins config.

Producer outports are matched to consumer inports on the same filename
with fnmatch dataset-name matching (Wilkins' semantics: a consumer inport
``/group1/*`` matches any dataset the producer publishes under that
group).  Each match becomes a :class:`~repro.workflows.graph.DataLink`
carrying the consumer's transport choice.
"""

from __future__ import annotations

from fnmatch import fnmatch

from repro.errors import ConfigError
from repro.workflows.graph import DataLink, TaskSpec, WorkflowGraph
from repro.workflows.wilkins.config import WilkinsConfig


def build_graph(config: WilkinsConfig) -> WorkflowGraph:
    """Derive the task graph implied by port/dataset matching."""
    graph = WorkflowGraph()
    for t in config.tasks:
        graph.add_task(TaskSpec(name=t.func, func=t.func, nprocs=t.nprocs, args=t.args))

    for consumer in config.tasks:
        for inport in consumer.inports:
            for in_dset in inport.dsets:
                matched = False
                for producer in config.tasks:
                    if producer.func == consumer.func:
                        continue
                    for outport in producer.outports:
                        if outport.filename != inport.filename:
                            continue
                        for out_dset in outport.dsets:
                            if fnmatch(out_dset.name, in_dset.name) or fnmatch(
                                in_dset.name, out_dset.name
                            ):
                                graph.add_link(
                                    DataLink(
                                        producer=producer.func,
                                        consumer=consumer.func,
                                        dataset=out_dset.name,
                                        filename=inport.filename,
                                        transport=in_dset.transport,
                                    )
                                )
                                matched = True
                if not matched:
                    raise ConfigError(
                        f"task {consumer.func!r}: inport dataset "
                        f"{in_dset.name!r} in {inport.filename!r} has no producer"
                    )
    graph.validate()
    return graph
