"""WorkflowSystem descriptor for Wilkins.

Wilkins requires no task-code changes (tasks keep their native HDF5 I/O;
LowFive intercepts it), so ``validate_task_code`` is ``None`` and the
annotation experiment excludes the system — matching the paper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workflows.base import ApiRegistry, WorkflowSystem
from repro.workflows.wilkins.surface import WILKINS_CONFIG_FIELDS
from repro.workflows.wilkins.validator import validate_config


@lru_cache(maxsize=1)
def wilkins_system() -> WorkflowSystem:
    """Build (once) the Wilkins system descriptor."""
    return WorkflowSystem(
        name="wilkins",
        display_name="Wilkins",
        kind="in-situ",
        task_language="c",
        config_language="yaml",
        api=ApiRegistry("Wilkins", []),  # no task-level API: codes stay unchanged
        config_fields=WILKINS_CONFIG_FIELDS,
        validate_config=validate_config,
        validate_task_code=None,
    )
