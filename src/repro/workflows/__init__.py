"""Executable mini-implementations of the paper's five workflow systems.

Each subpackage provides three things:

1. a **programming-model substrate** faithful enough to run the paper's
   producer/consumer workloads (e.g. generator-based cooperative
   multitasking for Henson, a dependency-tracking DataFlowKernel for
   Parsl);
2. an **API surface registry** — the set of real functions / config fields
   of that system, which is the ground truth against which hallucinated
   calls are detected;
3. a **validator** that audits generated artifacts (configs or annotated
   task codes) and reports nonexistent API usage, missing required calls,
   and unknown config fields with line numbers.

Systems: :mod:`~repro.workflows.adios2`, :mod:`~repro.workflows.henson`,
:mod:`~repro.workflows.parsl_sim`, :mod:`~repro.workflows.pycompss`,
:mod:`~repro.workflows.wilkins`.
"""

from repro.workflows.base import (
    ApiFunction,
    ApiRegistry,
    Diagnostic,
    Severity,
    ValidationReport,
    WorkflowSystem,
)
from repro.workflows.graph import DataLink, TaskSpec, WorkflowGraph
from repro.workflows.registry import all_systems, get_system

__all__ = [
    "ApiFunction",
    "ApiRegistry",
    "Diagnostic",
    "Severity",
    "ValidationReport",
    "WorkflowSystem",
    "WorkflowGraph",
    "TaskSpec",
    "DataLink",
    "get_system",
    "all_systems",
]
