"""Shared validator building blocks.

System validators scan artifact text for identifiers that *look like* uses
of the system's API (prefix patterns such as ``henson_\\w+`` or
``adios2_\\w+``, decorator forms like ``@task``) and check each against the
system's :class:`~repro.workflows.base.ApiRegistry`.  Unknown names become
``nonexistent-api`` errors — the paper's hallucination class — and required
names that never appear become ``missing-api`` errors.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.workflows.base import ApiRegistry, Diagnostic, Severity


def scan_prefixed_calls(
    text: str, prefix_pattern: str
) -> list[tuple[str, int]]:
    """Find identifiers matching ``prefix_pattern`` with their 1-based lines.

    The pattern should match the bare identifier (e.g. ``henson_\\w+``);
    matches inside line comments (``//``, ``#``) are still reported because
    commented-out hallucinations also hurt similarity scores and mislead
    users reading the artifact.
    """
    pattern = re.compile(rf"\b({prefix_pattern})\b")
    out: list[tuple[str, int]] = []
    for lineno, line in enumerate(text.split("\n"), start=1):
        for m in pattern.finditer(line):
            out.append((m.group(1), lineno))
    return out


def check_api_usage(
    text: str,
    registry: ApiRegistry,
    prefix_pattern: str,
    *,
    required: Iterable[str] = (),
    ignore: Iterable[str] = (),
) -> list[Diagnostic]:
    """Standard identifier audit: nonexistent uses + missing required calls."""
    ignore_set = set(ignore)
    diags: list[Diagnostic] = []
    seen: set[str] = set()
    for name, lineno in scan_prefixed_calls(text, prefix_pattern):
        seen.add(name)
        if name in ignore_set:
            continue
        if not registry.known(name):
            diags.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="nonexistent-api",
                    message=f"{name!r} is not part of the {registry.system} API",
                    line=lineno,
                    symbol=name,
                    suggestion=registry.suggest(name),
                )
            )
    for name in required:
        if name not in seen:
            diags.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="missing-api",
                    message=f"required {registry.system} call {name!r} never used",
                    symbol=name,
                )
            )
    return diags


def check_fields(
    present: dict[str, int],
    registry: ApiRegistry,
    *,
    required: Iterable[str] = (),
    context: str = "",
) -> list[Diagnostic]:
    """Audit config mapping keys against a field registry.

    ``present`` maps field name → line number (or 0 when unknown).
    """
    diags: list[Diagnostic] = []
    prefix = f"{context}: " if context else ""
    for name, lineno in present.items():
        if not registry.known(name):
            diags.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="unknown-field",
                    message=f"{prefix}{name!r} is not a valid {registry.system} field",
                    line=lineno or None,
                    symbol=name,
                    suggestion=registry.suggest(name),
                )
            )
    for name in required:
        if name not in present:
            diags.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="missing-field",
                    message=f"{prefix}required field {name!r} missing",
                    symbol=name,
                )
            )
    return diags


def find_line(text: str, needle: str) -> int | None:
    """1-based line number of the first occurrence of ``needle``, if any."""
    for lineno, line in enumerate(text.split("\n"), start=1):
        if needle in line:
            return lineno
    return None
