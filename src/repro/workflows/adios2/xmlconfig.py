"""ADIOS2 XML runtime configuration.

The paper's *workflow configuration* experiment asks models to emit an
``adios2.xml`` runtime config: ``<adios-config>`` containing ``<io>``
blocks, each selecting an ``<engine>`` and its ``<parameter>`` settings.
This module parses that format into :class:`AdiosConfig` and exposes the
valid element/attribute vocabulary for the validator.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.errors import ConfigError

VALID_ROOT = "adios-config"
VALID_IO_TAG = "io"
VALID_ENGINE_TAG = "engine"
VALID_PARAMETER_TAG = "parameter"
VALID_VARIABLE_TAG = "variable"
VALID_TRANSPORT_TAG = "transport"

KNOWN_ENGINE_TYPES = ("BPFile", "BP4", "BP5", "SST", "HDF5", "DataMan", "Inline")


@dataclass
class IOConfig:
    """Configuration of one named IO group."""

    name: str
    engine_type: str = ""
    parameters: dict[str, str] = field(default_factory=dict)
    variables: list[str] = field(default_factory=list)
    transports: list[str] = field(default_factory=list)


@dataclass
class AdiosConfig:
    """Parsed adios2.xml: IO configs keyed by name."""

    ios: dict[str, IOConfig] = field(default_factory=dict)

    def io(self, name: str) -> IOConfig:
        try:
            return self.ios[name]
        except KeyError:
            raise ConfigError(f"no <io name={name!r}> block in config") from None


def parse_xml_config(text: str) -> AdiosConfig:
    """Parse and structurally validate an adios2.xml document.

    Raises :class:`ConfigError` with a human-readable message for malformed
    XML, a wrong root element, unnamed ``<io>`` blocks, or unknown engine
    types — the error classes the paper's validator cares about.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigError(f"malformed XML: {exc}") from exc

    if root.tag != VALID_ROOT:
        raise ConfigError(
            f"root element must be <{VALID_ROOT}>, got <{root.tag}>"
        )

    config = AdiosConfig()
    for io_el in root:
        if io_el.tag != VALID_IO_TAG:
            raise ConfigError(
                f"unexpected element <{io_el.tag}> under <{VALID_ROOT}> "
                f"(only <{VALID_IO_TAG}> is allowed)"
            )
        name = io_el.get("name")
        if not name:
            raise ConfigError("<io> element missing required 'name' attribute")
        if name in config.ios:
            raise ConfigError(f"duplicate <io name={name!r}>")
        io_cfg = IOConfig(name=name)
        for child in io_el:
            if child.tag == VALID_ENGINE_TAG:
                etype = child.get("type", "")
                if etype and etype not in KNOWN_ENGINE_TYPES:
                    raise ConfigError(
                        f"io {name!r}: unknown engine type {etype!r} "
                        f"(known: {', '.join(KNOWN_ENGINE_TYPES)})"
                    )
                io_cfg.engine_type = etype
                for param in child:
                    if param.tag != VALID_PARAMETER_TAG:
                        raise ConfigError(
                            f"io {name!r}: unexpected <{param.tag}> under <engine>"
                        )
                    key, value = param.get("key"), param.get("value")
                    if key is None or value is None:
                        raise ConfigError(
                            f"io {name!r}: <parameter> needs 'key' and 'value'"
                        )
                    io_cfg.parameters[key] = value
            elif child.tag == VALID_VARIABLE_TAG:
                vname = child.get("name")
                if not vname:
                    raise ConfigError(f"io {name!r}: <variable> missing 'name'")
                io_cfg.variables.append(vname)
            elif child.tag == VALID_TRANSPORT_TAG:
                io_cfg.transports.append(child.get("type", ""))
            else:
                raise ConfigError(f"io {name!r}: unexpected element <{child.tag}>")
        config.ios[name] = io_cfg
    return config


def render_xml_config(config: AdiosConfig) -> str:
    """Serialize an :class:`AdiosConfig` back to canonical adios2.xml text."""
    lines = ["<?xml version=\"1.0\"?>", f"<{VALID_ROOT}>"]
    for io_cfg in config.ios.values():
        lines.append(f'    <io name="{io_cfg.name}">')
        if io_cfg.engine_type or io_cfg.parameters:
            lines.append(f'        <engine type="{io_cfg.engine_type}">')
            for key, value in io_cfg.parameters.items():
                lines.append(f'            <parameter key="{key}" value="{value}"/>')
            lines.append("        </engine>")
        for vname in io_cfg.variables:
            lines.append(f'        <variable name="{vname}"/>')
        lines.append("    </io>")
    lines.append(f"</{VALID_ROOT}>")
    return "\n".join(lines)
