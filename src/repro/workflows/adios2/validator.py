"""Validators for ADIOS2 artifacts: XML configs and annotated C task codes."""

from __future__ import annotations

import re

from repro.errors import ConfigError
from repro.workflows.adios2.surface import ADIOS2_C_API, ADIOS2_CONFIG_FIELDS
from repro.workflows.adios2.xmlconfig import parse_xml_config
from repro.workflows.base import Diagnostic, Severity, ValidationReport
from repro.workflows.validators import check_api_usage, find_line

_XML_TAG_RE = re.compile(r"<\s*/?\s*([A-Za-z][\w.-]*)")
_XML_ATTR_RE = re.compile(r"\b([A-Za-z][\w-]*)\s*=\s*\"")


def validate_config(text: str) -> ValidationReport:
    """Audit an adios2.xml document: parseability + element/attr vocabulary."""
    report = ValidationReport(system="ADIOS2", artifact_kind="config")
    try:
        parse_xml_config(text)
    except ConfigError as exc:
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="parse-error",
                message=str(exc),
                line=None,
            )
        )
    # vocabulary audit runs even when parsing fails, to localize the damage
    for lineno, line in enumerate(text.split("\n"), start=1):
        for m in _XML_TAG_RE.finditer(line):
            tag = m.group(1)
            if tag in ("xml",):  # prolog
                continue
            if not ADIOS2_CONFIG_FIELDS.known(tag):
                report.diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="unknown-field",
                        message=f"<{tag}> is not an adios2.xml element",
                        line=lineno,
                        symbol=tag,
                        suggestion=ADIOS2_CONFIG_FIELDS.suggest(tag),
                    )
                )
        for m in _XML_ATTR_RE.finditer(line):
            attr = m.group(1)
            if attr in ("version", "encoding"):  # prolog attributes
                continue
            if not ADIOS2_CONFIG_FIELDS.known(attr):
                report.diagnostics.append(
                    Diagnostic(
                        severity=Severity.WARNING,
                        code="unknown-field",
                        message=f"attribute {attr!r} is not part of adios2.xml",
                        line=lineno,
                        symbol=attr,
                        suggestion=ADIOS2_CONFIG_FIELDS.suggest(attr),
                    )
                )
    return report


def validate_task_code(text: str) -> ValidationReport:
    """Audit an annotated C task code for the ADIOS2 surface.

    Flags ``adios2_*`` identifiers that do not exist and checks that the
    step-based producer skeleton (init → declare_io → define_variable →
    open → begin/put/end → close → finalize) is complete.
    """
    report = ValidationReport(system="ADIOS2", artifact_kind="task-code")
    report.extend(
        check_api_usage(
            text,
            ADIOS2_C_API,
            r"adios2_\w+",
            required=ADIOS2_C_API.required_names("function"),
        )
    )
    # step pairing sanity: every begin_step should be matched by an end_step
    begins = text.count("adios2_begin_step")
    ends = text.count("adios2_end_step")
    if begins != ends:
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.WARNING,
                code="structure",
                message=f"unbalanced steps: {begins} begin_step vs {ends} end_step",
                line=find_line(text, "adios2_begin_step"),
            )
        )
    return report
