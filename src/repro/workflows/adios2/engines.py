"""Concrete ADIOS2 engines over the simulated store.

* **BPFile** — batch file semantics: the writer accumulates steps into a
  :class:`~repro.store.bp.BPFile`; a reader opening in READ mode blocks
  until the writer has closed (finalized) the file, then iterates the
  completed steps.  This models post-hoc file coupling.
* **SST** — streaming semantics: reader and writer run concurrently; each
  ``begin_step`` on the reader blocks until the writer publishes the next
  step, and sees ``END_OF_STREAM`` once the writer closes.  This models
  in-situ memory/interconnect coupling.

Both transports share the step container, so switching a workflow from
file to streaming coupling is — as in real ADIOS2 — a one-line engine
change (or an XML config edit) with no task-code changes.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StoreError, WorkflowError
from repro.store import BPFile, BPVarInfo
from repro.workflows.adios2.api import Engine, IO, Mode, StepStatus, Variable


class _BPWriterMixin:
    """Shared writer logic: buffer puts per step, append on end_step."""

    _bp: BPFile
    _pending: dict[str, tuple[BPVarInfo, Any]]

    def _begin_step_impl(self, timeout: float) -> StepStatus:
        self._pending = {}
        return StepStatus.OK

    def _put_impl(self, var: Variable, data: Any) -> None:
        info = BPVarInfo(
            name=var.name,
            dtype=var.dtype,
            shape=var.shape,
            start=var.start,
            count=var.count,
        )
        self._pending[var.name] = (info, data)

    def _end_step_impl(self) -> None:
        self._bp.append_step(self._pending)
        self._pending = {}

    def _close_impl(self) -> None:
        self._bp.finalize()


class _BPReaderMixin:
    """Shared reader logic: walk steps, serve gets from the current step."""

    _bp: BPFile
    _read_index: int
    _current = None

    def _advance(self, timeout: float) -> StepStatus:
        step = self._bp.wait_for_step(self._read_index, timeout=timeout)
        if step is None:
            return StepStatus.END_OF_STREAM
        self._current = step
        self._read_index += 1
        return StepStatus.OK

    def _get_impl(self, var: Variable) -> Any:
        if self._current is None:
            raise WorkflowError(f"{self.name}: no current step")
        return self._current.read(var.name)

    def _end_step_impl(self) -> None:
        self._current = None

    def _close_impl(self) -> None:
        pass


class BPFileWriter(_BPWriterMixin, Engine):
    """BPFile engine, WRITE/APPEND mode."""

    def __init__(self, io: IO, name: str, mode: Mode) -> None:
        super().__init__(io, name, mode)
        if mode is Mode.WRITE or not io.fs.exists(name):
            self._bp = io.fs.create(name, BPFile(name))
        else:  # APPEND to an existing, unfinalized file
            existing = io.fs.open(name)
            if not isinstance(existing, BPFile):
                raise WorkflowError(f"{name!r} is not a BP file")
            if existing.finalized:
                raise WorkflowError(f"{name!r} is finalized; cannot append")
            self._bp = existing
        self._pending = {}


class BPFileReader(_BPReaderMixin, Engine):
    """BPFile engine, READ mode: waits for the file to be complete."""

    def __init__(self, io: IO, name: str, mode: Mode, timeout: float = 30.0) -> None:
        super().__init__(io, name, mode)
        bp = io.fs.wait_for(name, timeout=timeout)
        if not isinstance(bp, BPFile):
            raise WorkflowError(f"{name!r} is not a BP file")
        self._bp = bp
        self._read_index = 0

    def _begin_step_impl(self, timeout: float) -> StepStatus:
        # file semantics: only completed files are readable
        import time

        deadline = time.monotonic() + timeout
        while not self._bp.finalized:
            if time.monotonic() >= deadline:
                raise StoreError(
                    f"{self.name}: BPFile reader timed out waiting for writer close"
                )
            time.sleep(0.001)
        if self._read_index >= self._bp.num_steps:
            return StepStatus.END_OF_STREAM
        return self._advance(timeout)


class SSTWriter(_BPWriterMixin, Engine):
    """SST engine, WRITE mode: steps stream to concurrent readers."""

    def __init__(self, io: IO, name: str, mode: Mode) -> None:
        super().__init__(io, name, mode)
        if mode is not Mode.WRITE:
            raise WorkflowError("SST supports WRITE mode for producers")
        self._bp = io.fs.open_or_create(name, lambda: BPFile(name))
        if not isinstance(self._bp, BPFile):
            raise WorkflowError(f"{name!r} is not a BP stream")
        self._pending = {}


class SSTReader(_BPReaderMixin, Engine):
    """SST engine, READ mode: blocks per step while the writer runs."""

    def __init__(self, io: IO, name: str, mode: Mode, timeout: float = 30.0) -> None:
        super().__init__(io, name, mode)
        bp = io.fs.open_or_create(name, lambda: BPFile(name))
        if not isinstance(bp, BPFile):
            raise WorkflowError(f"{name!r} is not a BP stream")
        self._bp = bp
        self._read_index = 0

    def _begin_step_impl(self, timeout: float) -> StepStatus:
        return self._advance(timeout)


ENGINE_TYPES = {
    "BPFile": (BPFileWriter, BPFileReader),
    "BP4": (BPFileWriter, BPFileReader),
    "BP5": (BPFileWriter, BPFileReader),
    "SST": (SSTWriter, SSTReader),
}


def make_engine(io: IO, name: str, mode: Mode) -> Engine:
    """Instantiate the engine selected on ``io`` for the requested mode."""
    try:
        writer_cls, reader_cls = ENGINE_TYPES[io.engine_type]
    except KeyError:
        raise WorkflowError(
            f"unknown ADIOS2 engine {io.engine_type!r}; "
            f"available: {sorted(ENGINE_TYPES)}"
        ) from None
    if mode is Mode.READ:
        return reader_cls(io, name, mode)
    return writer_cls(io, name, mode)
