"""The ADIOS2 API surface: real C functions and XML config vocabulary.

This registry is the ground truth for hallucination detection — any
``adios2_*`` identifier in a generated artifact that is not listed here is
a nonexistent-API error (e.g. models inventing ``adios2_write`` instead of
``adios2_put``).
"""

from __future__ import annotations

from repro.workflows.base import ApiFunction, ApiRegistry

# C bindings surface (the annotation experiment provides a C producer).
# `required=True` marks the calls a correct step-based producer annotation
# must contain.
ADIOS2_C_API = ApiRegistry(
    "ADIOS2",
    [
        ApiFunction("adios2_init", "function", "adios2_adios* adios2_init(MPI_Comm)",
                    "initialize the ADIOS2 library on a communicator", required=True),
        ApiFunction("adios2_init_config", "function",
                    "adios2_adios* adios2_init_config(const char*, MPI_Comm)",
                    "initialize with an XML runtime configuration"),
        ApiFunction("adios2_declare_io", "function",
                    "adios2_io* adios2_declare_io(adios2_adios*, const char*)",
                    "declare a named IO group", required=True),
        ApiFunction("adios2_at_io", "function",
                    "adios2_io* adios2_at_io(adios2_adios*, const char*)",
                    "retrieve a previously declared IO group"),
        ApiFunction("adios2_set_engine", "function",
                    "adios2_error adios2_set_engine(adios2_io*, const char*)",
                    "select the engine type for an IO group"),
        ApiFunction("adios2_set_parameter", "function",
                    "adios2_error adios2_set_parameter(adios2_io*, const char*, const char*)",
                    "set one engine parameter"),
        ApiFunction("adios2_define_variable", "function",
                    "adios2_variable* adios2_define_variable(adios2_io*, const char*, "
                    "adios2_type, size_t, const size_t*, const size_t*, const size_t*, "
                    "adios2_constant_dims)",
                    "declare a variable with global shape and local block", required=True),
        ApiFunction("adios2_inquire_variable", "function",
                    "adios2_variable* adios2_inquire_variable(adios2_io*, const char*)",
                    "look up a variable on the reader side"),
        ApiFunction("adios2_open", "function",
                    "adios2_engine* adios2_open(adios2_io*, const char*, adios2_mode)",
                    "open an engine on a file or stream", required=True),
        ApiFunction("adios2_begin_step", "function",
                    "adios2_error adios2_begin_step(adios2_engine*, adios2_step_mode, "
                    "float, adios2_step_status*)",
                    "start an output/input step", required=True),
        ApiFunction("adios2_put", "function",
                    "adios2_error adios2_put(adios2_engine*, adios2_variable*, const void*, "
                    "adios2_mode)",
                    "stage data for output", required=True),
        ApiFunction("adios2_get", "function",
                    "adios2_error adios2_get(adios2_engine*, adios2_variable*, void*, "
                    "adios2_mode)",
                    "schedule data for input"),
        ApiFunction("adios2_end_step", "function",
                    "adios2_error adios2_end_step(adios2_engine*)",
                    "complete the current step", required=True),
        ApiFunction("adios2_close", "function",
                    "adios2_error adios2_close(adios2_engine*)",
                    "close the engine", required=True),
        ApiFunction("adios2_finalize", "function",
                    "adios2_error adios2_finalize(adios2_adios*)",
                    "release the library", required=True),
        ApiFunction("adios2_perform_puts", "function",
                    "adios2_error adios2_perform_puts(adios2_engine*)",
                    "execute deferred puts"),
        ApiFunction("adios2_perform_gets", "function",
                    "adios2_error adios2_perform_gets(adios2_engine*)",
                    "execute deferred gets"),
        # types / enums commonly referenced in annotated code
        ApiFunction("adios2_type_float", "keyword"),
        ApiFunction("adios2_type_double", "keyword"),
        ApiFunction("adios2_type_int32_t", "keyword"),
        ApiFunction("adios2_mode_write", "keyword"),
        ApiFunction("adios2_mode_read", "keyword"),
        ApiFunction("adios2_mode_deferred", "keyword"),
        ApiFunction("adios2_mode_sync", "keyword"),
        ApiFunction("adios2_step_mode_append", "keyword"),
        ApiFunction("adios2_step_mode_read", "keyword"),
        ApiFunction("adios2_step_status_ok", "keyword"),
        ApiFunction("adios2_constant_dims_true", "keyword"),
        ApiFunction("adios2_constant_dims_false", "keyword"),
        ApiFunction("adios2_c", "header", description="C bindings header adios2_c.h"),
        ApiFunction("adios2_adios", "class"),
        ApiFunction("adios2_io", "class"),
        ApiFunction("adios2_variable", "class"),
        ApiFunction("adios2_engine", "class"),
        ApiFunction("adios2_error", "class"),
        ApiFunction("adios2_step_status", "class"),
    ],
)

# XML config vocabulary (elements and attributes) for the configuration
# experiment's validator.
ADIOS2_CONFIG_FIELDS = ApiRegistry(
    "ADIOS2",
    [
        ApiFunction("adios-config", "field", required=True),
        ApiFunction("io", "field", required=True),
        ApiFunction("engine", "field"),
        ApiFunction("parameter", "field"),
        ApiFunction("variable", "field"),
        ApiFunction("transport", "field"),
        ApiFunction("name", "field"),
        ApiFunction("type", "field"),
        ApiFunction("key", "field"),
        ApiFunction("value", "field"),
    ],
)
