"""ADIOS2-style Python API: Adios → IO → Engine → Variable.

The object model and method names follow the real adios2 Python bindings
(`adios2.Adios`, `io.define_variable`, `engine.begin_step`...), so the
reference task codes in the evaluation assets read like real ADIOS2
programs.  Data movement is delegated to the engine implementations in
:mod:`repro.workflows.adios2.engines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

import numpy as np

from repro.errors import WorkflowError
from repro.store import SimFilesystem, default_filesystem


class Mode(Enum):
    WRITE = "write"
    READ = "read"
    APPEND = "append"


class StepStatus(Enum):
    OK = "ok"
    END_OF_STREAM = "end-of-stream"
    NOT_READY = "not-ready"


@dataclass(frozen=True)
class Variable:
    """Declared variable: global shape plus this rank's block start/count."""

    name: str
    dtype: str = "double"
    shape: tuple[int, ...] = ()
    start: tuple[int, ...] = ()
    count: tuple[int, ...] = ()

    @property
    def is_scalar(self) -> bool:
        return self.shape == () and self.count == ()


@dataclass
class IO:
    """A named I/O group: engine choice, parameters, declared variables."""

    name: str
    fs: SimFilesystem
    engine_type: str = "BPFile"
    parameters: dict[str, str] = field(default_factory=dict)
    variables: dict[str, Variable] = field(default_factory=dict)

    def set_engine(self, engine_type: str) -> None:
        from repro.workflows.adios2.engines import ENGINE_TYPES

        if engine_type not in ENGINE_TYPES:
            raise WorkflowError(
                f"unknown ADIOS2 engine {engine_type!r}; "
                f"available: {sorted(ENGINE_TYPES)}"
            )
        self.engine_type = engine_type

    def set_parameter(self, key: str, value: str) -> None:
        self.parameters[key] = str(value)

    def set_parameters(self, params: dict[str, str]) -> None:
        for key, value in params.items():
            self.set_parameter(key, value)

    def define_variable(
        self,
        name: str,
        data: Any | None = None,
        shape: tuple[int, ...] = (),
        start: tuple[int, ...] = (),
        count: tuple[int, ...] = (),
        dtype: str | None = None,
    ) -> Variable:
        """Declare a variable; dtype may be inferred from a sample array."""
        if name in self.variables:
            raise WorkflowError(f"IO {self.name!r}: variable {name!r} already defined")
        if dtype is None:
            dtype = str(np.asarray(data).dtype) if data is not None else "double"
        var = Variable(
            name=name,
            dtype=dtype,
            shape=tuple(shape),
            start=tuple(start),
            count=tuple(count),
        )
        self.variables[name] = var
        return var

    def inquire_variable(self, name: str) -> Variable | None:
        return self.variables.get(name)

    def remove_all_variables(self) -> None:
        self.variables.clear()

    def open(self, name: str, mode: Mode) -> "Engine":
        """Open an engine on file/stream ``name`` in the given mode."""
        from repro.workflows.adios2.engines import make_engine

        return make_engine(self, name, mode)


class Engine:
    """Abstract step-based engine; concrete transports live in engines.py."""

    def __init__(self, io: IO, name: str, mode: Mode) -> None:
        self.io = io
        self.name = name
        self.mode = mode
        self._open = True
        self._in_step = False
        self._step_index = -1

    # -- step control --------------------------------------------------------

    def begin_step(self, timeout: float = 30.0) -> StepStatus:
        self._require_open()
        if self._in_step:
            raise WorkflowError(f"{self.name}: begin_step inside an open step")
        status = self._begin_step_impl(timeout)
        if status is StepStatus.OK:
            self._in_step = True
            self._step_index += 1
        return status

    def end_step(self) -> None:
        self._require_open()
        if not self._in_step:
            raise WorkflowError(f"{self.name}: end_step without begin_step")
        self._end_step_impl()
        self._in_step = False

    def current_step(self) -> int:
        return self._step_index

    def between_step_pairs(self) -> bool:
        return not self._in_step

    # -- data ------------------------------------------------------------------

    def put(self, variable: Variable | str, data: Any) -> None:
        self._require_open()
        if self.mode is Mode.READ:
            raise WorkflowError(f"{self.name}: put on a read-mode engine")
        if not self._in_step:
            raise WorkflowError(f"{self.name}: put outside begin_step/end_step")
        var = self._resolve(variable)
        self._put_impl(var, np.asarray(data) if not var.is_scalar else data)

    def get(self, variable: Variable | str) -> Any:
        self._require_open()
        if self.mode is not Mode.READ:
            raise WorkflowError(f"{self.name}: get on a write-mode engine")
        if not self._in_step:
            raise WorkflowError(f"{self.name}: get outside begin_step/end_step")
        return self._get_impl(self._resolve(variable))

    def close(self) -> None:
        if self._open:
            if self._in_step:
                self.end_step()
            self._close_impl()
            self._open = False

    # -- engine internals -------------------------------------------------------

    def _resolve(self, variable: Variable | str) -> Variable:
        if isinstance(variable, Variable):
            return variable
        var = self.io.inquire_variable(variable)
        if var is None:
            # readers may legitimately reference variables declared by the
            # writer side; synthesize a descriptor on the fly
            var = Variable(name=variable)
        return var

    def _require_open(self) -> None:
        if not self._open:
            raise WorkflowError(f"{self.name}: engine is closed")

    def _begin_step_impl(self, timeout: float) -> StepStatus:  # pragma: no cover
        raise NotImplementedError

    def _end_step_impl(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def _put_impl(self, var: Variable, data: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def _get_impl(self, var: Variable) -> Any:  # pragma: no cover
        raise NotImplementedError

    def _close_impl(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Adios:
    """Top-level ADIOS2 object: a registry of named IO groups.

    ``config_file`` applies an XML runtime configuration (engine types and
    parameters per IO), exactly like passing ``adios2.xml`` to the real
    library.
    """

    def __init__(
        self,
        fs: SimFilesystem | None = None,
        config_file: str | None = None,
        config_text: str | None = None,
    ) -> None:
        self.fs = fs if fs is not None else default_filesystem()
        self._ios: dict[str, IO] = {}
        self._config = None
        if config_text is not None:
            from repro.workflows.adios2.xmlconfig import parse_xml_config

            self._config = parse_xml_config(config_text)
        elif config_file is not None:
            from repro.workflows.adios2.xmlconfig import parse_xml_config

            self._config = parse_xml_config(self.fs.open(config_file))

    def declare_io(self, name: str) -> IO:
        if name in self._ios:
            raise WorkflowError(f"IO {name!r} already declared")
        io = IO(name=name, fs=self.fs)
        if self._config is not None:
            io_cfg = self._config.ios.get(name)
            if io_cfg is not None:
                if io_cfg.engine_type:
                    io.set_engine(io_cfg.engine_type)
                io.set_parameters(io_cfg.parameters)
        self._ios[name] = io
        return io

    def at_io(self, name: str) -> IO:
        try:
            return self._ios[name]
        except KeyError:
            raise WorkflowError(f"no IO named {name!r}") from None

    def finalize(self) -> None:
        self._ios.clear()
