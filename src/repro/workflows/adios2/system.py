"""WorkflowSystem descriptor for ADIOS2."""

from __future__ import annotations

from functools import lru_cache

from repro.workflows.adios2.surface import ADIOS2_C_API, ADIOS2_CONFIG_FIELDS
from repro.workflows.adios2.validator import validate_config, validate_task_code
from repro.workflows.base import WorkflowSystem


@lru_cache(maxsize=1)
def adios2_system() -> WorkflowSystem:
    """Build (once) the ADIOS2 system descriptor."""
    return WorkflowSystem(
        name="adios2",
        display_name="ADIOS2",
        kind="in-situ",
        task_language="c",
        config_language="xml",
        api=ADIOS2_C_API,
        config_fields=ADIOS2_CONFIG_FIELDS,
        validate_config=validate_config,
        validate_task_code=validate_task_code,
    )
