"""ADIOS2 substrate: step-based I/O middleware for coupled workflows.

Mirrors the ADIOS2 programming model closely enough to run the paper's
producer/consumer workloads:

* :class:`~repro.workflows.adios2.api.Adios` → ``declare_io`` →
  :class:`~repro.workflows.adios2.api.IO` → ``open`` →
  :class:`~repro.workflows.adios2.api.Engine` with
  ``begin_step`` / ``put`` / ``get`` / ``end_step`` semantics;
* two engines: **BPFile** (readers see completed files, like BP4 without
  streaming) and **SST** (concurrent step streaming, reader blocks per
  step) — see :mod:`repro.workflows.adios2.engines`;
* an XML runtime-configuration parser/validator
  (:mod:`repro.workflows.adios2.xmlconfig`), the artifact type the paper's
  *workflow configuration* experiment targets for ADIOS2;
* the C API surface registry and task-code validator used to detect
  hallucinated ``adios2_*`` calls.
"""

from repro.workflows.adios2.api import Adios, Engine, IO, Mode, StepStatus, Variable
from repro.workflows.adios2.surface import ADIOS2_C_API, ADIOS2_CONFIG_FIELDS
from repro.workflows.adios2.system import adios2_system
from repro.workflows.adios2.validator import validate_config, validate_task_code
from repro.workflows.adios2.xmlconfig import AdiosConfig, IOConfig, parse_xml_config

__all__ = [
    "Adios",
    "IO",
    "Engine",
    "Variable",
    "Mode",
    "StepStatus",
    "AdiosConfig",
    "IOConfig",
    "parse_xml_config",
    "ADIOS2_C_API",
    "ADIOS2_CONFIG_FIELDS",
    "validate_config",
    "validate_task_code",
    "adios2_system",
]
