"""C-flavoured Henson API bound to the calling puppet.

Task code written against this module reads exactly like the C API the
paper's reference codes use::

    from repro.workflows.henson import api as henson

    def producer():
        t = 0
        while henson.henson_active():
            array = make_data()
            henson.henson_save_array("array", array)
            henson.henson_save_int("t", t)
            henson.henson_yield()
            t += 1

Functions resolve the current puppet through a thread-local binding set by
:class:`~repro.workflows.henson.coroutines.HensonRuntime`; calling them
outside a running puppet raises :class:`~repro.errors.WorkflowError`
(standalone execution, which real Henson supports, is available via
``henson_active() == False`` when ``strict=False``).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.errors import WorkflowError

_tls = threading.local()


def _bind_context(runtime, state) -> None:
    _tls.runtime = runtime
    _tls.state = state


def _unbind_context() -> None:
    _tls.runtime = None
    _tls.state = None


def _current():
    runtime = getattr(_tls, "runtime", None)
    state = getattr(_tls, "state", None)
    if runtime is None or state is None:
        return None, None
    return runtime, state


def _require_runtime():
    runtime, state = _current()
    if runtime is None:
        raise WorkflowError(
            "henson API called outside a running puppet "
            "(run task code through HensonRuntime)"
        )
    return runtime, state


# -- scheduling -----------------------------------------------------------------


def henson_active() -> bool:
    """True while the workflow is running; False standalone or at shutdown."""
    runtime, _state = _current()
    if runtime is None:
        return False
    return runtime.active()


def henson_yield() -> None:
    """Hand the baton to the next puppet (no-op standalone)."""
    runtime, state = _current()
    if runtime is None:
        return
    runtime._yield_turn(state)


def henson_stop() -> None:
    """Request workflow shutdown; loops observe it via henson_active()."""
    runtime, _state = _require_runtime()
    runtime.stop()


# -- named-value exchange (typed save) --------------------------------------------


def _save(name: str, value: Any) -> None:
    runtime, _state = _require_runtime()
    runtime.values.save(name, value)


def _load(name: str) -> Any:
    runtime, _state = _require_runtime()
    return runtime.values.load(name)


def henson_save_int(name: str, value: int) -> None:
    """Save an integer under ``name``."""
    _save(name, int(value))


def henson_save_float(name: str, value: float) -> None:
    """Save a single-precision float under ``name``."""
    _save(name, float(value))


def henson_save_double(name: str, value: float) -> None:
    """Save a double-precision float under ``name``."""
    _save(name, float(value))


def henson_save_size_t(name: str, value: int) -> None:
    """Save an unsigned size under ``name``."""
    if value < 0:
        raise WorkflowError(f"henson_save_size_t({name!r}): negative value {value}")
    _save(name, int(value))


def henson_save_array(name: str, array: np.ndarray, count: int | None = None) -> None:
    """Save an array by reference (zero-copy pointer passing)."""
    arr = np.asarray(array)
    if count is not None and count != arr.size:
        raise WorkflowError(
            f"henson_save_array({name!r}): count {count} != array size {arr.size}"
        )
    _save(name, arr)


def henson_save_pointer(name: str, obj: Any) -> None:
    """Save an opaque object reference under ``name``."""
    _save(name, obj)


def henson_load_int(name: str) -> int:
    return int(_load(name))


def henson_load_float(name: str) -> float:
    return float(_load(name))


def henson_load_double(name: str) -> float:
    return float(_load(name))


def henson_load_size_t(name: str) -> int:
    value = int(_load(name))
    if value < 0:
        raise WorkflowError(f"henson_load_size_t({name!r}): negative value {value}")
    return value


def henson_load_array(name: str) -> np.ndarray:
    value = _load(name)
    return np.asarray(value)


def henson_load_pointer(name: str) -> Any:
    return _load(name)


def henson_exists(name: str) -> bool:
    """True if a value named ``name`` has been saved."""
    runtime, _state = _require_runtime()
    return runtime.values.exists(name)
