"""WorkflowSystem descriptor for Henson."""

from __future__ import annotations

from functools import lru_cache

from repro.workflows.base import WorkflowSystem
from repro.workflows.henson.surface import HENSON_C_API, HENSON_HWL_FIELDS
from repro.workflows.henson.validator import validate_config, validate_task_code


@lru_cache(maxsize=1)
def henson_system() -> WorkflowSystem:
    """Build (once) the Henson system descriptor."""
    return WorkflowSystem(
        name="henson",
        display_name="Henson",
        kind="in-situ",
        task_language="c",
        config_language="hwl",
        api=HENSON_C_API,
        config_fields=HENSON_HWL_FIELDS,
        validate_config=validate_config,
        validate_task_code=validate_task_code,
    )
