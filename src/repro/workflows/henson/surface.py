"""The Henson API surface: real C functions and hwl script vocabulary.

This registry deliberately excludes the names the paper documents as
hallucinations — ``henson_put``, ``henson_declare_variable``,
``henson_data_init``, ``henson_init``, ``henson_rank``, ``henson_size``,
``henson_finalize`` — so the validator classifies them as nonexistent.
(Henson has no explicit init/finalize: puppets are re-entered by the
runtime, and MPI identity comes from the ambient communicator.)
"""

from __future__ import annotations

from repro.workflows.base import ApiFunction, ApiRegistry

HENSON_C_API = ApiRegistry(
    "Henson",
    [
        ApiFunction("henson_yield", "function", "void henson_yield()",
                    "hand control to the next puppet", required=True),
        ApiFunction("henson_active", "function", "int henson_active()",
                    "true while the workflow is running", required=True),
        ApiFunction("henson_stop", "function", "void henson_stop()",
                    "request workflow shutdown"),
        ApiFunction("henson_save_int", "function",
                    "void henson_save_int(const char*, int)",
                    "save an integer named value", required=True),
        ApiFunction("henson_save_float", "function",
                    "void henson_save_float(const char*, float)"),
        ApiFunction("henson_save_double", "function",
                    "void henson_save_double(const char*, double)"),
        ApiFunction("henson_save_size_t", "function",
                    "void henson_save_size_t(const char*, size_t)"),
        ApiFunction("henson_save_array", "function",
                    "void henson_save_array(const char*, void*, size_t, size_t, size_t)",
                    "save an array by reference (zero copy)", required=True),
        ApiFunction("henson_save_pointer", "function",
                    "void henson_save_pointer(const char*, void*)"),
        ApiFunction("henson_load_int", "function",
                    "void henson_load_int(const char*, int*)"),
        ApiFunction("henson_load_float", "function",
                    "void henson_load_float(const char*, float*)"),
        ApiFunction("henson_load_double", "function",
                    "void henson_load_double(const char*, double*)"),
        ApiFunction("henson_load_size_t", "function",
                    "void henson_load_size_t(const char*, size_t*)"),
        ApiFunction("henson_load_array", "function",
                    "void henson_load_array(const char*, void**, size_t*, size_t*, size_t*)"),
        ApiFunction("henson_load_pointer", "function",
                    "void henson_load_pointer(const char*, void**)"),
        ApiFunction("henson_exists", "function", "int henson_exists(const char*)"),
    ],
)

# hwl grammar vocabulary: keywords the config validator accepts.
HENSON_HWL_FIELDS = ApiRegistry(
    "Henson",
    [
        ApiFunction("on", "keyword", required=True),
        ApiFunction("procs", "keyword", required=True),
    ],
)
