"""Cooperative multitasking scheduler for Henson puppets.

Puppets run on dedicated threads but only one holds the *baton* at a time,
exactly like coroutines: ``henson_yield()`` parks the caller and passes
the baton to the next puppet in declaration order.  Data exchange happens
through a shared named-value store (pointer passing — values are shared
Python/numpy objects, never copied, mirroring Henson's zero-copy design).

Lifecycle: the runtime repeatedly cycles through live puppets.  When every
*driver* puppet (by default the first one, conventionally the simulation)
has returned, ``henson_active()`` flips to False so that loop-style
consumer puppets (``while henson_active(): ...``) exit their loops.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import WorkflowError


@dataclass
class Puppet:
    """One cooperative task: a Python callable standing in for a shared object."""

    name: str
    fn: Callable[..., Any]
    args: tuple = ()
    driver: bool = False  # drivers decide workflow lifetime


class NamedValues:
    """The Henson exchange namespace (name → live object)."""

    def __init__(self) -> None:
        self._values: dict[str, Any] = {}

    def save(self, name: str, value: Any) -> None:
        self._values[name] = value

    def load(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise WorkflowError(f"henson_load: no saved value named {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._values

    def names(self) -> list[str]:
        return sorted(self._values)


class _PuppetState:
    def __init__(self, puppet: Puppet) -> None:
        self.puppet = puppet
        self.go = threading.Event()
        self.parked = threading.Event()
        self.finished = False
        self.exception: BaseException | None = None
        self.result: Any = None
        self.thread: threading.Thread | None = None


class HensonRuntime:
    """Run a set of puppets cooperatively until all complete.

    ``yields`` and execution order are fully deterministic: puppets are
    cycled in declaration order, and only one thread is runnable at any
    instant.
    """

    def __init__(self, puppets: list[Puppet], *, turn_timeout: float = 30.0) -> None:
        if not puppets:
            raise WorkflowError("HensonRuntime needs at least one puppet")
        names = [p.name for p in puppets]
        if len(set(names)) != len(names):
            raise WorkflowError(f"duplicate puppet names: {names}")
        if not any(p.driver for p in puppets):
            puppets = [
                Puppet(p.name, p.fn, p.args, driver=(i == 0))
                for i, p in enumerate(puppets)
            ]
        self.puppets = puppets
        self.values = NamedValues()
        self._states = [_PuppetState(p) for p in puppets]
        self._turn_timeout = turn_timeout
        self._stopped = False
        self._yield_counts: dict[str, int] = {p.name: 0 for p in puppets}

    # -- queries used by the api layer ---------------------------------------

    def active(self) -> bool:
        """True while at least one driver puppet is still running."""
        if self._stopped:
            return False
        return any(
            s.puppet.driver and not s.finished for s in self._states
        )

    def stop(self) -> None:
        """henson_stop(): terminate the workflow at the next yield points."""
        self._stopped = True

    def yield_counts(self) -> dict[str, int]:
        return dict(self._yield_counts)

    # -- execution -------------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Execute all puppets to completion; returns name → return value."""
        from repro.workflows.henson.api import _bind_context, _unbind_context

        def body(state: _PuppetState) -> None:
            state.go.wait()
            state.go.clear()
            _bind_context(self, state)
            try:
                state.result = state.puppet.fn(*state.puppet.args)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                state.exception = exc
            finally:
                _unbind_context()
                state.finished = True
                state.parked.set()

        for state in self._states:
            state.thread = threading.Thread(
                target=body, args=(state,), name=f"puppet-{state.puppet.name}", daemon=True
            )
            state.thread.start()

        # baton loop: give each live puppet one turn per round
        while any(not s.finished for s in self._states):
            progressed = False
            for state in self._states:
                if state.finished:
                    continue
                progressed = True
                state.parked.clear()
                state.go.set()
                if not state.parked.wait(self._turn_timeout):
                    raise WorkflowError(
                        f"puppet {state.puppet.name!r} did not yield or finish "
                        f"within {self._turn_timeout}s"
                    )
                if state.exception is not None:
                    raise WorkflowError(
                        f"puppet {state.puppet.name!r} failed: {state.exception!r}"
                    ) from state.exception
            if not progressed:  # pragma: no cover - loop condition guards this
                break
        return {s.puppet.name: s.result for s in self._states}

    # called by api.henson_yield via the bound context
    def _yield_turn(self, state: _PuppetState) -> None:
        self._yield_counts[state.puppet.name] += 1
        state.parked.set()  # hand baton back to scheduler
        state.go.wait()  # wait for next turn
        state.go.clear()
