"""Validators for Henson artifacts: ``.hwl`` scripts and annotated C codes."""

from __future__ import annotations

import re

from repro.errors import ConfigError
from repro.workflows.base import Diagnostic, Severity, ValidationReport
from repro.workflows.henson.hwl import parse_hwl
from repro.workflows.henson.surface import HENSON_C_API
from repro.workflows.validators import check_api_usage, find_line

# YAML-ish / INI-ish lines signal the model emitted the wrong artifact kind
_FOREIGN_CONFIG_RE = re.compile(r"^\s*(tasks:|workflow:|\[[\w.-]+\]|-\s+\w+:)", re.MULTILINE)


def validate_config(text: str) -> ValidationReport:
    """Audit an ``.hwl`` workflow script."""
    report = ValidationReport(system="Henson", artifact_kind="config")
    if _FOREIGN_CONFIG_RE.search(text):
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="structure",
                message="artifact looks like YAML/INI, not a Henson hwl script",
            )
        )
        return report
    try:
        parse_hwl(text)
    except ConfigError as exc:
        message = str(exc)
        lineno = None
        m = re.search(r"hwl line (\d+)", message)
        if m:
            lineno = int(m.group(1))
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="parse-error",
                message=message,
                line=lineno,
            )
        )
    return report


def validate_task_code(text: str) -> ValidationReport:
    """Audit an annotated C task code against the Henson surface.

    Catches the paper's reported failure modes: nonexistent calls such as
    ``henson_put`` / ``henson_declare_variable`` / ``henson_data_init`` /
    ``henson_init``, plus missing required calls (a correct producer uses
    ``henson_active``, ``henson_save_array``, ``henson_save_int`` and
    ``henson_yield``).
    """
    report = ValidationReport(system="Henson", artifact_kind="task-code")
    report.extend(
        check_api_usage(
            text,
            HENSON_C_API,
            r"henson_\w+",
            required=HENSON_C_API.required_names("function"),
        )
    )
    # Henson puppets must not manage MPI lifetime themselves: the runtime
    # owns MPI_Init/MPI_Finalize when puppets are re-entered cooperatively.
    for bad in ("MPI_Init", "MPI_Finalize"):
        lineno = find_line(text, bad + "(")
        if lineno is not None:
            report.diagnostics.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    code="structure",
                    message=(
                        f"{bad} called inside a puppet; the Henson runtime "
                        "owns the MPI lifetime"
                    ),
                    line=lineno,
                    symbol=bad,
                )
            )
    return report
