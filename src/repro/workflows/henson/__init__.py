"""Henson substrate: cooperative multitasking for in-situ processing.

Henson (Morozov & Lukic 2016) runs *puppets* — tasks compiled as shared
objects — under cooperative multitasking on the same ranks, exchanging
data by passing pointers through a named-value store.  Our substrate
reproduces that model in Python:

* :class:`~repro.workflows.henson.coroutines.HensonRuntime` schedules
  puppets round-robin on one baton; ``henson_yield()`` hands control to
  the next puppet, ``henson_active()`` tells loop-style puppets whether
  the workflow is still running (it turns false once every driver puppet
  has finished);
* :mod:`~repro.workflows.henson.api` exposes the C-flavoured functions
  (``henson_save_array``, ``henson_save_int``, ``henson_load_*``,
  ``henson_yield``, ``henson_active``, ``henson_stop``) bound to the
  calling puppet via a thread-local context — task code reads exactly
  like its C counterpart;
* :mod:`~repro.workflows.henson.hwl` parses the workflow-description
  script (the artifact the configuration experiment targets for Henson);
* the surface registry and validator catch the hallucinated calls the
  paper reports (``henson_put``, ``henson_declare_variable``,
  ``henson_data_init``, ``henson_init`` ...).
"""

from repro.workflows.henson.api import (
    henson_active,
    henson_load_array,
    henson_load_float,
    henson_load_int,
    henson_save_array,
    henson_save_float,
    henson_save_int,
    henson_stop,
    henson_yield,
)
from repro.workflows.henson.coroutines import HensonRuntime, Puppet
from repro.workflows.henson.hwl import HwlScript, PuppetSpec, parse_hwl, render_hwl
from repro.workflows.henson.surface import HENSON_C_API, HENSON_HWL_FIELDS
from repro.workflows.henson.system import henson_system
from repro.workflows.henson.validator import validate_config, validate_task_code

__all__ = [
    "HensonRuntime",
    "Puppet",
    "henson_save_int",
    "henson_save_float",
    "henson_save_array",
    "henson_load_int",
    "henson_load_float",
    "henson_load_array",
    "henson_yield",
    "henson_active",
    "henson_stop",
    "HwlScript",
    "PuppetSpec",
    "parse_hwl",
    "render_hwl",
    "HENSON_C_API",
    "HENSON_HWL_FIELDS",
    "validate_config",
    "validate_task_code",
    "henson_system",
]
