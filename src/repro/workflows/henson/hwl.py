"""Henson workflow scripts (``.hwl``).

Henson describes workflows in a small scripting language listing puppets,
their command lines, and their process allocation.  Our substrate's
dialect is line-oriented::

    # 3-node workflow
    producer = ./producer grid particles on 3 procs
    consumer1 = ./consumer1 grid on 1 procs
    consumer2 = ./consumer2 particles on 1 procs

Each line declares ``name = executable [args...] on <n> procs``; the
``on <n> procs`` clause is optional and defaults to 1.  Blank lines and
``#`` comments are ignored.  This is the artifact the paper's *workflow
configuration* experiment targets for Henson; the validator in
:mod:`repro.workflows.henson.validator` audits exactly this grammar.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.workflows.graph import TaskSpec, WorkflowGraph

_LINE_RE = re.compile(
    r"^(?P<name>[A-Za-z_][\w-]*)\s*=\s*"
    r"(?P<cmd>\S+)"
    r"(?P<args>(?:\s+(?!on\s+\d+\s+procs\b)\S+)*)"
    r"(?:\s+on\s+(?P<procs>\d+)\s+procs)?\s*$"
)


@dataclass
class PuppetSpec:
    """One declared puppet: executable, arguments, process count."""

    name: str
    executable: str
    args: tuple[str, ...] = ()
    nprocs: int = 1


@dataclass
class HwlScript:
    """Parsed workflow script."""

    puppets: list[PuppetSpec] = field(default_factory=list)

    def puppet(self, name: str) -> PuppetSpec:
        for p in self.puppets:
            if p.name == name:
                return p
        raise ConfigError(f"no puppet named {name!r}")

    def total_procs(self) -> int:
        return sum(p.nprocs for p in self.puppets)

    def to_graph(self) -> WorkflowGraph:
        """Tasks only — Henson links are implicit through named values."""
        graph = WorkflowGraph()
        for p in self.puppets:
            graph.add_task(
                TaskSpec(name=p.name, func=p.executable, nprocs=p.nprocs, args=p.args)
            )
        return graph


def parse_hwl(text: str) -> HwlScript:
    """Parse an ``.hwl`` script; raises :class:`ConfigError` with line info."""
    script = HwlScript()
    seen: set[str] = set()
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if m is None:
            raise ConfigError(
                f"hwl line {lineno}: cannot parse {line!r} "
                f"(expected 'name = executable [args...] [on N procs]')"
            )
        name = m.group("name")
        if name in seen:
            raise ConfigError(f"hwl line {lineno}: duplicate puppet {name!r}")
        seen.add(name)
        nprocs = int(m.group("procs")) if m.group("procs") else 1
        if nprocs <= 0:
            raise ConfigError(f"hwl line {lineno}: nprocs must be positive")
        script.puppets.append(
            PuppetSpec(
                name=name,
                executable=m.group("cmd"),
                args=tuple(m.group("args").split()),
                nprocs=nprocs,
            )
        )
    if not script.puppets:
        raise ConfigError("hwl script declares no puppets")
    return script


def render_hwl(script: HwlScript) -> str:
    """Serialize a script back to canonical ``.hwl`` text."""
    lines = []
    for p in script.puppets:
        args = (" " + " ".join(p.args)) if p.args else ""
        lines.append(f"{p.name} = {p.executable}{args} on {p.nprocs} procs")
    return "\n".join(lines)
