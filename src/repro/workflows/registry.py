"""Registry of workflow-system descriptors keyed by canonical name."""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkflowError
from repro.workflows.base import WorkflowSystem

# factories are looked up lazily so subpackages stay independently importable
_FACTORIES: dict[str, str] = {
    "adios2": "repro.workflows.adios2.system:adios2_system",
    "henson": "repro.workflows.henson.system:henson_system",
    "parsl": "repro.workflows.parsl_sim.system:parsl_system",
    "pycompss": "repro.workflows.pycompss.system:pycompss_system",
    "wilkins": "repro.workflows.wilkins.system:wilkins_system",
}

_ALIASES = {
    "adios": "adios2",
    "parsl_sim": "parsl",
    "pycompss_sim": "pycompss",
}


def _load(spec: str) -> Callable[[], WorkflowSystem]:
    import importlib

    module_name, _, attr = spec.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def get_system(name: str) -> WorkflowSystem:
    """Return the descriptor for ``name`` (``adios2``/``henson``/``parsl``/
    ``pycompss``/``wilkins``, case-insensitive, common aliases accepted)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        factory_spec = _FACTORIES[key]
    except KeyError:
        raise WorkflowError(
            f"unknown workflow system {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return _load(factory_spec)()


def all_systems() -> list[WorkflowSystem]:
    """All five system descriptors, in canonical order."""
    return [get_system(name) for name in _FACTORIES]
