"""Dependency-resolving task executor shared by the Parsl and PyCOMPSs substrates.

Both systems expose *implicit dataflow*: calling a decorated function
returns a future immediately, and the runtime launches the task once all
futures among its inputs have resolved.  :class:`DataflowExecutor`
implements exactly that: tasks with unresolved dependencies wait on
completion callbacks (no thread is blocked while waiting), then run on a
bounded thread pool.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import WorkflowError


@dataclass
class TaskRecord:
    """Bookkeeping for one submitted task."""

    task_id: int
    name: str
    future: Future
    depends_on: tuple[Future, ...] = ()
    state: str = "pending"  # pending | running | done | failed
    extra: dict = field(default_factory=dict)


class DataflowExecutor:
    """Bounded thread pool with future-based dependency scheduling."""

    def __init__(self, max_workers: int = 8, label: str = "dataflow") -> None:
        if max_workers <= 0:
            raise WorkflowError("max_workers must be positive")
        self.label = label
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"{label}-worker"
        )
        self._lock = threading.Lock()
        self._records: dict[int, TaskRecord] = {}
        self._next_id = 0
        self._shutdown = False

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        depends_on: Iterable[Future] = (),
        name: str | None = None,
    ) -> Future:
        """Schedule ``fn(*args, **kwargs)`` after ``depends_on`` resolve.

        Futures appearing directly in ``args``/``kwargs`` are implicit
        dependencies and are replaced by their results at launch time.
        """
        with self._lock:
            if self._shutdown:
                raise WorkflowError(f"{self.label}: executor is shut down")
            task_id = self._next_id
            self._next_id += 1

        kwargs = dict(kwargs or {})
        future: Future = Future()
        implicit = [a for a in args if isinstance(a, Future)]
        implicit += [v for v in kwargs.values() if isinstance(v, Future)]
        deps = tuple(dict.fromkeys([*depends_on, *implicit]))  # de-dup, keep order
        record = TaskRecord(
            task_id=task_id,
            name=name or getattr(fn, "__name__", "task"),
            future=future,
            depends_on=deps,
        )
        with self._lock:
            self._records[task_id] = record

        remaining = len(deps)
        count_lock = threading.Lock()

        def launch() -> None:
            failed = [d for d in record.depends_on if d.exception() is not None]
            if failed:
                record.state = "failed"
                future.set_exception(
                    WorkflowError(
                        f"task {record.name!r} aborted: dependency failed "
                        f"({failed[0].exception()!r})"
                    )
                )
                return
            record.state = "running"
            resolved_args = tuple(
                a.result() if isinstance(a, Future) else a for a in args
            )
            resolved_kwargs = {
                k: (v.result() if isinstance(v, Future) else v)
                for k, v in kwargs.items()
            }
            try:
                result = fn(*resolved_args, **resolved_kwargs)
            except BaseException as exc:  # noqa: BLE001 - surfaced via future
                record.state = "failed"
                future.set_exception(exc)
            else:
                record.state = "done"
                future.set_result(result)

        def dep_done(_dep: Future) -> None:
            nonlocal remaining
            with count_lock:
                remaining -= 1
                ready = remaining == 0
            if ready:
                self._pool.submit(launch)

        if not deps:
            self._pool.submit(launch)
        else:
            for dep in deps:
                dep.add_done_callback(dep_done)
        return future

    # -- introspection ---------------------------------------------------------

    def records(self) -> list[TaskRecord]:
        with self._lock:
            return list(self._records.values())

    def counts(self) -> dict[str, int]:
        out = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        for rec in self.records():
            out[rec.state] = out.get(rec.state, 0) + 1
        return out

    def wait_all(self, timeout: float = 60.0) -> None:
        """Block until every submitted task has finished."""
        import time

        deadline = time.monotonic() + timeout
        for rec in self.records():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkflowError(f"{self.label}: wait_all timed out")
            try:
                rec.future.exception(timeout=remaining)
            except TimeoutError:
                raise WorkflowError(
                    f"{self.label}: task {rec.name!r} did not finish in time"
                ) from None

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
        self._pool.shutdown(wait=wait)
