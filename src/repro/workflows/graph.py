"""Workflow graph: tasks, ports, and dataset-labelled links.

Shared by the Wilkins runtime (built from YAML), the Henson scheduler
(built from ``.hwl`` scripts), and the examples.  A node is a
:class:`TaskSpec`; an edge is a :class:`DataLink` naming the dataset that
flows producer → consumer and the transport used (``file`` or ``memory``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import networkx as nx

from repro.errors import WorkflowError


@dataclass
class TaskSpec:
    """One workflow task: a callable (or executable name) plus resources."""

    name: str
    func: Callable | str | None = None
    nprocs: int = 1
    args: tuple = ()
    annotations: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise WorkflowError(f"task {self.name!r}: nprocs must be positive")


@dataclass(frozen=True)
class DataLink:
    """A dataset flowing between two tasks."""

    producer: str
    consumer: str
    dataset: str
    filename: str | None = None
    transport: str = "file"  # file | memory

    def __post_init__(self) -> None:
        if self.transport not in ("file", "memory"):
            raise WorkflowError(
                f"link {self.producer}->{self.consumer}: "
                f"unknown transport {self.transport!r}"
            )


class WorkflowGraph:
    """A directed graph of tasks with dataset-labelled edges."""

    def __init__(self) -> None:
        self._g = nx.MultiDiGraph()
        self._tasks: dict[str, TaskSpec] = {}
        self._links: list[DataLink] = []

    # -- construction -------------------------------------------------------

    def add_task(self, task: TaskSpec) -> TaskSpec:
        if task.name in self._tasks:
            raise WorkflowError(f"duplicate task name: {task.name!r}")
        self._tasks[task.name] = task
        self._g.add_node(task.name)
        return task

    def add_link(self, link: DataLink) -> DataLink:
        for end in (link.producer, link.consumer):
            if end not in self._tasks:
                raise WorkflowError(
                    f"link references unknown task {end!r} "
                    f"(have {sorted(self._tasks)})"
                )
        self._links.append(link)
        self._g.add_edge(link.producer, link.consumer, dataset=link.dataset)
        return link

    # -- queries -------------------------------------------------------------

    @property
    def tasks(self) -> list[TaskSpec]:
        return list(self._tasks.values())

    @property
    def links(self) -> list[DataLink]:
        return list(self._links)

    def task(self, name: str) -> TaskSpec:
        try:
            return self._tasks[name]
        except KeyError:
            raise WorkflowError(f"no such task: {name!r}") from None

    def producers_of(self, consumer: str) -> list[DataLink]:
        return [link for link in self._links if link.consumer == consumer]

    def consumers_of(self, producer: str) -> list[DataLink]:
        return [link for link in self._links if link.producer == producer]

    def sources(self) -> list[str]:
        """Tasks with no incoming links (pure producers)."""
        return sorted(n for n in self._g.nodes if self._g.in_degree(n) == 0)

    def sinks(self) -> list[str]:
        """Tasks with no outgoing links (pure consumers)."""
        return sorted(n for n in self._g.nodes if self._g.out_degree(n) == 0)

    def is_dag(self) -> bool:
        return nx.is_directed_acyclic_graph(self._g)

    def topological_order(self) -> list[str]:
        if not self.is_dag():
            raise WorkflowError("workflow graph has cycles; no topological order")
        # lexicographic tie-break keeps ordering deterministic across runs
        return list(nx.lexicographical_topological_sort(self._g))

    def total_procs(self) -> int:
        return sum(t.nprocs for t in self._tasks.values())

    def validate(self) -> None:
        """Structural checks: nonempty, connected, consistent datasets."""
        if not self._tasks:
            raise WorkflowError("workflow has no tasks")
        if len(self._tasks) > 1:
            undirected = self._g.to_undirected(as_view=True)
            if not nx.is_connected(undirected):
                raise WorkflowError("workflow graph is not connected")
        seen: set[tuple[str, str, str]] = set()
        for link in self._links:
            key = (link.producer, link.consumer, link.dataset)
            if key in seen:
                raise WorkflowError(
                    f"duplicate link {link.producer}->{link.consumer} "
                    f"for dataset {link.dataset!r}"
                )
            seen.add(key)

    def datasets(self) -> list[str]:
        return sorted({link.dataset for link in self._links})

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks


def linear_pipeline(names: Iterable[str], dataset: str = "data") -> WorkflowGraph:
    """Convenience: build a linear producer→...→consumer pipeline."""
    graph = WorkflowGraph()
    names = list(names)
    for name in names:
        graph.add_task(TaskSpec(name=name))
    for up, down in zip(names, names[1:]):
        graph.add_link(DataLink(producer=up, consumer=down, dataset=dataset))
    return graph
