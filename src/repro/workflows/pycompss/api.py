"""The ``@task`` decorator.

Parameters are declared with directions as decorator keywords, exactly
like PyCOMPSs::

    @task(fname=FILE_OUT, returns=int)
    def produce(n, fname): ...

Calling a task submits it to the runtime and immediately returns future
placeholders (one per declared return, a tuple if ``returns`` is an int
greater than 1, ``None`` when the task declares no returns).  Futures
passed as arguments become dependencies automatically; ``FILE_IN`` file
parameters depend on the last writer of the same path.
"""

from __future__ import annotations

import functools
import inspect
from concurrent.futures import Future
from typing import Any, Callable

from repro.errors import WorkflowError
from repro.workflows.pycompss.parameter import Direction
from repro.workflows.pycompss.runtime import runtime


def task(
    returns: Any = None, priority: bool = False, **param_directions: Direction
) -> Callable:
    """Declare a Python function as a PyCOMPSs task."""
    for pname, direction in param_directions.items():
        if not isinstance(direction, Direction):
            raise WorkflowError(
                f"@task parameter {pname!r} must map to a Direction, "
                f"got {direction!r}"
            )

    def decorate(fn: Callable) -> Callable:
        signature = inspect.signature(fn)
        unknown = set(param_directions) - set(signature.parameters)
        if unknown:
            raise WorkflowError(
                f"@task on {fn.__name__!r}: unknown parameters {sorted(unknown)}"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()

            file_reads: list[str] = []
            file_writes: list[str] = []
            for pname, direction in param_directions.items():
                if not direction.is_file:
                    continue
                value = bound.arguments.get(pname)
                if not isinstance(value, str):
                    raise WorkflowError(
                        f"task {fn.__name__!r}: file parameter {pname!r} must be "
                        f"a path string, got {type(value).__name__}"
                    )
                if direction.reads:
                    file_reads.append(value)
                if direction.writes:
                    file_writes.append(value)

            future = runtime().submit(
                fn,
                bound.args,
                bound.kwargs,
                file_reads=tuple(file_reads),
                file_writes=tuple(file_writes),
                name=fn.__name__,
            )

            n_returns = _count_returns(returns)
            if n_returns == 0:
                return None
            if n_returns == 1:
                return future
            return tuple(_component_future(future, i) for i in range(n_returns))

        wrapper.__wrapped__ = fn
        wrapper.task_directions = dict(param_directions)
        wrapper.task_returns = returns
        return wrapper

    return decorate


def _count_returns(returns: Any) -> int:
    if returns in (None, 0, False):
        return 0
    if isinstance(returns, bool):
        return 1
    if isinstance(returns, int):
        return returns
    return 1  # a type annotation like `returns=float`


def _component_future(parent: Future, index: int) -> Future:
    child: Future = Future()

    def done(f: Future) -> None:
        exc = f.exception()
        if exc is not None:
            child.set_exception(exc)
            return
        value = f.result()
        try:
            child.set_result(value[index])
        except (TypeError, IndexError) as unpack_exc:
            child.set_exception(
                WorkflowError(
                    f"task declared multiple returns but produced {value!r}"
                )
            )
            del unpack_exc

    parent.add_done_callback(done)
    return child
