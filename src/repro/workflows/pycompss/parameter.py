"""PyCOMPSs parameter directions.

Directions annotate ``@task`` parameters and drive dependency analysis:
``FILE_IN`` readers depend on the last ``FILE_OUT``/``FILE_INOUT`` writer
of the same path; object parameters default to ``IN``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Direction:
    """A parameter direction tag."""

    name: str
    is_file: bool
    reads: bool
    writes: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


IN = Direction("IN", is_file=False, reads=True, writes=False)
OUT = Direction("OUT", is_file=False, reads=False, writes=True)
INOUT = Direction("INOUT", is_file=False, reads=True, writes=True)
FILE_IN = Direction("FILE_IN", is_file=True, reads=True, writes=False)
FILE_OUT = Direction("FILE_OUT", is_file=True, reads=False, writes=True)
FILE_INOUT = Direction("FILE_INOUT", is_file=True, reads=True, writes=True)

ALL_DIRECTIONS = (IN, OUT, INOUT, FILE_IN, FILE_OUT, FILE_INOUT)
