"""The PyCOMPSs API surface used for hallucination detection."""

from __future__ import annotations

from repro.workflows.base import ApiFunction, ApiRegistry

PYCOMPSS_API = ApiRegistry(
    "PyCOMPSs",
    [
        ApiFunction("task", "decorator", "@task(param=DIRECTION, returns=...)",
                    "declare a Python method as a task", required=True),
        ApiFunction("compss_wait_on", "function", "compss_wait_on(obj)",
                    "materialize future placeholders", required=True),
        ApiFunction("compss_wait_on_file", "function", "compss_wait_on_file(path)",
                    "synchronize on a file produced by a task", required=True),
        ApiFunction("compss_open", "function", "compss_open(path, mode)"),
        ApiFunction("compss_barrier", "function", "compss_barrier()"),
        ApiFunction("compss_delete_file", "function"),
        ApiFunction("constraint", "decorator", "@constraint(computing_units=...)"),
        ApiFunction("binary", "decorator", "@binary(binary='cmd')"),
        ApiFunction("mpi", "decorator", "@mpi(runner='mpirun', processes=...)"),
        ApiFunction("IN", "keyword"),
        ApiFunction("OUT", "keyword"),
        ApiFunction("INOUT", "keyword"),
        ApiFunction("FILE_IN", "keyword", required=True),
        ApiFunction("FILE_OUT", "keyword", required=True),
        ApiFunction("FILE_INOUT", "keyword"),
        ApiFunction("returns", "keyword"),
        ApiFunction("Direction", "class"),
    ],
)
