"""The COMPSs runtime, simulated.

Tracks per-file last-writer futures (the dependency source for
``FILE_IN`` parameters and ``compss_wait_on_file``), submits tasks to a
shared :class:`~repro.workflows.dataflow.DataflowExecutor`, and records
every submission for introspection.  A process-wide runtime is created
lazily — PyCOMPSs programs never instantiate the runtime themselves, the
``runcompss`` launcher does — and :func:`reset_runtime` gives tests a
fresh instance.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.store import SimFilesystem, default_filesystem
from repro.workflows.dataflow import DataflowExecutor


@dataclass
class TaskInvocation:
    """One recorded task call: name, file accesses, dependency count."""

    name: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    n_deps: int = 0
    future: Future | None = field(default=None, repr=False)


class COMPSsRuntime:
    """File-dependency tracking over a dataflow executor."""

    def __init__(self, max_workers: int = 8, fs: SimFilesystem | None = None) -> None:
        self.fs = fs if fs is not None else default_filesystem()
        self._executor = DataflowExecutor(max_workers, label="compss")
        self._lock = threading.Lock()
        self._last_writer: dict[str, Future] = {}
        self._invocations: list[TaskInvocation] = []

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        *,
        file_reads: tuple[str, ...],
        file_writes: tuple[str, ...],
        name: str | None = None,
    ) -> Future:
        with self._lock:
            deps = [
                self._last_writer[path]
                for path in file_reads
                if path in self._last_writer
            ]
            future = self._executor.submit(
                fn, args, kwargs, depends_on=deps, name=name or fn.__name__
            )
            for path in file_writes:
                self._last_writer[path] = future
            self._invocations.append(
                TaskInvocation(
                    name=name or fn.__name__,
                    reads=file_reads,
                    writes=file_writes,
                    n_deps=len(deps),
                    future=future,
                )
            )
            return future

    # -- synchronization ---------------------------------------------------------

    def wait_for_file(self, path: str, timeout: float = 30.0) -> None:
        with self._lock:
            writer = self._last_writer.get(path)
        if writer is not None:
            writer.result(timeout=timeout)

    def barrier(self, timeout: float = 60.0) -> None:
        self._executor.wait_all(timeout=timeout)

    # -- introspection -------------------------------------------------------------

    def invocations(self) -> list[TaskInvocation]:
        with self._lock:
            return list(self._invocations)

    def task_counts(self) -> dict[str, int]:
        return self._executor.counts()

    def shutdown(self) -> None:
        self._executor.shutdown()


_runtime: COMPSsRuntime | None = None
_runtime_lock = threading.Lock()


def runtime() -> COMPSsRuntime:
    """The process-wide runtime, created on first use."""
    global _runtime
    with _runtime_lock:
        if _runtime is None:
            _runtime = COMPSsRuntime()
        return _runtime


def reset_runtime(fs: SimFilesystem | None = None) -> COMPSsRuntime:
    """Tear down and replace the process-wide runtime (test isolation)."""
    global _runtime
    with _runtime_lock:
        if _runtime is not None:
            _runtime.shutdown()
        _runtime = COMPSsRuntime(fs=fs)
        return _runtime
