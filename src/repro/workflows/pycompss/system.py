"""WorkflowSystem descriptor for PyCOMPSs.

PyCOMPSs project/resources XML files describe the execution environment,
not the workflow, so ``validate_config`` is ``None`` and the configuration
experiment excludes the system — matching the paper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workflows.base import WorkflowSystem
from repro.workflows.pycompss.surface import PYCOMPSS_API
from repro.workflows.pycompss.validator import validate_task_code


@lru_cache(maxsize=1)
def pycompss_system() -> WorkflowSystem:
    """Build (once) the PyCOMPSs system descriptor."""
    return WorkflowSystem(
        name="pycompss",
        display_name="PyCOMPSs",
        kind="task-parallel",
        task_language="python",
        config_language=None,
        api=PYCOMPSS_API,
        config_fields=None,
        validate_config=None,
        validate_task_code=validate_task_code,
    )
