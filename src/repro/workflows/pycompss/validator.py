"""Validator for annotated PyCOMPSs task codes (Python).

Checks the decorations and synchronization discipline the paper's
evaluation keys on: a correct producer/consumer annotation must decorate
with ``@task`` using file directions and must synchronize file exchange
with ``compss_wait_on_file`` (the call LLaMA omits) or ``compss_wait_on``
for object results.
"""

from __future__ import annotations

import re

from repro.workflows.base import Diagnostic, Severity, ValidationReport
from repro.workflows.pycompss.surface import PYCOMPSS_API
from repro.workflows.validators import check_api_usage

_IMPORT_RE = re.compile(r"^\s*from\s+pycompss(?:\.\w+)*\s+import\s+(.+)$")
_DECORATOR_RE = re.compile(r"^\s*@([\w.]+)")


def validate_task_code(text: str) -> ValidationReport:
    report = ValidationReport(system="PyCOMPSs", artifact_kind="task-code")

    # compss_* identifier audit (nonexistent + required synchronization)
    report.extend(
        check_api_usage(
            text,
            PYCOMPSS_API,
            r"compss_\w+",
            required=["compss_wait_on_file"],
        )
    )

    saw_task = False
    for lineno, line in enumerate(text.split("\n"), start=1):
        m = _IMPORT_RE.match(line)
        if m:
            names = [n.strip().split(" as ")[0] for n in m.group(1).split(",")]
            for name in names:
                if name and not PYCOMPSS_API.known(name):
                    report.diagnostics.append(
                        Diagnostic(
                            severity=Severity.ERROR,
                            code="nonexistent-api",
                            message=f"{name!r} is not importable from pycompss",
                            line=lineno,
                            symbol=name,
                            suggestion=PYCOMPSS_API.suggest(name),
                        )
                    )
        d = _DECORATOR_RE.match(line)
        if d:
            deco = d.group(1).split(".")[-1].split("(")[0]
            if deco == "task":
                saw_task = True
            elif not PYCOMPSS_API.known(deco):
                report.diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="nonexistent-api",
                        message=f"@{deco} is not a PyCOMPSs decorator",
                        line=lineno,
                        symbol=deco,
                        suggestion=PYCOMPSS_API.suggest(deco),
                    )
                )

    if not saw_task:
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="missing-api",
                message="no @task decorator found",
                symbol="task",
            )
        )
    if "FILE_OUT" not in text and "FILE_IN" not in text:
        report.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="missing-api",
                message="no file parameter directions (FILE_IN/FILE_OUT) declared",
                symbol="FILE_OUT",
            )
        )
    return report
