"""PyCOMPSs synchronization API.

The paper singles out ``compss_wait_on_file`` as the call LLaMA-3.3-70B
consistently omits — it is the only way to safely consume a file produced
by a ``FILE_OUT`` task outside another task.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any

from repro.errors import WorkflowError
from repro.workflows.pycompss.runtime import runtime


def compss_wait_on(*objs: Any, timeout: float = 30.0) -> Any:
    """Materialize future placeholder(s) into real values.

    Accepts one or more objects; lists/tuples are resolved element-wise.
    Non-future values pass through unchanged (like the real API).
    """
    if not objs:
        raise WorkflowError("compss_wait_on needs at least one object")
    resolved = [_resolve(obj, timeout) for obj in objs]
    return resolved[0] if len(resolved) == 1 else tuple(resolved)


def _resolve(obj: Any, timeout: float) -> Any:
    if isinstance(obj, Future):
        return obj.result(timeout=timeout)
    if isinstance(obj, list):
        return [_resolve(o, timeout) for o in obj]
    if isinstance(obj, tuple):
        return tuple(_resolve(o, timeout) for o in obj)
    return obj


def compss_wait_on_file(*paths: str, timeout: float = 30.0) -> str | tuple[str, ...]:
    """Block until the last writer task of each path has completed."""
    if not paths:
        raise WorkflowError("compss_wait_on_file needs at least one path")
    for path in paths:
        if not isinstance(path, str):
            raise WorkflowError(
                f"compss_wait_on_file expects path strings, got {type(path).__name__}"
            )
        runtime().wait_for_file(path, timeout=timeout)
    return paths[0] if len(paths) == 1 else paths


def compss_open(path: str, mode: str = "r", timeout: float = 30.0) -> Any:
    """Synchronize on ``path`` and return its payload from the simulated FS.

    Read modes require the file to exist; write modes return a small
    handle object whose ``write``/``close`` persist the payload.
    """
    rt = runtime()
    if "r" in mode and "+" not in mode:
        rt.wait_for_file(path, timeout=timeout)
        return rt.fs.open(path)
    return _WriteHandle(path, rt.fs)


class _WriteHandle:
    """Minimal writable handle over the simulated filesystem."""

    def __init__(self, path: str, fs) -> None:
        self.path = path
        self._fs = fs
        self._chunks: list[Any] = []
        self._closed = False

    def write(self, payload: Any) -> None:
        if self._closed:
            raise WorkflowError(f"write to closed handle {self.path!r}")
        self._chunks.append(payload)

    def close(self) -> None:
        if not self._closed:
            payload = (
                "".join(self._chunks)
                if all(isinstance(c, str) for c in self._chunks)
                else self._chunks
            )
            self._fs.create(self.path, payload)
            self._closed = True

    def __enter__(self) -> "_WriteHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def compss_barrier(timeout: float = 60.0) -> None:
    """Block until every submitted task has completed."""
    runtime().barrier(timeout=timeout)
