"""PyCOMPSs substrate: task-based parallel workflows in Python.

Mirrors the PyCOMPSs programming model (Tejedor et al. 2017): plain
Python methods become tasks via the ``@task`` decorator, parameter
*directions* (``FILE_IN``/``FILE_OUT``/``INOUT``...) declare data
dependencies, calls return future placeholders immediately, and the small
synchronization API (``compss_wait_on``, ``compss_wait_on_file``,
``compss_open``, ``compss_barrier``) materializes results.

Typical use, identical in shape to real PyCOMPSs::

    from repro.workflows.pycompss import task, FILE_OUT, FILE_IN
    from repro.workflows.pycompss import compss_wait_on, compss_wait_on_file

    @task(fname=FILE_OUT)
    def produce(n, fname):
        ...

    @task(fname=FILE_IN, returns=float)
    def analyze(fname):
        ...

    produce(100, "data.bin")
    total = compss_wait_on(analyze("data.bin"))
"""

from repro.workflows.pycompss.api import task
from repro.workflows.pycompss.api_functions import (
    compss_barrier,
    compss_open,
    compss_wait_on,
    compss_wait_on_file,
)
from repro.workflows.pycompss.parameter import (
    FILE_IN,
    FILE_INOUT,
    FILE_OUT,
    IN,
    INOUT,
    OUT,
    Direction,
)
from repro.workflows.pycompss.runtime import COMPSsRuntime, reset_runtime, runtime
from repro.workflows.pycompss.surface import PYCOMPSS_API
from repro.workflows.pycompss.system import pycompss_system
from repro.workflows.pycompss.validator import validate_task_code

__all__ = [
    "task",
    "Direction",
    "IN",
    "OUT",
    "INOUT",
    "FILE_IN",
    "FILE_OUT",
    "FILE_INOUT",
    "compss_wait_on",
    "compss_wait_on_file",
    "compss_open",
    "compss_barrier",
    "COMPSsRuntime",
    "runtime",
    "reset_runtime",
    "PYCOMPSS_API",
    "validate_task_code",
    "pycompss_system",
]
