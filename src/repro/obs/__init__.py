"""Observability: phase profiles, distributed traces, metrics, trends.

The telemetry layer of the runtime, grown out of the PR-5 ``repro.perf``
span profiler (which remains importable as a deprecation shim).  Four
concerns, one ``span()``:

* **Phase profiling** (:mod:`repro.obs.spans`) — nestable wall-time
  aggregation into a :class:`PhaseProfile` breakdown tree.
* **Distributed tracing** (:mod:`repro.obs.trace`) — identified spans
  (trace id / span id / parent id, wall-clock start + duration) that
  cross the scoring-pool and store-server process boundaries and export
  as Chrome trace-event JSON.
* **Metrics** (:mod:`repro.obs.metrics`) — labeled
  Counter/Gauge/Histogram registries with Prometheus text exposition,
  served live by the store server's ``metrics`` op.
* **Trend reports** (:mod:`repro.obs.trend`) — cross-run
  cache-efficiency / retry / phase-time tables aggregated from a
  store's run manifests.

Quickstart::

    from repro import obs

    with obs.profiling() as prof, obs.tracing() as tracer:
        run(plan, ...)                      # each run gets a trace id
    print(obs.render_profile(prof.snapshot()))

Everything is zero cost when disarmed: a bare :func:`span` with no
profiler *and* no tracer active returns a shared no-op context manager,
and :func:`active_registry` is just a module-global read.

CLI: ``python -m repro.obs report|trace|trend`` (see
:mod:`repro.obs.cli`).
"""

from repro.obs import trace as _trace_mod  # noqa: F401  (import order)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    metering,
    render_prometheus,
)
from repro.obs.report import (
    load_profile,
    profile_payload,
    render_manifest,
    render_profile,
)
from repro.obs.spans import (
    PhaseProfile,
    PhaseTotals,
    Profiler,
    active_profiler,
    profiling,
    span,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    SpanRecord,
    Trace,
    Tracer,
    active_tracer,
    fold_remote_spans,
    make_span_dict,
    new_span_id,
    propagation_context,
    tracing,
)

__all__ = [
    # spans / profiling
    "span",
    "profiling",
    "active_profiler",
    "Profiler",
    "PhaseProfile",
    "PhaseTotals",
    # tracing
    "tracing",
    "active_tracer",
    "Tracer",
    "Trace",
    "SpanRecord",
    "TRACE_SCHEMA",
    "propagation_context",
    "fold_remote_spans",
    "make_span_dict",
    "new_span_id",
    # metrics
    "metering",
    "active_registry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "render_prometheus",
    "METRICS_SCHEMA",
    "DEFAULT_BUCKETS",
    # reports
    "render_profile",
    "render_manifest",
    "load_profile",
    "profile_payload",
]
