"""Nestable phase timers with thread-safe aggregation.

The instrumentation layer of the runtime: code wraps its phases in
``with span("generate"): ...`` and, when a :class:`Profiler` is active,
every span's wall time is accumulated into a per-path total.  Spans
nest *per thread* — a ``span("store-io/read")`` opened while the same
thread is inside ``span("cache-get")`` is recorded under the path
``cache-get/store-io/read`` — so a profile reads as a breakdown tree,
not a flat soup of leaf timings.

Two design constraints shape the implementation:

* **Zero cost when off.**  ``span()`` is called on hot paths (every
  cache lookup, every store read); with no active profiler or tracer it
  returns a shared no-op context manager after two module-global loads,
  so the un-instrumented runtime pays ~a function call per span,
  nothing more.
* **Thread-safe when on.**  Worker threads (``ThreadedExecutor``, the
  async adapter pool) record concurrently; totals live behind one lock
  and each thread keeps its own nesting stack in ``threading.local``,
  so concurrent spans never corrupt each other's paths.

One ``span()`` call feeds **both** telemetry backends: the aggregating
:class:`Profiler` here and the identified-span :class:`~repro.obs.trace.Tracer`
(when one is active with an open trace) — call sites never choose.

A :class:`PhaseProfile` is an immutable snapshot of the totals.
Snapshots subtract (``later.subtract(earlier)``), which is how
:func:`repro.runtime.run` attaches a *per-run* profile to its
:class:`~repro.runtime.runner.RunStats` even when one global profiler
spans a whole multi-sweep script.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import HarnessError
from repro.obs import trace as _trace


@dataclass(frozen=True)
class PhaseTotals:
    """Aggregated wall time of one phase path."""

    calls: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {"calls": self.calls, "total_s": self.total_s, "max_s": self.max_s}


@dataclass(frozen=True)
class PhaseProfile:
    """Immutable snapshot of span totals, keyed by nested phase path.

    Paths use ``/`` as the nesting separator (``cache-get/store-io/read``
    is a store read performed inside a cache lookup).  ``subtract``
    yields the delta between two snapshots of the *same* profiler — the
    per-run breakdown; ``max_s`` in a delta is the later snapshot's
    maximum (a span maximum cannot be un-observed, so deltas report an
    upper bound for phases that were already warm).
    """

    phases: dict[str, PhaseTotals]

    def __bool__(self) -> bool:
        return bool(self.phases)

    def total_s(self, path: str) -> float:
        """Total seconds recorded under one exact path (0.0 if absent)."""
        entry = self.phases.get(path)
        return entry.total_s if entry is not None else 0.0

    def calls(self, path: str) -> int:
        entry = self.phases.get(path)
        return entry.calls if entry is not None else 0

    def subtract(self, earlier: "PhaseProfile") -> "PhaseProfile":
        """The activity between ``earlier`` and this snapshot."""
        phases: dict[str, PhaseTotals] = {}
        for path, totals in self.phases.items():
            prev = earlier.phases.get(path)
            calls = totals.calls - (prev.calls if prev else 0)
            total = totals.total_s - (prev.total_s if prev else 0.0)
            if calls > 0 or total > 1e-12:
                phases[path] = PhaseTotals(
                    calls=calls, total_s=max(total, 0.0), max_s=totals.max_s
                )
        return PhaseProfile(phases=phases)

    def merged(self, other: "PhaseProfile") -> "PhaseProfile":
        """Combine two profiles (e.g. several runs of one sweep)."""
        phases = dict(self.phases)
        for path, totals in other.phases.items():
            prev = phases.get(path)
            if prev is None:
                phases[path] = totals
            else:
                phases[path] = PhaseTotals(
                    calls=prev.calls + totals.calls,
                    total_s=prev.total_s + totals.total_s,
                    max_s=max(prev.max_s, totals.max_s),
                )
        return PhaseProfile(phases=phases)

    def as_dict(self) -> dict[str, Any]:
        return {
            "phases": {
                path: totals.as_dict() for path, totals in sorted(self.phases.items())
            }
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "PhaseProfile":
        if not isinstance(payload, dict) or not isinstance(
            payload.get("phases"), dict
        ):
            raise HarnessError(f"malformed phase profile payload: {payload!r:.120}")
        phases: dict[str, PhaseTotals] = {}
        for path, entry in payload["phases"].items():
            try:
                phases[path] = PhaseTotals(
                    calls=int(entry["calls"]),
                    total_s=float(entry["total_s"]),
                    max_s=float(entry["max_s"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise HarnessError(
                    f"malformed phase entry for {path!r}: {exc}"
                ) from None
        return PhaseProfile(phases=phases)


class Profiler:
    """Thread-safe span aggregator.

    One instance may be shared by any number of threads; each records
    spans under its own nesting stack.  Install as the process-wide
    active profiler with :func:`profiling` so library code's bare
    :func:`span` calls land here.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        # path -> [calls, total_s, max_s]; snapshot() freezes into PhaseTotals
        self._totals: dict[str, list] = {}
        self._tls = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one phase; nests under the thread's enclosing spans."""
        stack = self._stack()
        path = f"{stack[-1]}/{name}" if stack else name
        stack.append(path)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            stack.pop()
            with self._mu:
                entry = self._totals.get(path)
                if entry is None:
                    self._totals[path] = [1, elapsed, elapsed]
                else:
                    entry[0] += 1
                    entry[1] += elapsed
                    if elapsed > entry[2]:
                        entry[2] = elapsed

    def record(self, path: str, elapsed_s: float, *, calls: int = 1) -> None:
        """Fold an externally measured duration into the totals.

        For work whose wall time is measured elsewhere (a subprocess, a
        batch) but should still appear in the phase breakdown.
        """
        with self._mu:
            entry = self._totals.get(path)
            if entry is None:
                self._totals[path] = [calls, elapsed_s, elapsed_s]
            else:
                entry[0] += calls
                entry[1] += elapsed_s
                if elapsed_s > entry[2]:
                    entry[2] = elapsed_s

    def snapshot(self) -> PhaseProfile:
        """Immutable copy of the totals so far."""
        with self._mu:
            return PhaseProfile(
                phases={
                    path: PhaseTotals(calls=e[0], total_s=e[1], max_s=e[2])
                    for path, e in self._totals.items()
                }
            )

    def reset(self) -> None:
        with self._mu:
            self._totals.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Profiler(phases={len(self.snapshot().phases)})"


class _NullSpan:
    """Shared no-op context manager: the cost of telemetry when it's off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


class _DualSpan:
    """Feed one span to both the profiler and the tracer."""

    __slots__ = ("_profiled", "_traced")

    def __init__(self, profiled, traced) -> None:
        self._profiled = profiled
        self._traced = traced

    def __enter__(self):
        self._profiled.__enter__()
        return self._traced.__enter__()

    def __exit__(self, *exc_info: object) -> bool:
        try:
            self._traced.__exit__(*exc_info)
        finally:
            self._profiled.__exit__(*exc_info)
        return False


_NULL_SPAN = _NullSpan()
_active: Profiler | None = None
_active_mu = threading.Lock()


def active_profiler() -> Profiler | None:
    """The process-wide profiler bare :func:`span` calls record into."""
    return _active


def span(name: str):
    """Time one phase against the active telemetry (no-op when none).

    Dispatches to the active :class:`Profiler`, the active
    :class:`~repro.obs.trace.Tracer` (when a trace is open), or both.
    """
    profiler = _active
    tracer = _trace._active
    if tracer is not None and tracer._state is None:
        tracer = None  # armed but between traces: stay on the fast path
    if profiler is None:
        if tracer is None:
            return _NULL_SPAN
        return tracer.span(name)
    if tracer is None:
        return profiler.span(name)
    return _DualSpan(profiler.span(name), tracer.span(name))


@contextmanager
def profiling(profiler: Profiler | None = None) -> Iterator[Profiler]:
    """Install ``profiler`` (or a fresh one) as the active profiler.

    Nestable: the previous active profiler is restored on exit, so a
    scoped profile inside an already-profiled script just shadows the
    outer one for the duration of the block.
    """
    global _active
    prof = profiler if profiler is not None else Profiler()
    with _active_mu:
        previous, _active = _active, prof
    try:
        yield prof
    finally:
        with _active_mu:
            _active = previous
