"""Render a :class:`~repro.obs.spans.PhaseProfile` as a readable table.

The report groups phases by their nesting path (children indented under
parents), sorted inside each level by total time descending, with a
share-of-parent percentage — the "where did the wall time go" view the
``--profile`` flag of ``examples/reproduce_tables.py`` and the
``python -m repro.obs report`` CLI print.

The CLI also accepts a :class:`~repro.persist.manifest.RunManifest`
JSON file (``manifests/*.json`` inside a run store):
:func:`render_manifest` shows how the run's units were satisfied, the
scoring worker count the run chose, and the store read-LRU traffic
(hits/misses/bytes), followed by the embedded per-run phase profile
when one was recorded.  Schema-2 manifests additionally carry a trace
id (and optionally the full trace + a metrics snapshot); pre-2
manifests render identically, minus those lines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.errors import HarnessError
from repro.obs.spans import PhaseProfile


def load_payload(path: str | pathlib.Path) -> Any:
    """Raw JSON payload of one report file (profile or run manifest)."""
    path = pathlib.Path(path)
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise HarnessError(f"cannot read profile {path}: {exc}") from None
    except ValueError as exc:
        raise HarnessError(f"profile {path} is not valid JSON: {exc}") from None


def is_manifest_payload(payload: Any) -> bool:
    """Does this JSON look like a serialized RunManifest?"""
    return (
        isinstance(payload, dict) and "run_id" in payload and "stats" in payload
    )


def load_profile(path: str | pathlib.Path) -> PhaseProfile:
    """Read one profile JSON file (as written by ``--profile-json``)."""
    payload = load_payload(path)
    if isinstance(payload, dict) and "profile" in payload:
        payload = payload["profile"]  # accept the --profile-json wrapper
    return PhaseProfile.from_dict(payload)


def _children(profile: PhaseProfile, parent: str | None) -> list[str]:
    """Direct children of ``parent`` (top-level paths when None)."""
    out = []
    for path in profile.phases:
        if parent is None:
            if "/" not in path:
                out.append(path)
        elif path.startswith(parent + "/") and "/" not in path[len(parent) + 1 :]:
            out.append(path)
    return sorted(out, key=lambda p: -profile.phases[p].total_s)


def render_profile(profile: PhaseProfile, *, title: str = "phase profile") -> str:
    """Aligned breakdown table: phase → calls → total → mean → share."""
    if not profile.phases:
        return f"{title}: no phases recorded"
    lines = [
        title,
        f"{'phase':<40} {'calls':>7} {'total ms':>10} {'mean ms':>9} "
        f"{'max ms':>9} {'share':>6}",
    ]
    grand_total = sum(
        profile.phases[p].total_s for p in _children(profile, None)
    )

    def emit(path: str, depth: int, parent_total: float) -> None:
        totals = profile.phases[path]
        share = totals.total_s / parent_total if parent_total > 1e-12 else 0.0
        label = ("  " * depth) + path.rsplit("/", 1)[-1]
        lines.append(
            f"{label:<40} {totals.calls:>7} {totals.total_s * 1000:>10.1f} "
            f"{totals.mean_s * 1000:>9.3f} {totals.max_s * 1000:>9.3f} "
            f"{share * 100:>5.1f}%"
        )
        for child in _children(profile, path):
            emit(child, depth + 1, totals.total_s)

    for top in _children(profile, None):
        emit(top, 0, grand_total)
    lines.append(
        f"{'(sum of top-level phases)':<40} {'':>7} {grand_total * 1000:>10.1f}"
    )
    return "\n".join(lines)


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB"):
        if value < 1024:
            digits = 0 if unit == "B" else 1
            return f"{value:.{digits}f} {unit}"
        value /= 1024
    return f"{value:.1f} GiB"


def render_manifest(payload: dict, *, title: str = "run manifest") -> str:
    """Readable summary of one RunManifest JSON: units, scoring, reads."""
    stats = payload.get("stats") or {}
    total = stats.get("total_units", 0)
    hits = stats.get("read_lru_hits", 0)
    misses = stats.get("read_lru_misses", 0)
    reads = hits + misses
    score_workers = stats.get("score_workers", 0)
    scoring = (
        f"{score_workers} worker process(es)" if score_workers else "inline"
    )
    lines = [
        title,
        f"  run         {payload.get('run_id', '?')}",
        f"  plan        {payload.get('plan_name', '?')!r}  "
        f"fingerprint {str(payload.get('plan_fingerprint', '?'))[:12]}",
        f"  executor    {payload.get('executor', '?')}",
        f"  units       {total}  generated={stats.get('generated', 0)}  "
        f"cache_hits={stats.get('cache_hits', 0)}  "
        f"dedup={stats.get('deduplicated', 0)}",
        f"  scoring     {scoring}  "
        f"computed={stats.get('scores_computed', 0)}  "
        f"score_hits={stats.get('score_hits', 0)}",
        f"  store reads read-LRU {hits} hit(s) / {misses} miss(es)"
        + (f" ({hits / reads:.0%} hit rate)" if reads else "")
        + f", {_fmt_bytes(stats.get('bytes_read', 0))} from segments",
        f"  wall        {payload.get('wall_seconds', 0.0):.2f}s",
    ]
    trace_id = stats.get("trace_id")
    trace = payload.get("trace")
    if trace_id or trace:
        spans = trace.get("spans") if isinstance(trace, dict) else None
        count = f"  {len(spans)} span(s) recorded" if spans else ""
        lines.append(f"  trace       {trace_id or trace.get('trace_id')}{count}")
    if payload.get("resumed_from"):
        lines.insert(3, f"  resumed     {payload['resumed_from']}")
    return "\n".join(lines)


def profile_payload(profile: PhaseProfile, **extra: Any) -> dict[str, Any]:
    """The JSON wrapper ``--profile-json`` writes (profile + context)."""
    return {"profile": profile.as_dict(), **extra}
