"""Cross-run trend reports over a store's run manifests.

Every run persists a :class:`~repro.persist.manifest.RunManifest` with
its stats (cache hits, read-LRU traffic, retries, wall time, and —
when profiling was on — a phase breakdown).  This module aggregates
those manifests *across runs* into the trend view the ROADMAP left
open: is the cache getting warmer, are retries creeping up, where is
the wall time drifting?

``python -m repro.obs trend --store PATH_OR_URL`` renders the tables;
``--json`` emits the raw rows for CI artifacts.  Works against a local
store directory or a live ``tcp://`` / ``unix://`` store server — any
URL :func:`repro.serve.open_store` accepts.
"""

from __future__ import annotations

import time
from typing import Any

#: Top-level phase paths surfaced as trend columns when a profile was
#: recorded with the run (others fold into "other").
PHASE_COLUMNS = ("generate", "score", "cache-get", "cache-put")


def _rate(part: float, whole: float) -> float | None:
    return part / whole if whole else None


def trend_row(payload: dict[str, Any]) -> dict[str, Any]:
    """Flatten one manifest payload into a trend row.

    Tolerant of pre-``repro.stats/2`` manifests: missing fields become
    zeros/None, never a crash — trend reports must read old stores.
    """
    stats = payload.get("stats") or {}
    total = int(stats.get("total_units", 0) or 0)
    hits = int(stats.get("read_lru_hits", 0) or 0)
    misses = int(stats.get("read_lru_misses", 0) or 0)
    row: dict[str, Any] = {
        "run_id": payload.get("run_id", "?"),
        "plan_name": payload.get("plan_name", "?"),
        "plan_fingerprint": str(payload.get("plan_fingerprint", "?")),
        "started_unix": float(payload.get("started_unix", 0.0) or 0.0),
        "wall_seconds": float(payload.get("wall_seconds", 0.0) or 0.0),
        "total_units": total,
        "generated": int(stats.get("generated", 0) or 0),
        "cache_hit_rate": _rate(float(stats.get("cache_hits", 0) or 0), total),
        "read_lru_hit_rate": _rate(hits, hits + misses),
        "bytes_read": int(stats.get("bytes_read", 0) or 0),
        "retry_rate": _rate(float(stats.get("units_retried", 0) or 0), total),
        "failures": len(payload.get("failures") or []),
        "trace_id": stats.get("trace_id"),
        "phase_s": {},
    }
    profile = stats.get("profile")
    if isinstance(profile, dict):
        phases = profile.get("phases") or {}
        for path, entry in phases.items():
            if "/" in path or not isinstance(entry, dict):
                continue
            column = path if path in PHASE_COLUMNS else "other"
            row["phase_s"][column] = row["phase_s"].get(column, 0.0) + float(
                entry.get("total_s", 0.0) or 0.0
            )
    return row


def collect_trend(store: str) -> list[dict[str, Any]]:
    """Trend rows for every manifest in ``store`` (path or URL), oldest
    first."""
    from repro.serve import open_store  # late: avoid an import cycle

    with open_store(store) as opened:
        payloads = [manifest.to_payload() for manifest in opened.manifests()]
    rows = [trend_row(payload) for payload in payloads]
    rows.sort(key=lambda r: (r["started_unix"], r["run_id"]))
    return rows


def _pct(value: float | None) -> str:
    return f"{value * 100:5.1f}%" if value is not None else "     -"


def _age(now: float, started: float) -> str:
    delta = max(now - started, 0.0)
    if delta < 120:
        return f"{delta:.0f}s ago"
    if delta < 7200:
        return f"{delta / 60:.0f}m ago"
    if delta < 172800:
        return f"{delta / 3600:.0f}h ago"
    return f"{delta / 86400:.0f}d ago"


def render_trend(rows: list[dict[str, Any]], *, now: float | None = None) -> str:
    """Trend tables grouped by plan: cache efficiency, retries, phases."""
    if not rows:
        return "trend: no run manifests found"
    now = time.time() if now is None else now
    groups: dict[str, list[dict[str, Any]]] = {}
    for row in rows:
        groups.setdefault(row["plan_fingerprint"], []).append(row)
    lines = [f"run trends — {len(rows)} run(s), {len(groups)} plan(s)"]
    for fingerprint, group in groups.items():
        name = group[-1]["plan_name"]
        lines.append("")
        lines.append(
            f"plan {name!r}  fingerprint {fingerprint[:12]}  "
            f"({len(group)} run(s))"
        )
        lines.append(
            f"  {'run':<14} {'age':>8} {'units':>6} {'gen':>6} "
            f"{'cache':>6} {'rdLRU':>6} {'retry':>6} {'fail':>5} "
            f"{'wall s':>8} {'gen s':>7} {'score s':>8}"
        )
        for row in group:
            phase = row["phase_s"]
            gen_s = phase.get("generate")
            score_s = phase.get("score")
            lines.append(
                f"  {str(row['run_id'])[:14]:<14} "
                f"{_age(now, row['started_unix']):>8} "
                f"{row['total_units']:>6} {row['generated']:>6} "
                f"{_pct(row['cache_hit_rate'])} "
                f"{_pct(row['read_lru_hit_rate'])} "
                f"{_pct(row['retry_rate'])} {row['failures']:>5} "
                f"{row['wall_seconds']:>8.2f} "
                + (f"{gen_s:>7.2f} " if gen_s is not None else f"{'-':>7} ")
                + (f"{score_s:>8.2f}" if score_s is not None else f"{'-':>8}")
            )
        first, last = group[0], group[-1]
        if len(group) > 1:
            delta_wall = last["wall_seconds"] - first["wall_seconds"]
            cache_first = first["cache_hit_rate"]
            cache_last = last["cache_hit_rate"]
            drift = ""
            if cache_first is not None and cache_last is not None:
                drift = (
                    f", cache {_pct(cache_first).strip()} → "
                    f"{_pct(cache_last).strip()}"
                )
            lines.append(
                f"  trend: wall {first['wall_seconds']:.2f}s → "
                f"{last['wall_seconds']:.2f}s ({delta_wall:+.2f}s){drift}"
            )
    return "\n".join(lines)
