"""CLI for the observability layer.

Usage::

    python -m repro.obs report PROFILE.json
    python -m repro.obs report STORE/manifests/run-....json
    python -m repro.obs trace RUN_ID --store PATH_OR_URL --chrome out.json
    python -m repro.obs trend --store PATH_OR_URL [--json]

``report`` renders a saved phase profile (``--profile-json`` output) or
a run-manifest JSON.  ``trace`` looks up one run's recorded trace —
by run id in a store (local path or ``tcp://``/``unix://`` URL), or
directly from a manifest JSON file — prints a summary, and with
``--chrome`` exports Chrome trace-event JSON for chrome://tracing /
https://ui.perfetto.dev.  ``trend`` aggregates every manifest in a
store into cross-run cache-efficiency / retry-rate / phase-time trend
tables (``--json`` for machine-readable rows).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.errors import HarnessError
from repro.obs.report import (
    is_manifest_payload,
    load_payload,
    render_manifest,
    render_profile,
)
from repro.obs.spans import PhaseProfile
from repro.obs.trace import Trace


def _cmd_report(args: argparse.Namespace) -> str:
    payload = load_payload(args.profile)
    if is_manifest_payload(payload):
        out = [render_manifest(payload, title=f"run manifest — {args.profile}")]
        recorded = (payload.get("stats") or {}).get("profile")
        if recorded:
            out += [
                "",
                render_profile(
                    PhaseProfile.from_dict(recorded),
                    title="phase profile (recorded with the run)",
                ),
            ]
        return "\n".join(out)
    if isinstance(payload, dict) and "profile" in payload:
        payload = payload["profile"]  # the --profile-json wrapper
    return render_profile(
        PhaseProfile.from_dict(payload),
        title=f"phase profile — {args.profile}",
    )


def _manifest_payload(run_id: str, store: str | None) -> dict:
    if pathlib.Path(run_id).is_file():
        payload = load_payload(run_id)
        if not is_manifest_payload(payload):
            raise HarnessError(f"{run_id} is not a run-manifest JSON")
        return payload
    if store is None:
        raise HarnessError(
            f"run {run_id!r} is not a manifest file; pass --store to look "
            f"it up in a run store"
        )
    from repro.serve import open_store  # late: avoid an import cycle

    with open_store(store) as opened:
        manifest = opened.manifest(run_id)
    if manifest is None:
        raise HarnessError(f"run {run_id!r} not found in store {store}")
    return manifest.to_payload()


def _cmd_trace(args: argparse.Namespace) -> str:
    payload = _manifest_payload(args.run_id, args.store)
    raw = payload.get("trace")
    if not raw:
        trace_id = (payload.get("stats") or {}).get("trace_id")
        hint = f" (trace id was {trace_id})" if trace_id else ""
        raise HarnessError(
            f"run {payload.get('run_id')} has no recorded trace{hint} — "
            f"rerun with tracing armed (e.g. --trace)"
        )
    trace = Trace.from_dict(raw)
    out = [trace.describe()]
    if args.chrome:
        trace.write_chrome(args.chrome)
        out.append(f"chrome trace written to {args.chrome}")
    return "\n".join(out)


def _cmd_trend(args: argparse.Namespace) -> str:
    from repro.obs.trend import collect_trend, render_trend

    rows = collect_trend(args.store)
    if args.json:
        return json.dumps(rows, indent=2, sort_keys=True)
    return render_trend(rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render a saved phase profile or run manifest"
    )
    report.add_argument(
        "profile",
        help="profile JSON (--profile-json output) or a run-manifest JSON "
        "from a store's manifests/ directory",
    )
    report.set_defaults(func=_cmd_report)

    trace = sub.add_parser(
        "trace", help="summarize / export one run's recorded trace"
    )
    trace.add_argument(
        "run_id", help="run id to look up in --store, or a manifest JSON path"
    )
    trace.add_argument(
        "--store", help="store directory or tcp:// / unix:// store URL"
    )
    trace.add_argument(
        "--chrome",
        metavar="OUT_JSON",
        help="write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    trace.set_defaults(func=_cmd_trace)

    trend = sub.add_parser(
        "trend", help="cross-run cache/retry/phase trend tables"
    )
    trend.add_argument(
        "--store",
        required=True,
        help="store directory or tcp:// / unix:// store URL",
    )
    trend.add_argument(
        "--json", action="store_true", help="emit raw trend rows as JSON"
    )
    trend.set_defaults(func=_cmd_trend)

    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        rendered = args.func(args)
    except HarnessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(rendered)
    except BrokenPipeError:  # e.g. piped into head; not an error
        return 0
    return 0
