"""Typed metrics with labels: counters, gauges, histograms.

One :class:`MetricsRegistry` unifies the ad-hoc counters that grew
across the codebase (retry counts, read-LRU hits, bytes read, scores
computed, server ops) behind three Prometheus-shaped instrument types:

* :class:`Counter` — monotonically increasing totals (``inc``),
* :class:`Gauge` — point-in-time values (``set``/``inc``/``dec``),
* :class:`Histogram` — bucketed latency/size distributions
  (``observe``) with p50/p95/p99 estimates.

Every instrument takes optional **labels** (``counter.inc(op="get")``),
so one metric fans out into per-series values the way Prometheus
expects.  Registries are cheap plain-Python objects guarded by one
lock; the :class:`~repro.serve.server.StoreServer` owns an always-on
registry, while library code uses the *ambient* registry installed by
:func:`metering` — and, exactly like :func:`repro.obs.span`, pays only
a module-global load when none is active.

``snapshot()`` freezes a registry into a JSON-safe dict (the payload of
the store server's ``metrics`` op and of manifests' ``metrics`` field);
:func:`render_prometheus` turns a snapshot into Prometheus text
exposition for scraping or ``--metrics-file`` dumps.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import HarnessError

METRICS_SCHEMA = "repro.metrics/1"

#: Default histogram bucket upper bounds, in seconds — spans request
#: latencies from tens of microseconds to tens of seconds.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(
    labelnames: tuple[str, ...], labels: dict[str, Any]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise HarnessError(
            f"metric labels {sorted(labels)} != declared {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._mu = threading.Lock()
        self._series: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise HarnessError(f"counter {self.name} cannot decrease")
        key = _label_key(self.labelnames, labels)
        with self._mu:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._mu:
            return self._series.get(key, 0.0)

    def _snapshot_series(self) -> list[dict[str, Any]]:
        with self._mu:
            return [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in sorted(self._series.items())
            ]


class Gauge(Counter):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._mu:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._mu:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


class _HistogramSeries:
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram:
    """A bucketed distribution with quantile estimates.

    Buckets are upper bounds (``le``); an implicit +Inf bucket catches
    the overflow.  Quantiles are estimated by linear interpolation
    inside the bucket containing the target rank, clamped to the
    observed min/max — exact enough for p50/p95/p99 dashboards without
    storing samples.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise HarnessError(f"histogram {name}: buckets must ascend")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.buckets = tuple(float(b) for b in buckets)
        self._mu = threading.Lock()
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        value = float(value)
        with self._mu:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            idx = len(self.buckets)  # +Inf overflow by default
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            series.counts[idx] += 1
            series.count += 1
            series.sum += value
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    @staticmethod
    def _quantile(
        q: float, buckets: tuple[float, ...], series: _HistogramSeries
    ) -> float:
        if series.count == 0:
            return 0.0
        target = q * series.count
        cumulative = 0
        for i, bucket_count in enumerate(series.counts):
            if bucket_count == 0:
                cumulative += bucket_count
                continue
            if cumulative + bucket_count >= target:
                lo = buckets[i - 1] if i > 0 else 0.0
                hi = buckets[i] if i < len(buckets) else series.max
                lo = max(lo, series.min) if i == 0 else lo
                frac = (target - cumulative) / bucket_count
                value = lo + (hi - lo) * max(0.0, min(frac, 1.0))
                return max(series.min, min(value, series.max))
            cumulative += bucket_count
        return series.max

    def _snapshot_series(self) -> list[dict[str, Any]]:
        with self._mu:
            out = []
            for key, series in sorted(self._series.items()):
                out.append(
                    {
                        "labels": dict(zip(self.labelnames, key)),
                        "count": series.count,
                        "sum": series.sum,
                        "min": series.min if series.count else 0.0,
                        "max": series.max if series.count else 0.0,
                        "buckets": [
                            [self.buckets[i], series.counts[i]]
                            for i in range(len(self.buckets))
                        ]
                        + [["+Inf", series.counts[-1]]],
                        "p50": self._quantile(0.50, self.buckets, series),
                        "p95": self._quantile(0.95, self.buckets, series),
                        "p99": self._quantile(0.99, self.buckets, series),
                    }
                )
            return out


class MetricsRegistry:
    """Get-or-create home for a process's (or server's) instruments."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.created_unix = time.time()

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._mu:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise HarnessError(
                        f"metric {name!r} re-registered with a different "
                        f"type or labels"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe freeze of every instrument's current series."""
        with self._mu:
            metrics = list(self._metrics.values())
        return {
            "schema": METRICS_SCHEMA,
            "uptime_seconds": time.time() - self.created_unix,
            "metrics": [
                {
                    "name": metric.name,
                    "type": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "series": metric._snapshot_series(),
                }
                for metric in sorted(metrics, key=lambda m: m.name)
            ],
        }


def _fmt_labels(labels: dict[str, Any], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(float(value))


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Prometheus text exposition (v0.0.4) of one registry snapshot."""
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise HarnessError(f"malformed metrics snapshot: {snapshot!r:.120}")
    lines: list[str] = []
    for metric in snapshot["metrics"]:
        name = metric["name"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for series in metric["series"]:
            labels = series.get("labels", {})
            if metric["type"] == "histogram":
                cumulative = 0
                for bound, count in series["buckets"]:
                    cumulative += count
                    le = "+Inf" if bound == "+Inf" else _fmt_value(bound)
                    le_label = f'le="{le}"'
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, le_label)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_fmt_labels(labels)} {series['count']}"
                )
            else:
                lines.append(
                    f"{name}{_fmt_labels(labels)} "
                    f"{_fmt_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"


_active: MetricsRegistry | None = None
_active_mu = threading.Lock()


def active_registry() -> MetricsRegistry | None:
    """The ambient registry library code publishes into (None when off)."""
    return _active


@contextmanager
def metering(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (or a fresh one) as the ambient registry.

    Nestable like :func:`repro.obs.profiling`; the previous registry is
    restored on exit.
    """
    global _active
    reg = registry if registry is not None else MetricsRegistry()
    with _active_mu:
        previous, _active = _active, reg
    try:
        yield reg
    finally:
        with _active_mu:
            _active = previous
