"""Distributed tracing: spans with identities, not just totals.

The phase profiler (:mod:`repro.obs.spans`) answers "where did the wall
time go, in aggregate".  This module answers "what happened, when, and
on whose behalf": every traced run gets a **trace id**, every span gets
a **span id** and a **parent id**, and spans carry wall-clock start
times and durations — enough to reconstruct the run as a timeline and
export it as Chrome trace-event JSON (``chrome://tracing`` /
https://ui.perfetto.dev).

Spans cross process boundaries by value, not by reference: the
:class:`~repro.runtime.scoring.ScoringPool` workers and the
:mod:`repro.serve` store server each build plain span *dicts* (stamped
with their own pid and wall clock) that the parent process folds into
its live trace via :meth:`Tracer.record_remote`.  A ``trace`` field on
request frames (see :mod:`repro.serve.protocol`) carries the trace id
and the client span id across the wire so the server's spans parent the
client span that caused them.

Like the profiler, tracing is **zero cost when off**: with no active
tracer, :func:`repro.obs.span` short-circuits before this module is
consulted; with a tracer active but no trace begun (between runs),
``Tracer.span`` records nothing.  Span volume is bounded by
``max_spans`` — beyond the cap new spans are counted as ``dropped``
rather than accumulated, so tracing a huge sweep cannot exhaust memory.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import HarnessError

TRACE_SCHEMA = "repro.trace/1"

#: Default per-trace span cap; beyond it spans are dropped (and counted).
MAX_SPANS = 20_000


def _new_id() -> str:
    """A fresh 16-hex-char id, unique enough across processes."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh span id, for callers that need the id before the span is
    recorded (e.g. to propagate it as a parent over the wire first)."""
    return _new_id()


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: identity, lineage, and wall-clock placement."""

    span_id: str
    parent_id: str | None
    name: str
    start_unix: float
    duration_s: float
    pid: int
    thread: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "thread": self.thread,
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "SpanRecord":
        try:
            parent = payload.get("parent_id")
            return SpanRecord(
                span_id=str(payload["span_id"]),
                parent_id=None if parent is None else str(parent),
                name=str(payload["name"]),
                start_unix=float(payload["start_unix"]),
                duration_s=float(payload["duration_s"]),
                pid=int(payload.get("pid", 0)),
                thread=str(payload.get("thread", "?")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HarnessError(f"malformed span record: {exc}") from None


def make_span_dict(
    name: str,
    *,
    parent_id: str | None,
    start_unix: float,
    duration_s: float,
    span_id: str | None = None,
) -> dict[str, Any]:
    """Build a remote-side span dict (worker / server processes).

    The producing process stamps its own pid and thread name; the
    consuming process folds the dict into its live trace with
    :meth:`Tracer.record_remote`.
    """
    return {
        "span_id": span_id if span_id is not None else _new_id(),
        "parent_id": parent_id,
        "name": name,
        "start_unix": start_unix,
        "duration_s": duration_s,
        "pid": os.getpid(),
        "thread": threading.current_thread().name,
    }


@dataclass(frozen=True)
class Trace:
    """An immutable, completed trace: one run's spans plus identity."""

    trace_id: str
    name: str
    spans: tuple[SpanRecord, ...]
    dropped: int = 0

    def __bool__(self) -> bool:
        return bool(self.spans)

    @property
    def root(self) -> SpanRecord | None:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "name": self.name,
            "dropped": self.dropped,
            "spans": [span.as_dict() for span in self.spans],
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "Trace":
        if not isinstance(payload, dict) or "trace_id" not in payload:
            raise HarnessError(f"malformed trace payload: {payload!r:.120}")
        raw = payload.get("spans") or []
        if not isinstance(raw, list):
            raise HarnessError("malformed trace payload: spans is not a list")
        return Trace(
            trace_id=str(payload["trace_id"]),
            name=str(payload.get("name", "?")),
            spans=tuple(SpanRecord.from_dict(entry) for entry in raw),
            dropped=int(payload.get("dropped", 0)),
        )

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON (load in chrome://tracing / Perfetto).

        Spans become ``"X"`` (complete) events with microsecond
        timestamps; one lane per (pid, thread), named via ``"M"``
        metadata events so the viewer shows real thread names.
        """
        lanes: dict[tuple[int, str], int] = {}
        events: list[dict[str, Any]] = []
        for span in self.spans:
            lane = lanes.setdefault((span.pid, span.thread), len(lanes) + 1)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_unix * 1e6,
                    "dur": max(span.duration_s, 1e-7) * 1e6,
                    "pid": span.pid,
                    "tid": lane,
                    "args": {
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "trace_id": self.trace_id,
                    },
                }
            )
        for (pid, thread), lane in lanes.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": lane,
                    "args": {"name": thread},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": self.trace_id, "trace_name": self.name},
        }

    def write_chrome(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.chrome_trace()))

    def describe(self) -> str:
        """One-glance summary: id, span count, pids, slowest spans."""
        pids = sorted({span.pid for span in self.spans})
        by_time = sorted(self.spans, key=lambda s: -s.duration_s)[:5]
        lines = [
            f"trace {self.trace_id}  {self.name!r}",
            f"  spans       {len(self.spans)}"
            + (f"  (+{self.dropped} dropped)" if self.dropped else ""),
            f"  processes   {len(pids)}  {pids}",
        ]
        root = self.root
        if root is not None:
            lines.append(f"  wall        {root.duration_s:.3f}s")
        if by_time:
            lines.append("  slowest spans:")
            for span in by_time:
                lines.append(
                    f"    {span.duration_s * 1000:>9.2f} ms  {span.name}"
                    f"  (pid {span.pid}, {span.thread})"
                )
        return "\n".join(lines)


class _TraceState:
    """Mutable accumulator behind one in-flight trace."""

    __slots__ = ("trace_id", "name", "root_id", "started_unix", "_t0",
                 "_mu", "_spans", "_dropped", "_closed", "max_spans")

    def __init__(self, name: str, *, max_spans: int) -> None:
        self.trace_id = _new_id()
        self.name = name
        self.root_id = _new_id()
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self._mu = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._dropped = 0
        self._closed = False
        self.max_spans = max_spans

    def add(self, span: SpanRecord) -> None:
        with self._mu:
            if self._closed:
                return
            if len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(span)

    def close(self) -> Trace:
        wall = time.perf_counter() - self._t0
        with self._mu:
            self._closed = True
            spans = list(self._spans)
        spans.append(
            SpanRecord(
                span_id=self.root_id,
                parent_id=None,
                name=self.name,
                start_unix=self.started_unix,
                duration_s=wall,
                pid=os.getpid(),
                thread=threading.current_thread().name,
            )
        )
        spans.sort(key=lambda s: s.start_unix)
        return Trace(
            trace_id=self.trace_id,
            name=self.name,
            spans=tuple(spans),
            dropped=self._dropped,
        )


class Tracer:
    """Collects identified spans for one trace at a time.

    A tracer is installed process-wide with :func:`tracing`; while a
    trace is open (:meth:`begin_trace` … :meth:`end_trace`) every bare
    :func:`repro.obs.span` additionally records a :class:`SpanRecord`
    here.  Between traces the tracer is inert.  Only one trace may be
    open at a time — a nested ``begin_trace`` returns ``None`` and the
    inner run's spans simply fold into the outer trace.

    ``on_finish`` (optional) is called with each completed
    :class:`Trace` as :meth:`end_trace` freezes it — the hook for
    callers that arm tracing around code they do not own (e.g. a script
    collecting every run's trace without a store).  Hook failures
    propagate to the ``end_trace`` caller.
    """

    def __init__(
        self,
        *,
        max_spans: int = MAX_SPANS,
        on_finish: "Any | None" = None,
    ) -> None:
        self._mu = threading.Lock()
        self._state: _TraceState | None = None
        self._tls = threading.local()
        self.max_spans = max_spans
        self.on_finish = on_finish

    # -- trace lifecycle -------------------------------------------------

    def begin_trace(self, name: str) -> _TraceState | None:
        """Open a trace; returns a handle, or None if one is already open."""
        with self._mu:
            if self._state is not None:
                return None
            state = _TraceState(name, max_spans=self.max_spans)
            self._state = state
            return state

    def end_trace(self, handle: _TraceState) -> Trace:
        """Close the trace opened by ``handle`` and freeze its spans."""
        with self._mu:
            if self._state is handle:
                self._state = None
        trace = handle.close()
        if self.on_finish is not None:
            self.on_finish(trace)
        return trace

    def current_trace_id(self) -> str | None:
        state = self._state
        return state.trace_id if state is not None else None

    # -- span recording --------------------------------------------------

    def _stack(self, state: _TraceState) -> list[str]:
        # per-thread, per-trace nesting stack: pooled worker threads may
        # carry a stale stack from an earlier trace — reset on mismatch
        entry = getattr(self._tls, "entry", None)
        if entry is None or entry[0] is not state:
            entry = (state, [])
            self._tls.entry = entry
        return entry[1]

    @contextmanager
    def span(self, name: str) -> Iterator[str | None]:
        """Record one identified span (no-op when no trace is open)."""
        state = self._state
        if state is None:
            yield None
            return
        stack = self._stack(state)
        parent = stack[-1] if stack else state.root_id
        span_id = _new_id()
        stack.append(span_id)
        start_unix = time.time()
        t0 = time.perf_counter()
        try:
            yield span_id
        finally:
            duration = time.perf_counter() - t0
            stack.pop()
            state.add(
                SpanRecord(
                    span_id=span_id,
                    parent_id=parent,
                    name=name,
                    start_unix=start_unix,
                    duration_s=duration,
                    pid=os.getpid(),
                    thread=threading.current_thread().name,
                )
            )

    def current_span_id(self) -> str | None:
        """The enclosing span id on this thread (the trace root if none).

        This is the value to propagate across a process boundary so the
        remote side's spans parent the local span that caused them.
        """
        state = self._state
        if state is None:
            return None
        stack = self._stack(state)
        return stack[-1] if stack else state.root_id

    def record_span(
        self,
        name: str,
        *,
        start_unix: float,
        duration_s: float,
        parent_id: str | None = None,
    ) -> None:
        """Fold one externally timed span (async paths, batch wall times).

        Unlike :meth:`span` this never touches the thread's nesting
        stack, so it is safe from interleaved asyncio tasks.
        """
        state = self._state
        if state is None:
            return
        state.add(
            SpanRecord(
                span_id=_new_id(),
                parent_id=parent_id if parent_id is not None else state.root_id,
                name=name,
                start_unix=start_unix,
                duration_s=duration_s,
                pid=os.getpid(),
                thread=threading.current_thread().name,
            )
        )

    def record_remote(self, spans: list[dict[str, Any]]) -> int:
        """Fold span dicts produced by another process into the trace.

        Returns the number folded (0 when no trace is open or on
        malformed entries — remote telemetry must never fail a run).
        """
        state = self._state
        if state is None:
            return 0
        folded = 0
        for payload in spans or ():
            try:
                state.add(SpanRecord.from_dict(payload))
            except HarnessError:
                continue
            folded += 1
        return folded


_active: Tracer | None = None
_active_mu = threading.Lock()


def active_tracer() -> Tracer | None:
    """The process-wide tracer bare :func:`repro.obs.span` calls feed."""
    return _active


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) as the active tracer.

    Nestable like :func:`repro.obs.profiling`: the previous tracer is
    restored on exit.
    """
    global _active
    trc = tracer if tracer is not None else Tracer()
    with _active_mu:
        previous, _active = _active, trc
    try:
        yield trc
    finally:
        with _active_mu:
            _active = previous


def propagation_context() -> dict[str, str] | None:
    """The ``{"id": trace_id, "parent": span_id}`` dict to send over a
    process boundary, or None when tracing is off / no trace is open."""
    tracer = _active
    if tracer is None:
        return None
    trace_id = tracer.current_trace_id()
    if trace_id is None:
        return None
    parent = tracer.current_span_id()
    ctx = {"id": trace_id}
    if parent is not None:
        ctx["parent"] = parent
    return ctx


def fold_remote_spans(spans: list[dict[str, Any]] | None) -> int:
    """Fold remote span dicts into the active trace (no-op when off)."""
    if not spans:
        return 0
    tracer = _active
    if tracer is None:
        return 0
    return tracer.record_remote(spans)
