"""Shared low-level utilities: seeded RNG derivation, text handling, tables."""

from repro.utils.rng import derive_seed, rng_for
from repro.utils.text import (
    dedent_strip,
    extract_code_blocks,
    extract_first_code_block,
    normalize_newlines,
    strip_markdown_chatter,
)

__all__ = [
    "derive_seed",
    "rng_for",
    "dedent_strip",
    "extract_code_blocks",
    "extract_first_code_block",
    "normalize_newlines",
    "strip_markdown_chatter",
]
