"""Plain-text table rendering used by the reporting layer and benchmarks.

The renderer intentionally mimics the layout of the paper's tables: a header
row of model names, one row per workflow system, ``mean±stderr`` cells, and
an ``Overall`` row/column.  Output is monospace-aligned ASCII so it reads
cleanly in benchmark logs and EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Cell:
    """A single table cell: a value with optional uncertainty and bold flag."""

    mean: float
    stderr: float | None = None
    bold: bool = False

    def render(self, precision: int = 1) -> str:
        base = f"{self.mean:.{precision}f}"
        if self.stderr is not None:
            base += f"±{self.stderr:.{precision}f}"
        if self.bold:
            base = f"*{base}*"
        return base


@dataclass
class TextTable:
    """A rectangular table with a title, column headers, and labelled rows."""

    title: str
    columns: Sequence[str]
    rows: list[tuple[str, list[str]]] = field(default_factory=list)

    def add_row(self, label: str, cells: Sequence[Cell | str], precision: int = 1) -> None:
        rendered = [c.render(precision) if isinstance(c, Cell) else str(c) for c in cells]
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(rendered)} cells, expected {len(self.columns)}"
            )
        self.rows.append((label, rendered))

    def render(self) -> str:
        header = ["" , *self.columns]
        body = [[label, *cells] for label, cells in self.rows]
        widths = [
            max(len(str(row[i])) for row in [header, *body])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * max(len(self.title), 8)]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = [",".join(["", *map(str, self.columns)])]
        for label, cells in self.rows:
            out.append(",".join([label, *cells]))
        return "\n".join(out)


def render_matrix(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    precision: int = 1,
) -> str:
    """Render a dense numeric matrix (used for Figure 1 heatmaps)."""
    table = TextTable(title=title, columns=list(col_labels))
    for label, row in zip(row_labels, values):
        table.add_row(label, [Cell(float(v)) for v in row], precision)
    return table.render()
