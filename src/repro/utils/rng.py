"""Deterministic seed derivation.

Every stochastic component in the package derives its RNG from a stable
SHA-256 hash of string labels, never from global state.  This makes whole
experiment sweeps reproducible bit-for-bit across processes and platforms
(Python's builtin ``hash`` is salted per-process, so it is never used).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(*labels: object) -> int:
    """Derive a stable 64-bit seed from an ordered sequence of labels.

    Labels are stringified and joined with an unlikely separator, then hashed
    with SHA-256.  The same labels always produce the same seed, and any
    change to any label (including order) produces an unrelated seed.

    >>> derive_seed("table1", "o3", "adios2", 0) == derive_seed("table1", "o3", "adios2", 0)
    True
    >>> derive_seed("a", "b") != derive_seed("b", "a")
    True
    """
    payload = "\x1f".join(str(label) for label in labels).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & _MASK64


def rng_for(*labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded from ``labels``."""
    return np.random.default_rng(derive_seed(*labels))


def spawn_streams(base: int, n: int) -> list[np.random.Generator]:
    """Split a base seed into ``n`` independent generator streams."""
    ss = np.random.SeedSequence(base)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def choice_weighted(rng: np.random.Generator, items: Iterable, weights: Iterable[float]):
    """Weighted choice that tolerates zero-sum weights by falling back to uniform."""
    items = list(items)
    w = np.asarray(list(weights), dtype=float)
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    total = w.sum()
    if total <= 0:
        return items[int(rng.integers(0, len(items)))]
    return items[int(rng.choice(len(items), p=w / total))]
