"""Text utilities shared by the metrics, LLM simulator, and harness.

These implement the response post-processing that a real LLM evaluation
pipeline needs: code-fence extraction, chatter stripping, and newline
normalization.  The functions are deliberately conservative — they never
invent content, only select or normalize it.
"""

from __future__ import annotations

import re
import textwrap

_FENCE_RE = re.compile(
    r"```[ \t]*(?P<lang>[A-Za-z0-9_+.-]*)[ \t]*\r?\n(?P<body>.*?)(?:\r?\n)?```",
    re.DOTALL,
)


def normalize_newlines(text: str) -> str:
    """Convert CRLF / CR line endings to LF."""
    return text.replace("\r\n", "\n").replace("\r", "\n")


def dedent_strip(text: str) -> str:
    """Dedent a triple-quoted asset string and strip outer blank lines."""
    return textwrap.dedent(normalize_newlines(text)).strip("\n")


def extract_code_blocks(text: str) -> list[tuple[str, str]]:
    """Extract all fenced code blocks as ``(language, body)`` tuples.

    The language tag may be empty.  Bodies keep their internal formatting but
    drop the fence lines themselves.
    """
    text = normalize_newlines(text)
    return [(m.group("lang") or "", m.group("body")) for m in _FENCE_RE.finditer(text)]


def extract_first_code_block(text: str, *, fallback_to_text: bool = True) -> str:
    """Return the first fenced code block, or the whole text if none exists.

    This mirrors how LLM-evaluation harnesses score code-generation responses:
    models wrap code in markdown fences surrounded by prose; the scorer wants
    only the code.  When several blocks are present the *longest* block is
    returned, since models frequently emit a short shell snippet before the
    main artifact.
    """
    blocks = extract_code_blocks(text)
    if not blocks:
        return normalize_newlines(text).strip("\n") if fallback_to_text else ""
    body = max(blocks, key=lambda pair: len(pair[1]))[1]
    return body.strip("\n")


_CHATTER_PREFIXES = (
    "sure",
    "certainly",
    "here is",
    "here's",
    "of course",
    "below is",
    "i have",
    "i've",
    "the following",
    "this is",
)


def strip_markdown_chatter(text: str) -> str:
    """Remove leading/trailing conversational prose around a code response.

    If the text contains a fenced block we defer to
    :func:`extract_first_code_block`.  Otherwise we drop leading lines that
    look like assistant chatter ("Sure, here is the configuration ...") and
    trailing lines that look like commentary, keeping the contiguous middle.
    """
    text = normalize_newlines(text)
    if _FENCE_RE.search(text):
        return extract_first_code_block(text)
    lines = text.split("\n")
    start, end = 0, len(lines)
    while start < end:
        probe = lines[start].strip().lower()
        if probe and any(probe.startswith(p) for p in _CHATTER_PREFIXES):
            start += 1
        elif not probe:
            start += 1
        else:
            break
    while end > start and not lines[end - 1].strip():
        end -= 1
    return "\n".join(lines[start:end])


def line_count(text: str) -> int:
    """Number of non-empty lines in ``text``."""
    return sum(1 for ln in normalize_newlines(text).split("\n") if ln.strip())


def indent_of(line: str) -> str:
    """Leading whitespace of a line."""
    return line[: len(line) - len(line.lstrip())]
