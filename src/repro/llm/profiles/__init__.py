"""The four simulated paper models, self-registered on import.

Each profile combines:

* calibration targets assembled from the paper's tables (original-variant
  cells from Tables 1–3, prompt-variant cells from Figure 1, few-shot
  cells from Table 5 plus the documented per-system offsets);
* ChrF-vs-BLEU biases derived from the same tables;
* generic per-cell failure knowledge from
  :mod:`repro.llm.worst_cases`, overlaid with the model-specific
  fingerprints the paper reports (o3's ``henson_put``, Gemini's
  ``henson_declare_variable`` and data-handle hallucinations, LLaMA's
  missing ``compss_wait_on_file`` and ADIOS2-shaped Henson API, ...).
"""

from __future__ import annotations

from repro.data import (
    FEWSHOT_SYSTEM_OFFSETS,
    FIGURE1A,
    FIGURE1B,
    FIGURE1C,
    MODELS,
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE5,
)
from repro.llm.api import register_model
from repro.llm.knowledge import ModelProfile, SystemKnowledge
from repro.llm.worst_cases import generic_knowledge, merge_knowledge, worst_case

_ALL_CELLS: list[tuple[str, object]] = (
    [("configuration", s) for s in ("adios2", "henson", "wilkins")]
    + [("annotation", s) for s in ("adios2", "henson", "pycompss", "parsl")]
    + [
        ("translation", ("henson", "adios2")),
        ("translation", ("adios2", "henson")),
        ("translation", ("parsl", "pycompss")),
        ("translation", ("pycompss", "parsl")),
    ]
)


def _targets_for(model: str) -> dict[tuple, float]:
    """Assemble the calibration-target table for one model."""
    idx = MODELS.index(model)
    targets: dict[tuple, float] = {}
    for (system, m), cell in TABLE1.items():
        if m == model:
            targets[("configuration", system, "original")] = cell.bleu
    for (system, m), cell in TABLE2.items():
        if m == model:
            targets[("annotation", system, "original")] = cell.bleu
    for (pair, m), cell in TABLE3.items():
        if m == model:
            targets[("translation", pair, "original")] = cell.bleu
    for system, rows in FIGURE1A.items():
        for variant, values in rows.items():
            if variant != "original":
                targets[("configuration", system, variant)] = values[idx]
    for system, rows in FIGURE1B.items():
        for variant, values in rows.items():
            if variant != "original":
                targets[("annotation", system, variant)] = values[idx]
    for pair, rows in FIGURE1C.items():
        for variant, values in rows.items():
            if variant != "original":
                targets[("translation", pair, variant)] = values[idx]
    few = TABLE5[model]["few-shot"].bleu
    for system, offset in FEWSHOT_SYSTEM_OFFSETS.items():
        targets[("configuration-fewshot", system)] = min(100.0, few + offset)
    return targets


def _biases_for(model: str) -> dict[tuple, float]:
    """ChrF − BLEU per cell, from the paper tables."""
    biases: dict[tuple, float] = {}
    for (system, m), cell in TABLE1.items():
        if m == model:
            biases[("configuration", system)] = cell.chrf - cell.bleu
    for (system, m), cell in TABLE2.items():
        if m == model:
            biases[("annotation", system)] = cell.chrf - cell.bleu
    for (pair, m), cell in TABLE3.items():
        if m == model:
            biases[("translation", pair)] = cell.chrf - cell.bleu
    return biases


def _base_knowledge() -> dict[tuple, SystemKnowledge]:
    """Generic knowledge + worst-case anchors shared by every model."""
    cells: dict[tuple, SystemKnowledge] = {}
    for experiment, system_key in _ALL_CELLS:
        generic = generic_knowledge(experiment, system_key)
        anchored = SystemKnowledge(worst_case=worst_case(experiment, system_key))
        cells[(experiment, system_key)] = merge_knowledge(generic, anchored)
    return cells


def build_profile(
    model: str,
    *,
    vendor: str,
    display_name: str,
    chatter_prefixes: tuple[str, ...],
    chatter_suffixes: tuple[str, ...] = (),
    ignore_sampling_params: bool = False,
    epoch_jitter: float = 1.0,
    overrides: dict[tuple, SystemKnowledge] | None = None,
) -> ModelProfile:
    """Assemble a complete profile (shared plumbing for the four models)."""
    knowledge = _base_knowledge()
    for key, extra in (overrides or {}).items():
        knowledge[key] = merge_knowledge(knowledge.get(key, SystemKnowledge()), extra)
    return ModelProfile(
        name=model,
        vendor=vendor,
        display_name=display_name,
        chatter_prefixes=chatter_prefixes,
        chatter_suffixes=chatter_suffixes,
        ignore_sampling_params=ignore_sampling_params,
        epoch_jitter=epoch_jitter,
        knowledge=knowledge,
        targets=_targets_for(model),
        biases=_biases_for(model),
    )


from repro.llm.profiles.claude import claude_profile  # noqa: E402
from repro.llm.profiles.gemini import gemini_profile  # noqa: E402
from repro.llm.profiles.llama import llama_profile  # noqa: E402
from repro.llm.profiles.o3 import o3_profile  # noqa: E402

ALL_PROFILES = {
    "o3": o3_profile,
    "gemini-2.5-pro": gemini_profile,
    "claude-sonnet-4": claude_profile,
    "llama-3.3-70b": llama_profile,
}


def _register_all() -> None:
    from repro.llm.simulated import SimulatedModel

    for name, factory in ALL_PROFILES.items():
        register_model(
            f"sim/{name}", lambda factory=factory: SimulatedModel(factory())
        )


_register_all()
