"""Claude-Sonnet-4 (Anthropic) simulated profile.

Paper-reported fingerprints encoded here:

* trial-to-trial determinism — many Claude cells in Tables 1–3 report a
  standard error of exactly 0.0, so ``epoch_jitter=0`` (the same prompt
  yields the same artifact in every trial);
* on Parsl, a tendency to configure executors that were never requested
  (shared generic knowledge, amplified by an extra insert here).
"""

from __future__ import annotations

from functools import lru_cache

from repro.llm.knowledge import ModelProfile, SystemKnowledge


@lru_cache(maxsize=1)
def claude_profile() -> ModelProfile:
    from repro.llm.profiles import build_profile

    overrides = {
        ("annotation", "parsl"): SystemKnowledge(
            inserts=(
                ("parsl.load()",
                 "parsl.load(Config(executors=[HighThroughputExecutor()]))"),
            ),
        ),
    }
    return build_profile(
        "claude-sonnet-4",
        vendor="anthropic",
        display_name="Claude-Sonnet-4",
        chatter_prefixes=(
            "Here is the artifact:",
            "I've prepared the requested code below.",
        ),
        epoch_jitter=0.0,
        overrides=overrides,
    )
