"""LLaMA-3.3-70B-Instruct (Meta) simulated profile.

Paper-reported fingerprints encoded here:

* on PyCOMPSs the responses lack required synchronization calls —
  ``compss_wait_on_file`` above all (§4.2), collapsing its annotation
  score (9.9 BLEU);
* ADIOS2→Henson translation re-skins the ADIOS2 API with ``henson_``
  prefixes (``henson_begin_step``/``henson_put_var``/... — Table 4 left,
  which anchors that cell's worst case through the shared data module);
* weaker instruction following overall, modelled by richer generic
  confusion usage and moderate per-trial jitter.
"""

from __future__ import annotations

from functools import lru_cache

from repro.llm.knowledge import ModelProfile, SystemKnowledge


@lru_cache(maxsize=1)
def llama_profile() -> ModelProfile:
    from repro.llm.profiles import build_profile

    overrides = {
        ("annotation", "pycompss"): SystemKnowledge(
            drops=("compss_wait_on_file", "from pycompss.api.api import"),
            confusions={"compss_wait_on": "compss_barrier_group"},
        ),
        ("translation", ("adios2", "henson")): SystemKnowledge(
            confusions={
                "henson_save_array": "henson_put_var",
                "henson_save_int": "henson_put_var",
                "henson_yield": "henson_end_step",
                "henson_active": "henson_begin_step",
            },
        ),
        ("translation", ("parsl", "pycompss")): SystemKnowledge(
            drops=("compss_wait_on_file",),
        ),
    }
    return build_profile(
        "llama-3.3-70b",
        vendor="meta",
        display_name="LLaMA-3.3-70B",
        chatter_prefixes=(
            "Sure, here is the code.",
            "Here's the requested file.",
        ),
        epoch_jitter=0.8,
        overrides=overrides,
    )
