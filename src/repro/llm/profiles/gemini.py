"""Gemini-2.5-Pro (Google) simulated profile.

Paper-reported fingerprints encoded here:

* annotation on Henson invents ``henson_declare_variable`` (§4.2);
* ADIOS2→Henson translation uses the correct exchange calls
  (``henson_save_*``/``henson_yield``) but hallucinates data handles
  (``henson_data_init``/``henson_data_init_scalar``) and lifecycle calls
  (``henson_init``/``henson_rank``/``henson_size``/``henson_finalize``) —
  the Table 4 (right) listing anchors that cell's worst case.
"""

from __future__ import annotations

from functools import lru_cache

from repro.data.case_studies import TABLE4_GEMINI
from repro.llm.knowledge import ModelProfile, SystemKnowledge


@lru_cache(maxsize=1)
def gemini_profile() -> ModelProfile:
    from repro.llm.profiles import build_profile

    overrides = {
        ("annotation", "henson"): SystemKnowledge(
            confusions={"henson_save_array": "henson_declare_variable"},
        ),
        ("translation", ("adios2", "henson")): SystemKnowledge(
            inserts=(
                ("henson_save_array", "henson_data_t array_hd;"),
                ("henson_save_int", "henson_data_t t_hd;"),
            ),
            confusions={"henson_save_array": "henson_data_init"},
            worst_case=TABLE4_GEMINI,
        ),
    }
    return build_profile(
        "gemini-2.5-pro",
        vendor="google",
        display_name="Gemini-2.5-Pro",
        chatter_prefixes=(
            "Of course. Here is the artifact you asked for.",
            "Certainly! Below is the implementation with explanations inline.",
        ),
        epoch_jitter=2.0,
        overrides=overrides,
    )
