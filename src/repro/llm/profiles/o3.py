"""o3 (OpenAI) simulated profile.

Paper-reported fingerprints encoded here:

* the API exposes no temperature/top_p (``ignore_sampling_params``);
* annotation on Henson invents ``henson_put`` (§4.2);
* zero-shot Wilkins configuration hallucinates the
  ``inputs``/``outputs``/``command``/``dependencies`` schema of Table 6
  (worst-case anchor, plus field confusions) and fabricates a citation to
  a "Wilkins Workflow System Documentation" at ``https://www.wilkins.io``
  (§4.1) — reproduced in the chatter.
"""

from __future__ import annotations

from functools import lru_cache

from repro.llm.knowledge import ModelProfile, SystemKnowledge


@lru_cache(maxsize=1)
def o3_profile() -> ModelProfile:
    from repro.llm.profiles import build_profile

    overrides = {
        ("annotation", "henson"): SystemKnowledge(
            confusions={"henson_save_int": "henson_put"},
        ),
        ("configuration", "wilkins"): SystemKnowledge(
            confusions={
                "inports": "inputs",
                "outports": "outputs",
                "func": "command",
                "nprocs": "processes",
            },
            inserts=(("tasks:", "# see Wilkins Workflow System Documentation"),),
        ),
        ("translation", ("adios2", "henson")): SystemKnowledge(
            confusions={"henson_save_array": "henson_put_array"},
        ),
    }
    return build_profile(
        "o3",
        vendor="openai",
        display_name="o3",
        chatter_prefixes=(
            "Here is the requested artifact.",
            "Below is the solution, following the request step by step.",
        ),
        chatter_suffixes=(
            "Reference: Wilkins Workflow System Documentation, "
            "https://www.wilkins.io",
            "",
        ),
        ignore_sampling_params=True,
        epoch_jitter=1.5,
        overrides=overrides,
    )
