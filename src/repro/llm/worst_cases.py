"""Worst-case artifacts and generic failure knowledge per experiment cell.

The paper reports two universal failure modes: models emitting *task code
instead of configuration files*, and models transplanting one system's
API shape onto another.  This module provides those completely-confused
artifacts (the bottom anchor of each corruption curve) plus the generic
portion of the failure knowledge every model shares; model profiles merge
their personal fingerprints on top.
"""

from __future__ import annotations

from repro.data.case_studies import TABLE4_LLAMA, TABLE6_ZEROSHOT
from repro.llm.knowledge import SystemKnowledge
from repro.utils.text import dedent_strip

# ---------------------------------------------------------------------------
# configuration-experiment worst cases: task code / wrong format instead of
# the requested configuration file
# ---------------------------------------------------------------------------

_CONFIG_WORST_ADIOS2 = dedent_strip(
    """
    // ADIOS2 "configuration" answered as task code (wrong artifact kind)
    #include <adios2_c.h>
    int main(int argc, char** argv)
    {
        adios2_adios* adios = adios2_init(MPI_COMM_WORLD);
        adios2_io* io = adios2_declare_io(adios, "SimulationOutput");
        adios2_engine* engine = adios2_open(io, "output.bp", adios2_mode_write);
        adios2_close(engine);
        adios2_finalize(adios);
        return 0;
    }
    """
)

_CONFIG_WORST_HENSON = dedent_strip(
    """
    # Henson "configuration" answered in an invented YAML schema
    workflow:
      name: producer_consumer
      nodes:
        - id: producer
          executable: ./producer
          ranks: 3
          outputs: [grid, particles]
        - id: consumer1
          executable: ./consumer1
          ranks: 1
          inputs: [grid]
        - id: consumer2
          executable: ./consumer2
          ranks: 1
          inputs: [particles]
      engine: henson
    """
)

# ---------------------------------------------------------------------------
# annotation-experiment worst cases: wrong or missing workflow API
# ---------------------------------------------------------------------------

_ANNOT_WORST_ADIOS2 = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <mpi.h>
    #include <adios.h>

    int main(int argc, char** argv)
    {
        MPI_Init(&argc, &argv);
        adios_init("config.xml", MPI_COMM_WORLD);
        int64_t handle;
        adios_open(&handle, "writer", "output.bp", "w", MPI_COMM_WORLD);
        float array[50];
        adios_write(handle, "array", array);
        adios_close(handle);
        adios_finalize(0);
        MPI_Finalize();
        return 0;
    }
    """
)

_ANNOT_WORST_HENSON = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <mpi.h>
    #include "henson.h"

    int main(int argc, char** argv)
    {
        henson_context_t* ctx = henson_create_context(MPI_COMM_WORLD);
        for (int t = 0; t < 3; ++t) {
            float* array = make_array(50);
            henson_declare_variable(ctx, "array");
            henson_put(ctx, "array", array);
            henson_advance(ctx);
        }
        henson_destroy_context(ctx);
        return 0;
    }
    """
)

_ANNOT_WORST_PYCOMPSS = dedent_strip(
    """
    import numpy as np
    from pycompss import parallel_task


    @parallel_task(workers=4)
    def simulate(n, t):
        rng = np.random.default_rng(t)
        return rng.random(n).sum()


    def main():
        totals = [simulate(50, t) for t in range(3)]
        print(sum(totals))
    """
)

_ANNOT_WORST_PARSL = dedent_strip(
    """
    import numpy as np
    from parsl import App, DataFlowKernel

    dfk = DataFlowKernel()


    @App("python", dfk)
    def simulate(n, t):
        rng = np.random.default_rng(t)
        return rng.random(n).sum()


    def main():
        totals = [simulate(50, t) for t in range(3)]
        print(sum([t.result() for t in totals]))
    """
)

# ---------------------------------------------------------------------------
# translation worst cases: source-system API shape transplanted onto the
# target system (Table 4 left is the canonical example)
# ---------------------------------------------------------------------------

_TRANS_WORST_TO_ADIOS2 = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <mpi.h>
    #include <adios2_c.h>

    int main(int argc, char** argv)
    {
        int rank;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        int t = 0;
        while (adios2_active())
        {
            float* array = make_array(50);
            adios2_save_array("array", array, 50);
            adios2_save_int("t", t);
            adios2_yield();
            t++;
        }
        return 0;
    }
    """
)

_TRANS_WORST_TO_PYCOMPSS = dedent_strip(
    """
    import numpy as np
    from pycompss import pycompss_app
    from pycompss.files import File


    @pycompss_app
    def simulate_step(n, t, outputs=()):
        rng = np.random.default_rng(t)
        array = rng.random(n).astype("float32")
        np.save(outputs[0].filepath, array)
        return float(array.sum())


    def main():
        futures = [simulate_step(50, t, outputs=[File(f"a_{t}.npy")]) for t in range(3)]
        print(sum(f.result() for f in futures))
    """
)

_TRANS_WORST_TO_PARSL = dedent_strip(
    """
    import numpy as np
    from parsl.api.task import task
    from parsl.api.parameter import FILE_OUT
    from parsl.api.api import parsl_wait_on


    @task(fname=FILE_OUT, returns=float)
    def simulate_step(n, t, fname):
        rng = np.random.default_rng(t)
        array = rng.random(n).astype("float32")
        np.save(fname, array)
        return float(array.sum())


    def main():
        sums = [simulate_step(50, t, f"a_{t}.npy") for t in range(3)]
        print(sum(parsl_wait_on(sums)))
    """
)

_WORST_CASES: dict[tuple, str] = {
    ("configuration", "adios2"): _CONFIG_WORST_ADIOS2,
    ("configuration", "henson"): _CONFIG_WORST_HENSON,
    ("configuration", "wilkins"): TABLE6_ZEROSHOT,
    ("annotation", "adios2"): _ANNOT_WORST_ADIOS2,
    ("annotation", "henson"): _ANNOT_WORST_HENSON,
    ("annotation", "pycompss"): _ANNOT_WORST_PYCOMPSS,
    ("annotation", "parsl"): _ANNOT_WORST_PARSL,
    ("translation", ("henson", "adios2")): _TRANS_WORST_TO_ADIOS2,
    ("translation", ("adios2", "henson")): TABLE4_LLAMA,
    ("translation", ("parsl", "pycompss")): _TRANS_WORST_TO_PYCOMPSS,
    ("translation", ("pycompss", "parsl")): _TRANS_WORST_TO_PARSL,
}


def worst_case(experiment: str, system_key) -> str:
    """The confused artifact anchoring the bottom of this cell's curve."""
    return _WORST_CASES[(experiment, system_key)]


# ---------------------------------------------------------------------------
# generic failure knowledge shared by all models (model profiles merge
# their personal fingerprints on top of these)
# ---------------------------------------------------------------------------

_GENERIC: dict[tuple, SystemKnowledge] = {
    ("configuration", "adios2"): SystemKnowledge(
        renames={"SimulationOutput": "SimOutput", "GridInput": "Consumer1Input",
                 "ParticlesInput": "Consumer2Input"},
        inserts=(
            ("QueueLimit", '<parameter key="DataTransport" value="RDMA"/>'),
            ("adios-config", '<!-- generated configuration -->'),
        ),
        drops=('<parameter key="QueueLimit" value="1"/>',),
    ),
    ("configuration", "henson"): SystemKnowledge(
        confusions={"procs": "processes"},
        renames={"producer": "simulation", "consumer1": "analysis1",
                 "consumer2": "analysis2"},
        inserts=(("", "world = producer consumer1 consumer2"),),
        drops=("# 3-node workflow",),
    ),
    ("configuration", "wilkins"): SystemKnowledge(
        confusions={"inports": "inputs", "outports": "outputs",
                    "func": "command", "nprocs": "processes"},
        renames={"outfile.h5": "workflow_data.h5"},
        inserts=(("tasks:", "# Wilkins workflow configuration"),),
    ),
    ("annotation", "adios2"): SystemKnowledge(
        confusions={"adios2_put": "adios2_write", "adios2_begin_step": "adios2_start_step",
                    "adios2_declare_io": "adios2_create_io"},
        renames={"SimulationOutput": "writer", "var_array": "varArray", "var_t": "varT"},
        drops=('adios2_put(engine, var_t, &t, adios2_mode_sync);',),
        inserts=(("adios2_open", 'adios2_set_engine(io, "BPFile");'),),
    ),
    ("annotation", "henson"): SystemKnowledge(
        confusions={"henson_save_int": "henson_put",
                    "henson_save_array": "henson_declare_variable"},
        drops=("henson_yield();",),
        renames={"array": "data"},
    ),
    ("annotation", "pycompss"): SystemKnowledge(
        confusions={"compss_wait_on_file": "compss_wait_file"},
        drops=("compss_wait_on_file",),
        renames={"simulate_step": "produce_step", "fname": "filename"},
    ),
    ("annotation", "parsl"): SystemKnowledge(
        inserts=(
            ("import parsl", "from parsl.executors import HighThroughputExecutor"),
            ("parsl.load()",
             "config = Config(executors=[HighThroughputExecutor(label='htex')])"),
        ),
        confusions={"python_app": "parsl_app"},
        renames={"simulate_step": "produce_step"},
    ),
    ("translation", ("henson", "adios2")): SystemKnowledge(
        confusions={"adios2_put": "adios2_write", "adios2_end_step": "adios2_commit_step"},
        renames={"SimulationOutput": "writer", "var_array": "varArray", "var_t": "varT"},
        drops=("adios2_finalize(adios);",),
    ),
    ("translation", ("adios2", "henson")): SystemKnowledge(
        confusions={"henson_save_array": "henson_save", "henson_save_int": "henson_put_int"},
        drops=("henson_yield();",),
        renames={"array": "data"},
    ),
    ("translation", ("parsl", "pycompss")): SystemKnowledge(
        confusions={"compss_wait_on_file": "compss_wait_file"},
        drops=("compss_wait_on_file",),
        renames={"simulate_step": "produce_step", "fname": "filename"},
    ),
    ("translation", ("pycompss", "parsl")): SystemKnowledge(
        inserts=(
            ("import parsl", "from parsl.executors import ThreadPoolExecutor"),
            ("parsl.load()",
             "config = Config(executors=[ThreadPoolExecutor(max_threads=8)])"),
        ),
        confusions={"python_app": "parsl_app"},
        renames={"simulate_step": "produce_step"},
    ),
}


def generic_knowledge(experiment: str, system_key) -> SystemKnowledge:
    """Shared failure fingerprint for one cell (empty if none defined)."""
    return _GENERIC.get((experiment, system_key), SystemKnowledge())


def merge_knowledge(base: SystemKnowledge, extra: SystemKnowledge) -> SystemKnowledge:
    """Overlay ``extra`` (model-specific) on ``base`` (generic)."""
    return SystemKnowledge(
        confusions={**dict(base.confusions), **dict(extra.confusions)},
        drops=tuple(dict.fromkeys([*base.drops, *extra.drops])),
        inserts=tuple(dict.fromkeys([*base.inserts, *extra.inserts])),
        renames={**dict(base.renames), **dict(extra.renames)},
        worst_case=extra.worst_case or base.worst_case,
    )
