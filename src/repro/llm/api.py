"""Model protocol and registry.

``get_model("sim/o3")`` returns a :class:`Model` wrapper around whichever
provider is registered under that name.  The four simulated paper models
self-register on import of :mod:`repro.llm.profiles`; a user evaluating a
real endpoint registers their own provider factory under a new name and
everything downstream (solvers, scorers, benches) works unchanged.
"""

from __future__ import annotations

import threading
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ModelError, UnknownModelError
from repro.llm.types import ChatMessage, GenerateConfig, ModelOutput


@runtime_checkable
class ModelAPI(Protocol):
    """What a provider must implement."""

    name: str

    def generate(
        self, messages: Sequence[ChatMessage], config: GenerateConfig
    ) -> ModelOutput:  # pragma: no cover - protocol
        ...


class Model:
    """Thin convenience wrapper over a provider."""

    def __init__(self, provider: ModelAPI) -> None:
        self._provider = provider

    @property
    def name(self) -> str:
        return self._provider.name

    def generate(
        self,
        input: str | Sequence[ChatMessage],
        config: GenerateConfig | None = None,
    ) -> ModelOutput:
        """Generate from a plain prompt string or a full message list."""
        if isinstance(input, str):
            messages: Sequence[ChatMessage] = [ChatMessage.user(input)]
        else:
            messages = list(input)
        return self._provider.generate(messages, config or GenerateConfig())

    @property
    def provider(self) -> ModelAPI:
        return self._provider

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Model({self.name!r})"


_registry: dict[str, Callable[[], ModelAPI]] = {}
_instances: dict[str, ModelAPI] = {}
_lock = threading.Lock()


def register_model(name: str, factory: Callable[[], ModelAPI]) -> None:
    """Register a provider factory under ``name`` (idempotent overwrite)."""
    with _lock:
        _registry[name] = factory
        _instances.pop(name, None)


def register_instance(provider: ModelAPI) -> None:
    """Register a live provider under its own name (idempotent for the
    same instance).

    Lets a caller hand an unregistered provider instance to the harness
    (``evaluate(task, Model(MyProvider()))``): the runtime resolves
    models by name, so the instance must be reachable through the
    registry.  A name already bound to a *different* provider raises
    :class:`~repro.errors.ModelError` instead of silently rerouting
    every existing reference to that name.
    """
    _ensure_builtin_models()
    with _lock:
        if provider.name in _registry:
            current = _instances.get(provider.name)
            if current is None:
                current = _instances[provider.name] = _registry[provider.name]()
            if current is not provider:
                raise ModelError(
                    f"model name {provider.name!r} is already registered to a "
                    "different provider; pick a unique name or use "
                    "register_model() to overwrite explicitly"
                )
            return
        _registry[provider.name] = lambda: provider
        _instances[provider.name] = provider


def get_model(name: str) -> Model:
    """Instantiate (once) and return the model registered under ``name``."""
    _ensure_builtin_models()
    with _lock:
        if name not in _registry:
            raise UnknownModelError(
                f"unknown model {name!r}; registered: {sorted(_registry)}"
            )
        if name not in _instances:
            _instances[name] = _registry[name]()
        return Model(_instances[name])


def list_models() -> list[str]:
    """Names of all registered models."""
    _ensure_builtin_models()
    with _lock:
        return sorted(_registry)


def _ensure_builtin_models() -> None:
    # profile import self-registers the four simulated paper models
    import repro.llm.profiles  # noqa: F401
