"""Model protocols (sync, async, batched) and the provider registry.

``get_model("sim/o3")`` returns a :class:`Model` wrapper around whichever
provider is registered under that name.  The four simulated paper models
self-register on import of :mod:`repro.llm.profiles`; a user evaluating a
real endpoint registers their own provider factory under a new name and
everything downstream (solvers, scorers, benches) works unchanged.

Beyond the required sync :meth:`ModelAPI.generate`, providers may opt
into two richer call surfaces the runtime exploits:

* **async** — implement :class:`AsyncModelAPI` (an ``agenerate``
  coroutine) and :class:`~repro.runtime.executors.AsyncExecutor` drives
  the provider on its event loop directly; any plain sync provider is
  adapted automatically by :func:`as_async`, which offloads each call to
  a worker thread so the loop keeps multiplexing;
* **batched** — implement ``generate_batch(requests)`` (one provider
  round-trip for a whole group of prompts) and
  :class:`~repro.runtime.batching.BatchingExecutor` issues one call per
  model instead of one per unit.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ModelError, UnknownModelError
from repro.llm.types import BatchRequest, ChatMessage, GenerateConfig, ModelOutput


@runtime_checkable
class ModelAPI(Protocol):
    """What a provider must implement.

    Providers *may* additionally expose
    ``generate_batch(requests: Sequence[BatchRequest]) -> list[ModelOutput]``
    returning one output per request, in request order; the batching
    runtime uses it when present and falls back to per-request
    ``generate`` otherwise.
    """

    name: str

    def generate(
        self, messages: Sequence[ChatMessage], config: GenerateConfig
    ) -> ModelOutput:  # pragma: no cover - protocol
        ...


@runtime_checkable
class AsyncModelAPI(Protocol):
    """An async-native provider: ``agenerate`` runs on the event loop."""

    name: str

    async def agenerate(
        self, messages: Sequence[ChatMessage], config: GenerateConfig
    ) -> ModelOutput:  # pragma: no cover - protocol
        ...


class AsyncAdapter:
    """Default :class:`AsyncModelAPI` over any sync provider.

    Each ``agenerate`` call offloads the provider's blocking ``generate``
    to a worker thread, so an event loop can keep many calls in flight
    even against a purely synchronous SDK.  Threads come from
    ``executor`` when given (lets a caller reuse one pool across many
    event loops — :class:`~repro.runtime.executors.AsyncExecutor` does),
    else from the loop's default executor (``asyncio.to_thread``).
    """

    def __init__(
        self,
        provider: ModelAPI,
        executor: "concurrent.futures.Executor | None" = None,
    ) -> None:
        self._provider = provider
        self._executor = executor
        self.name = provider.name

    async def agenerate(
        self, messages: Sequence[ChatMessage], config: GenerateConfig
    ) -> ModelOutput:
        if self._executor is None:
            return await asyncio.to_thread(
                self._provider.generate, messages, config
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._provider.generate, messages, config
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsyncAdapter({self._provider!r})"


def as_async(
    provider: ModelAPI | AsyncModelAPI,
    executor: "concurrent.futures.Executor | None" = None,
) -> AsyncModelAPI:
    """The provider itself if async-native, else an :class:`AsyncAdapter`."""
    if callable(getattr(provider, "agenerate", None)):
        return provider
    return AsyncAdapter(provider, executor)


class Model:
    """Thin convenience wrapper over a provider."""

    def __init__(self, provider: ModelAPI) -> None:
        self._provider = provider

    @property
    def name(self) -> str:
        return self._provider.name

    def generate(
        self,
        input: str | Sequence[ChatMessage],
        config: GenerateConfig | None = None,
    ) -> ModelOutput:
        """Generate from a plain prompt string or a full message list."""
        if isinstance(input, str):
            messages: Sequence[ChatMessage] = [ChatMessage.user(input)]
        else:
            messages = list(input)
        return self._provider.generate(messages, config or GenerateConfig())

    def generate_batch(
        self,
        inputs: Sequence[tuple[str | Sequence[ChatMessage], GenerateConfig | None]],
    ) -> list[ModelOutput]:
        """Batched generation: one provider round-trip when supported.

        ``inputs`` is a sequence of ``(input, config)`` pairs accepting
        the same input forms as :meth:`generate`.  Providers exposing
        ``generate_batch`` get the whole group in one call; others are
        driven per-request, so callers never need to feature-test.
        """
        requests: list[BatchRequest] = []
        for input, config in inputs:
            if isinstance(input, str):
                messages: Sequence[ChatMessage] = [ChatMessage.user(input)]
            else:
                messages = list(input)
            requests.append((messages, config or GenerateConfig()))
        batch = getattr(self._provider, "generate_batch", None)
        if callable(batch):
            outputs = list(batch(requests))
            if len(outputs) != len(requests):
                raise ModelError(
                    f"{self.name}: generate_batch returned {len(outputs)} "
                    f"outputs for {len(requests)} requests"
                )
            return outputs
        return [self._provider.generate(m, c) for m, c in requests]

    @property
    def provider(self) -> ModelAPI:
        return self._provider

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Model({self.name!r})"


_registry: dict[str, Callable[[], ModelAPI]] = {}
_instances: dict[str, ModelAPI] = {}
_lock = threading.Lock()


def register_model(name: str, factory: Callable[[], ModelAPI]) -> None:
    """Register a provider factory under ``name`` (idempotent overwrite)."""
    with _lock:
        _registry[name] = factory
        _instances.pop(name, None)


def register_instance(provider: ModelAPI) -> None:
    """Register a live provider under its own name (idempotent for the
    same instance).

    Lets a caller hand an unregistered provider instance to the harness
    (``evaluate(task, Model(MyProvider()))``): the runtime resolves
    models by name, so the instance must be reachable through the
    registry.  A name already bound to a *different* provider raises
    :class:`~repro.errors.ModelError` instead of silently rerouting
    every existing reference to that name.
    """
    _ensure_builtin_models()
    with _lock:
        if provider.name in _registry:
            current = _instances.get(provider.name)
            if current is None:
                current = _instances[provider.name] = _registry[provider.name]()
            if current is not provider:
                raise ModelError(
                    f"model name {provider.name!r} is already registered to a "
                    "different provider; pick a unique name or use "
                    "register_model() to overwrite explicitly"
                )
            return
        _registry[provider.name] = lambda: provider
        _instances[provider.name] = provider


def get_model(name: str) -> Model:
    """Instantiate (once) and return the model registered under ``name``."""
    _ensure_builtin_models()
    with _lock:
        if name not in _registry:
            raise UnknownModelError(
                f"unknown model {name!r}; registered: {sorted(_registry)}"
            )
        if name not in _instances:
            _instances[name] = _registry[name]()
        return Model(_instances[name])


def list_models() -> list[str]:
    """Names of all registered models."""
    _ensure_builtin_models()
    with _lock:
        return sorted(_registry)


def _ensure_builtin_models() -> None:
    # profile import self-registers the four simulated paper models
    import repro.llm.profiles  # noqa: F401
