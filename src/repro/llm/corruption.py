"""Corruption operators: how the simulator degrades a reference artifact.

The generation model: start from the ground-truth artifact and apply a
prefix of an ordered operator sequence.  Operators are grouped in
severity bands, mild → severe:

* **band 1** — benign drift: identifier renames, spurious comments
  (always available, any artifact format);
* **band 2** — the model's failure fingerprint: redundant insertions,
  API/field hallucinations, omissions of required calls (with a bias
  knob promoting insertions when the paper shows ChrF ≫ BLEU for the
  cell);
* **band 3** — *morphs*: line-by-line blending of the artifact toward
  the model's worst-case output, giving a smooth, format-agnostic
  quality descent;
* **band 4** — restructure: emit the worst-case artifact outright (task
  code instead of a config, an ADIOS2-shaped Henson API, ...).

"Apply the first k" sweeps the quality scale from the perfect artifact
(k=0) to total confusion; calibration picks k to hit a target BLEU, and
per-epoch jitter perturbs k and the within-band order to produce
trial-to-trial variance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.llm.knowledge import SystemKnowledge
from repro.utils.rng import rng_for


@dataclass(frozen=True)
class CorruptionOp:
    """One textual degradation step."""

    kind: str  # rename | comment | insert | drop | confuse | morph | restructure
    band: int  # severity band; ops apply in band order
    describe: str
    apply: Callable[[list[str]], list[str]]


def _replace_word(lines: list[str], old: str, new: str) -> list[str]:
    pattern = re.compile(rf"\b{re.escape(old)}\b")
    return [pattern.sub(new, ln) for ln in lines]


def _drop_anchor(lines: list[str], anchor: str) -> list[str]:
    for i, ln in enumerate(lines):
        if anchor in ln:
            return lines[:i] + lines[i + 1 :]
    return lines


def _insert_after(lines: list[str], anchor: str, new_line: str) -> list[str]:
    if not anchor:
        return lines + [new_line]
    for i, ln in enumerate(lines):
        if anchor in ln:
            indent = ln[: len(ln) - len(ln.lstrip())]
            return lines[: i + 1] + [indent + new_line.lstrip()] + lines[i + 1 :]
    return lines + [new_line]


def _comment_markers(reference: str) -> tuple[str, str]:
    """(prefix, suffix) of a line comment in the artifact's language."""
    if reference.lstrip().startswith("<?xml") or "</" in reference:
        return "<!-- ", " -->"
    if "#include" in reference or "int main" in reference:
        return "/* ", " */"
    return "# ", ""


_COMMENT_TEXTS = (
    "generated configuration",
    "workflow definition",
    "data requirements",
    "produced automatically",
    "simulation output",
    "analysis input",
)


def _append_comment(lines: list[str], slot: int, text: str, pre: str, suf: str) -> list[str]:
    real = [i for i, ln in enumerate(lines) if ln.strip()]
    if not real:
        return lines
    i = real[slot % len(real)]
    out = list(lines)
    out.insert(i, pre + text + suf)
    return out


def _morph_line(lines: list[str], fraction: float, worst_lines: list[str]) -> list[str]:
    """Replace the line at relative position ``fraction`` with the
    corresponding worst-case line (gradual artifact decay)."""
    if not lines or not worst_lines:
        return lines
    i = min(int(round(fraction * (len(lines) - 1))), len(lines) - 1)
    j = min(int(round(fraction * (len(worst_lines) - 1))), len(worst_lines) - 1)
    out = list(lines)
    out[i] = worst_lines[j]
    return out


_DECAY_RENAMES = {
    "array": "buf",
    "sum": "local_sum",
    "total_sum": "global_total",
    "rank": "world_rank",
    "size": "world_size",
    "iterations": "num_steps",
    "sleep_interval": "delay_s",
    "n": "count",
    "t": "step",
    "producer": "writer_task",
    "consumer1": "reader_a",
    "consumer2": "reader_b",
    "grid": "mesh",
    "particles": "points",
    "printf": "fprintf",
    "malloc": "calloc",
    "float": "double",
    "main": "run_task",
    "MPI_COMM_WORLD": "world_comm",
    "MPI_Reduce": "MPI_Allreduce",
    "simulate_step": "do_step",
    "np": "numpy",
}


def _delete_line_at(lines: list[str], fraction: float) -> list[str]:
    """Delete the line at relative position ``fraction`` (keeps >= 3 lines)."""
    real = [i for i, ln in enumerate(lines) if ln.strip()]
    if len(real) <= 3:
        return lines
    i = real[min(int(round(fraction * (len(real) - 1))), len(real) - 1)]
    return lines[:i] + lines[i + 1 :]


def _collapse_tail(lines: list[str], fraction: float, worst_lines: list[str]) -> list[str]:
    """Replace the trailing ``fraction`` of the artifact with the trailing
    ``fraction`` of the worst case (late-stage structural collapse)."""
    if not lines or not worst_lines:
        return lines
    keep = max(0, int(round(len(lines) * (1.0 - fraction))))
    tail_from = max(0, int(round(len(worst_lines) * (1.0 - fraction))))
    return lines[:keep] + worst_lines[tail_from:]


def build_ops(
    reference: str,
    knowledge: SystemKnowledge,
    *,
    chrf_bias: float = 0.0,
    seed_labels: tuple = (),
) -> list[CorruptionOp]:
    """Construct the ordered operator sequence for one experiment cell.

    ``chrf_bias`` is (paper ChrF − paper BLEU): positive values mean the
    model's errors hurt BLEU more than ChrF (redundant insertions, word
    order), so insert ops are promoted ahead of drops and confusions.
    """
    ops: list[CorruptionOp] = []
    pre, suf = _comment_markers(reference)
    n_lines = max(1, sum(1 for ln in reference.split("\n") if ln.strip()))

    # --- band 1: benign drift (comments first: each is a ~1-2 point step,
    # giving fine granularity near the top of the curve) ---------------------
    n_comments = max(3, n_lines // 4)
    rng = rng_for("comment-slots", *seed_labels)
    slots = rng.permutation(n_lines)[:n_comments]
    for idx, slot in enumerate(slots):
        text = _COMMENT_TEXTS[idx % len(_COMMENT_TEXTS)]
        ops.append(
            CorruptionOp(
                "comment", 1, f"spurious comment at slot {int(slot)}",
                lambda lines, s=int(slot), t=text: _append_comment(lines, s, t, pre, suf),
            )
        )
    for old, new in knowledge.renames.items():
        if re.search(rf"\b{re.escape(old)}\b", reference):
            ops.append(
                CorruptionOp(
                    "rename", 1, f"rename {old} -> {new}",
                    lambda lines, o=old, n=new: _replace_word(lines, o, n),
                )
            )

    # --- band 2: failure fingerprint -------------------------------------------
    band2: list[CorruptionOp] = []
    for anchor, new_line in knowledge.inserts:
        band2.append(
            CorruptionOp(
                "insert", 2, f"insert {new_line!r}",
                lambda lines, a=anchor, nl=new_line: _insert_after(lines, a, nl),
            )
        )
    rest: list[CorruptionOp] = []
    for old, new in knowledge.confusions.items():
        if re.search(rf"\b{re.escape(old)}\b", reference):
            rest.append(
                CorruptionOp(
                    "confuse", 2, f"hallucinate {old} -> {new}",
                    lambda lines, o=old, n=new: _replace_word(lines, o, n),
                )
            )
    for anchor in knowledge.drops:
        if anchor in reference:
            rest.append(
                CorruptionOp(
                    "drop", 2, f"omit line containing {anchor!r}",
                    lambda lines, a=anchor: _drop_anchor(lines, a),
                )
            )
    # ChrF-tolerant errors (insertions) first when the paper shows a gap
    ops.extend(band2 + rest if chrf_bias > 5 else rest + band2)

    # --- bands 3-4: descent into the worst case ------------------------------------
    if knowledge.worst_case is not None:
        worst_lines = knowledge.worst_case.split("\n")
        n_morphs = max(len(worst_lines), n_lines, 16)
        morph_rng = rng_for("morph-order", *seed_labels)
        # two passes: the second uses offset alignment so repeated morphs of
        # the same position land a *different* worst-case line, pushing the
        # morph floor further down before structural collapse takes over
        fractions = list(morph_rng.permutation(n_morphs) / max(1, n_morphs - 1))
        fractions += [(f + 0.37) % 1.0 for f in fractions[: n_morphs // 2]]
        fractions += [(f + 0.73) % 1.0 for f in fractions[: n_morphs // 2]]
        for f in fractions:
            ops.append(
                CorruptionOp(
                    "morph", 3, f"morph line at {float(f):.2f}",
                    lambda lines, fr=float(f), wl=worst_lines: _morph_line(lines, fr, wl),
                )
            )
        # band 4: structural collapse of growing fractions of the artifact,
        # ending in the worst case outright.  Applied in fixed order (no
        # epoch shuffling for bands >= 4: see shuffle_within_bands) so the
        # descent stays controlled.
        for f in (i / 24.0 for i in range(1, 24)):
            ops.append(
                CorruptionOp(
                    "collapse", 4, f"collapse tail fraction {f:.2f}",
                    lambda lines, fr=f, wl=worst_lines: _collapse_tail(lines, fr, wl),
                )
            )
        ops.append(
            CorruptionOp(
                "restructure", 5, "emit worst-case artifact",
                lambda _lines, wl=worst_lines: list(wl),
            )
        )

        # band 6: deep decay.  Worst-case artifacts still share simulation
        # boilerplate with the reference (both descend from the same base
        # producer), which floors BLEU around 40-55 for code artifacts.
        # Aggressive identifier drift plus line deletions push the floor
        # toward zero so very low paper scores are reachable.
        for old, new in _DECAY_RENAMES.items():
            ops.append(
                CorruptionOp(
                    "decay-rename", 6, f"decay rename {old} -> {new}",
                    lambda lines, o=old, n=new: _replace_word(lines, o, n),
                )
            )
        decay_rng = rng_for("decay-order", *seed_labels)
        deletions = list(decay_rng.permutation(24) / 23.0)
        deletions += list(decay_rng.permutation(24) / 23.0)
        for f in deletions:
            ops.append(
                CorruptionOp(
                    "decay-delete", 6, f"delete line at {float(f):.2f}",
                    lambda lines, fr=float(f): _delete_line_at(lines, fr),
                )
            )

    ops.sort(key=lambda op: op.band)
    return ops


def apply_ops(reference: str, ops: list[CorruptionOp], k: int) -> str:
    """Apply the first ``k`` operators to the reference text."""
    lines = reference.split("\n")
    for op in ops[: max(0, min(k, len(ops)))]:
        lines = op.apply(lines)
    return "\n".join(lines)


def shuffle_within_bands(
    ops: list[CorruptionOp], rng: np.random.Generator
) -> list[CorruptionOp]:
    """Permute operators inside each severity band (epoch-to-epoch variety).

    Bands 4+ (structural collapse / restructure) keep their fixed order:
    their steps are individually huge, so reordering them would swing a
    trial by tens of points rather than the paper-scale 1-3.
    """
    out: list[CorruptionOp] = []
    i = 0
    while i < len(ops):
        j = i
        while j < len(ops) and ops[j].band == ops[i].band:
            j += 1
        band = ops[i:j]
        if ops[i].band >= 4:
            out.extend(band)
        else:
            order = rng.permutation(len(band))
            out.extend(band[int(x)] for x in order)
        i = j
    return out
