"""Prompt analysis: recover the experiment cell from raw prompt text.

A real model conditions on nothing but the prompt; the simulator obeys
the same constraint.  :func:`analyze_prompt` classifies the experiment
(configuration / annotation / translation), the workflow system(s), the
prompt-variant phrasing (via the template markers), and whether a
few-shot example is attached — using only the text it is given.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.data.prompts import TEMPLATES_BY_EXPERIMENT
from repro.errors import GenerationError

_SYSTEM_PATTERNS: dict[str, re.Pattern[str]] = {
    "adios2": re.compile(r"\badios2?\b", re.IGNORECASE),
    "henson": re.compile(r"\bhenson\b", re.IGNORECASE),
    "parsl": re.compile(r"\bparsl\b", re.IGNORECASE),
    "pycompss": re.compile(r"\bpycompss\b", re.IGNORECASE),
    "wilkins": re.compile(r"\bwilkins\b", re.IGNORECASE),
}

_TRANSLATE_WORDS = re.compile(
    r"\b(translate|convert|rewrite it to work|runs under the)\b", re.IGNORECASE
)
_ANNOTATE_WORDS = re.compile(r"\bannotat(e|ions|ed)\b", re.IGNORECASE)
_CONFIG_WORDS = re.compile(r"\bconfiguration file\b", re.IGNORECASE)
_FEWSHOT_MARK = re.compile(r"example configuration file", re.IGNORECASE)
_DOCCONTEXT_MARK = re.compile(r"documentation excerpt for", re.IGNORECASE)

# patterns whose first group captures the translation *target* system
_TARGET_PATTERNS = [
    re.compile(r"to use(?: it with)? the ([A-Za-z0-9]+) system", re.IGNORECASE),
    re.compile(r"into code for the ([A-Za-z0-9]+) workflow system", re.IGNORECASE),
    re.compile(r"runs under the ([A-Za-z0-9]+) workflow system", re.IGNORECASE),
    re.compile(r"work with the ([A-Za-z0-9]+) system", re.IGNORECASE),
]


@dataclass(frozen=True)
class Intent:
    """The recovered experiment cell."""

    experiment: str  # configuration | annotation | translation
    system: str | None = None  # for configuration/annotation
    source: str | None = None  # for translation
    target: str | None = None  # for translation
    variant: str = "original"
    fewshot: bool = False
    doccontext: bool = False  # RAG-lite: documentation snippet in prompt

    @property
    def cell_system(self):
        """System key used for score lookup (pair for translation)."""
        if self.experiment == "translation":
            return (self.source, self.target)
        return self.system


def _mentioned_systems(text: str) -> list[str]:
    found: list[tuple[int, str]] = []
    for name, pattern in _SYSTEM_PATTERNS.items():
        m = pattern.search(text)
        if m:
            found.append((m.start(), name))
    return [name for _pos, name in sorted(found)]


def _canonical_system(raw: str) -> str | None:
    raw = raw.lower()
    for name, pattern in _SYSTEM_PATTERNS.items():
        if pattern.fullmatch(raw) or pattern.search(raw):
            return name
    return None


def _detect_variant(text: str, experiment: str) -> str:
    for variant, template in TEMPLATES_BY_EXPERIMENT[experiment].items():
        if template.marker in text:
            return variant
    return "original"


def analyze_prompt(text: str) -> Intent:
    """Classify a prompt; raises :class:`GenerationError` when it cannot.

    Classification precedence mirrors prompt structure: translation words
    are checked first (translation prompts embed annotated code and may
    mention "annotated"), then annotation, then configuration.
    """
    systems = _mentioned_systems(text)
    if not systems:
        raise GenerationError(
            "prompt mentions no known workflow system "
            "(ADIOS2/Henson/Parsl/PyCOMPSs/Wilkins)"
        )

    if _TRANSLATE_WORDS.search(text):
        target = None
        for pattern in _TARGET_PATTERNS:
            m = pattern.search(text)
            if m:
                target = _canonical_system(m.group(1))
                if target:
                    break
        if target is None:
            # fall back: the target is the system mentioned closest to the
            # word "translate"/"convert"
            target = systems[-1]
        sources = [s for s in systems if s != target]
        if not sources:
            raise GenerationError(
                f"translation prompt mentions only the target system {target!r}"
            )
        variant = _detect_variant(text, "translation")
        return Intent(
            "translation", source=sources[0], target=target, variant=variant
        )

    if _ANNOTATE_WORDS.search(text):
        variant = _detect_variant(text, "annotation")
        return Intent("annotation", system=systems[0], variant=variant)

    if _CONFIG_WORDS.search(text):
        variant = _detect_variant(text, "configuration")
        fewshot = bool(_FEWSHOT_MARK.search(text))
        doccontext = bool(_DOCCONTEXT_MARK.search(text))
        return Intent(
            "configuration", system=systems[0], variant=variant,
            fewshot=fewshot, doccontext=doccontext,
        )

    raise GenerationError(
        "prompt does not look like a configuration, annotation, or "
        "translation request"
    )
