"""Chat-completion data types (SDK-shaped).

These mirror the common denominator of the OpenAI/Anthropic/Google SDKs
so that the harness code is provider-agnostic: messages in, one or more
choices out, token usage accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

Role = Literal["system", "user", "assistant"]


@dataclass(frozen=True)
class ChatMessage:
    """One turn of a chat conversation."""

    role: Role
    content: str

    @staticmethod
    def user(content: str) -> "ChatMessage":
        return ChatMessage("user", content)

    @staticmethod
    def system(content: str) -> "ChatMessage":
        return ChatMessage("system", content)

    @staticmethod
    def assistant(content: str) -> "ChatMessage":
        return ChatMessage("assistant", content)


@dataclass(frozen=True)
class GenerateConfig:
    """Decoding parameters.

    The paper sets ``temperature=0.2`` and ``top_p=0.95`` for all models
    except o3 (whose API exposes neither); providers that ignore sampling
    parameters record that in the output's ``params_applied`` flag.
    ``seed`` selects the trial (epoch) for reproducible repetition.
    """

    temperature: float = 0.2
    top_p: float = 0.95
    max_tokens: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if not 0 < self.top_p <= 1:
            raise ValueError(f"top_p must be in (0, 1], got {self.top_p}")
        if self.max_tokens <= 0:
            raise ValueError(f"max_tokens must be positive, got {self.max_tokens}")


@dataclass(frozen=True)
class ModelUsage:
    """Token accounting for one generation."""

    input_tokens: int
    output_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    def as_dict(self) -> dict[str, int]:
        """JSON-ready form (used by the durable record codec)."""
        return {
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
        }

    @staticmethod
    def from_dict(payload: dict[str, int]) -> "ModelUsage":
        return ModelUsage(
            input_tokens=payload["input_tokens"],
            output_tokens=payload["output_tokens"],
        )


# one request of a batched generation call: (messages, decoding config)
BatchRequest = tuple[Sequence["ChatMessage"], "GenerateConfig"]


@dataclass
class ModelOutput:
    """One model response."""

    model: str
    completion: str
    usage: ModelUsage
    stop_reason: str = "stop"
    params_applied: bool = True  # False when the provider ignores temperature/top_p
    metadata: dict = field(default_factory=dict)
