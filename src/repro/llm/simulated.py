"""The offline model provider.

Generation pipeline (the same code path a real provider would sit behind):

1. concatenate the user messages and recover the experiment cell from the
   prompt text alone (:func:`repro.llm.intent.analyze_prompt`);
2. fetch the ground-truth artifact for that cell and build the
   cell-specific corruption-operator sequence from the model's knowledge
   profile;
3. calibrate the corruption depth ``k*`` against the profile's target
   score (cached per cell — this is the model's "competence");
4. per trial: derive an RNG from (model, cell, seed), sample jitter and a
   within-band operator shuffle using real temperature/top_p decoding
   math (deterministic when temperature is 0 or the model's jitter scale
   is 0, as with Claude), and apply ``k* + jitter`` operators;
5. wrap the artifact in model-styled chatter + a markdown fence, account
   tokens, and return a :class:`~repro.llm.types.ModelOutput`.

Few-shot prompts raise the effective competence target (step 3 uses the
few-shot calibration table) and suppress the worst-case/hallucination
operators — providing an example config demonstrably prevents inventing
fields, which is the paper's §4.5 finding.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import NamedTuple, Sequence

from repro.core.assets import annotated_producer, reference_config
from repro.errors import GenerationError
from repro.llm import tokenizer
from repro.llm.calibration import (
    CalibrationResult,
    QualityCurve,
    calibrate,
    local_recalibrate,
)
from repro.llm.corruption import (
    CorruptionOp,
    build_ops,
    shuffle_within_bands,
)
from repro.llm.intent import Intent, analyze_prompt
from repro.llm.knowledge import ModelProfile
from repro.llm.sampling import sample_jitter
from repro.llm.types import (
    BatchRequest,
    ChatMessage,
    GenerateConfig,
    ModelOutput,
    ModelUsage,
)
from repro.metrics.compiled import CompiledReference, compile_reference
from repro.utils.rng import rng_for


class CalibratedCell(NamedTuple):
    """Everything one experiment cell computes exactly once.

    The compiled reference and the calibration-pass quality curve travel
    with the cell so later generations never re-tokenize the reference
    (every trial's recalibration scores against ``compiled``) and the
    deterministic path never re-applies operators (``curve.text(k)``
    returns the memoized prefix).
    """

    ops: list[CorruptionOp]
    calib: CalibrationResult
    curve: QualityCurve
    compiled: CompiledReference


class SimulatedModel:
    """A behavioural simulator behind the ModelAPI protocol."""

    def __init__(self, profile: ModelProfile) -> None:
        self.profile = profile
        self.name = f"sim/{profile.name}"
        self._lock = threading.Lock()
        # key -> Future so concurrent callers of the same cell compute once
        self._cell_cache: dict[tuple, Future[CalibratedCell]] = {}

    # -- ModelAPI ------------------------------------------------------------

    def generate(
        self, messages: Sequence[ChatMessage], config: GenerateConfig
    ) -> ModelOutput:
        prompt = self._prompt_of(messages)
        intent = analyze_prompt(prompt)
        return self._complete(prompt, intent, config)

    def generate_batch(
        self, requests: Sequence[BatchRequest]
    ) -> list[ModelOutput]:
        """Native batched generation (one "round-trip" for the group).

        The batch amortizes per-request overhead the way a real batching
        endpoint amortizes the network round-trip: each distinct prompt
        is intent-analyzed once for the whole group (per-cell
        calibration is already memoized by :meth:`_cell`).  Outputs are
        bit-identical to per-request :meth:`generate` calls.
        """
        prepared: list[tuple[str, Intent, GenerateConfig]] = []
        intents: dict[str, Intent] = {}
        for messages, config in requests:
            prompt = self._prompt_of(messages)
            intent = intents.get(prompt)
            if intent is None:
                intent = intents[prompt] = analyze_prompt(prompt)
            prepared.append((prompt, intent, config))
        return [
            self._complete(prompt, intent, config)
            for prompt, intent, config in prepared
        ]

    def _prompt_of(self, messages: Sequence[ChatMessage]) -> str:
        prompt = "\n\n".join(m.content for m in messages if m.role != "assistant")
        if not prompt.strip():
            raise GenerationError(f"{self.name}: empty prompt")
        return prompt

    def _complete(
        self, prompt: str, intent: Intent, config: GenerateConfig
    ) -> ModelOutput:
        payload = self._generate_payload(intent, config)
        completion = self._decorate(payload, intent, config)
        usage = ModelUsage(
            input_tokens=tokenizer.count_tokens(prompt),
            output_tokens=tokenizer.count_tokens(completion),
        )
        return ModelOutput(
            model=self.name,
            completion=completion,
            usage=usage,
            stop_reason="stop",
            params_applied=not self.profile.ignore_sampling_params,
            metadata={"intent": intent},
        )

    # -- internals ---------------------------------------------------------------

    def reference_for(self, intent: Intent) -> str:
        """Ground-truth artifact for an experiment cell."""
        if intent.experiment == "configuration":
            return reference_config(intent.system)
        if intent.experiment == "annotation":
            return annotated_producer(intent.system)
        if intent.experiment == "translation":
            return annotated_producer(intent.target)
        raise GenerationError(f"unknown experiment {intent.experiment!r}")

    @staticmethod
    def _cell_key(intent: Intent) -> tuple:
        return (
            intent.experiment,
            intent.cell_system,
            intent.variant,
            intent.fewshot,
            intent.doccontext,
        )

    def _cell(self, intent: Intent) -> CalibratedCell:
        key = self._cell_key(intent)
        # publish a Future under the lock before computing, so concurrent
        # callers of the same cell wait for one calibration instead of
        # duplicating it (calibration is the expensive step)
        with self._lock:
            future = self._cell_cache.get(key)
            if future is not None:
                owned = False
            else:
                future = self._cell_cache[key] = Future()
                owned = True
        if not owned:
            return future.result()
        try:
            cell = self._calibrate_cell(intent, key)
        except BaseException as exc:
            with self._lock:
                self._cell_cache.pop(key, None)
            future.set_exception(exc)
            raise
        future.set_result(cell)
        return cell

    def _calibrate_cell(self, intent: Intent, key: tuple) -> CalibratedCell:
        reference = self.reference_for(intent)
        compiled = compile_reference(reference)
        knowledge = self.profile.knowledge_for(intent.experiment, intent.cell_system)
        if intent.fewshot:
            # an in-context example demonstrably suppresses schema invention:
            # strip hallucination/confusion/worst-case operators
            from repro.llm.knowledge import SystemKnowledge

            knowledge = SystemKnowledge(renames=knowledge.renames)
        elif intent.doccontext:
            # documentation snippets (RAG-lite) name the real fields, which
            # suppresses the worst case but not structural sloppiness
            from repro.llm.knowledge import SystemKnowledge

            knowledge = SystemKnowledge(
                renames=knowledge.renames,
                inserts=knowledge.inserts,
                drops=knowledge.drops,
            )
        ops = build_ops(
            reference,
            knowledge,
            chrf_bias=self.profile.bias_for(intent.experiment, intent.cell_system),
            seed_labels=(self.name, key),
        )
        target = self.profile.target_for(
            intent.experiment, intent.cell_system, intent.variant, intent.fewshot
        )
        if intent.doccontext and not intent.fewshot:
            # halfway between zero-shot and few-shot competence
            few = self.profile.target_for(
                intent.experiment, intent.cell_system, intent.variant, True
            )
            target = (target + few) / 2.0
        curve = QualityCurve(reference, ops, compiled=compiled)
        result = calibrate(reference, ops, target, curve=curve)
        # the cell is cached for the process lifetime but only the
        # calibrated depth's text is ever read again: drop the rest
        curve.compact(keep=(result.k,))
        return CalibratedCell(ops, result, curve, compiled)

    def _generate_payload(self, intent: Intent, config: GenerateConfig) -> str:
        cell = self._cell(intent)
        reference = cell.curve.reference
        temperature, top_p = self._effective_sampling(config)
        rng = rng_for(self.name, intent.experiment, intent.cell_system,
                      intent.variant, intent.fewshot, intent.doccontext,
                      config.seed)
        if self.profile.epoch_jitter <= 0 or temperature == 0:
            # deterministic decoding: identical artifact every trial — the
            # calibration pass already built this prefix, so reuse it
            return cell.curve.text(cell.calib.k)
        # trial-to-trial variation: perturb the competence target by a few
        # points (sampled with real temperature/top_p decoding math), then
        # re-pick the depth on this trial's shuffled operator order
        epoch_ops = shuffle_within_bands(cell.ops, rng)
        jitter_points = sample_jitter(
            rng,
            scale=self.profile.epoch_jitter,
            temperature=temperature,
            top_p=top_p,
        )
        target = min(100.0, max(0.0, cell.calib.target_bleu + jitter_points))
        epoch_curve = QualityCurve(reference, epoch_ops, compiled=cell.compiled)
        k = local_recalibrate(
            reference, epoch_ops, target, center=cell.calib.k, curve=epoch_curve
        )
        return epoch_curve.text(k)

    def _effective_sampling(self, config: GenerateConfig) -> tuple[float, float]:
        if self.profile.ignore_sampling_params:
            # o3-style endpoints decode with their own fixed settings
            return 1.0, 1.0
        return config.temperature, config.top_p

    def _decorate(self, payload: str, intent: Intent, config: GenerateConfig) -> str:
        rng = rng_for(self.name, "chatter", intent.experiment, intent.cell_system,
                      intent.variant, config.seed)
        prefix = self.profile.chatter_prefixes[
            int(rng.integers(0, len(self.profile.chatter_prefixes)))
        ]
        fence = self.profile.fence_language(intent.experiment, intent.cell_system)
        parts = [prefix, f"```{fence}\n{payload}\n```"]
        # the fabricated-citation suffix shows up exactly where the paper
        # saw it: zero-shot Wilkins configuration requests
        if (
            self.profile.chatter_suffixes
            and intent.experiment == "configuration"
            and intent.system == "wilkins"
            and not intent.fewshot
        ):
            suffix = next((s for s in self.profile.chatter_suffixes if s), "")
            if suffix:
                parts.append(suffix)
        return "\n\n".join(p for p in parts if p)

    # -- introspection (used by benches and tests) ---------------------------------

    def calibration_for(self, intent: Intent) -> CalibrationResult:
        """Expose the calibrated depth/score for a cell (diagnostics)."""
        return self._cell(intent).calib

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedModel({self.name!r})"
