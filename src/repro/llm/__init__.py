"""LLM substrate: chat types, model registry, and the offline simulator.

The harness talks to models through the :class:`~repro.llm.api.ModelAPI`
protocol (``generate(messages, config) -> ModelOutput``), exactly the
surface a real SDK client would implement.  Offline, the registered
providers are four :class:`~repro.llm.simulated.SimulatedModel` instances
(``sim/o3``, ``sim/gemini-2.5-pro``, ``sim/claude-sonnet-4``,
``sim/llama-3.3-70b``) whose behaviour is produced by applying
knowledge-profile-driven corruption operators to reference artifacts,
calibrated against the paper's published scores (see DESIGN.md §2).

To evaluate a real endpoint instead, implement ``ModelAPI`` over your SDK
and register it with :func:`~repro.llm.api.register_model`.
"""

from repro.llm.api import Model, ModelAPI, get_model, list_models, register_model
from repro.llm.intent import Intent, analyze_prompt
from repro.llm.simulated import SimulatedModel
from repro.llm.types import ChatMessage, GenerateConfig, ModelOutput, ModelUsage

__all__ = [
    "ChatMessage",
    "GenerateConfig",
    "ModelOutput",
    "ModelUsage",
    "ModelAPI",
    "Model",
    "get_model",
    "register_model",
    "list_models",
    "SimulatedModel",
    "Intent",
    "analyze_prompt",
]
