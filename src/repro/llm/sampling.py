"""Decoding mathematics: temperature scaling and nucleus (top-p) sampling.

The simulator uses real decoding machinery wherever it makes stochastic
choices (which corruption candidates fire, how much per-epoch jitter to
apply): candidate weights are treated as logits, scaled by temperature,
truncated to the top-p nucleus, and sampled.  ``temperature=0`` collapses
to argmax, making generations fully deterministic — the property tests
rely on this.
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def apply_temperature(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Scale logits by 1/temperature; temperature=0 is handled by callers."""
    if temperature < 0:
        raise ValueError(f"temperature must be >= 0, got {temperature}")
    if temperature == 0:
        return np.asarray(logits, dtype=float)
    return np.asarray(logits, dtype=float) / temperature


def top_p_filter(probs: np.ndarray, top_p: float) -> np.ndarray:
    """Zero out probabilities outside the smallest nucleus of mass >= top_p."""
    if not 0 < top_p <= 1:
        raise ValueError(f"top_p must be in (0, 1], got {top_p}")
    probs = np.asarray(probs, dtype=float)
    order = np.argsort(probs)[::-1]
    cumulative = np.cumsum(probs[order])
    keep_count = int(np.searchsorted(cumulative, top_p) + 1)
    keep = order[:keep_count]
    filtered = np.zeros_like(probs)
    filtered[keep] = probs[keep]
    total = filtered.sum()
    if total <= 0:  # pragma: no cover - defensive; nucleus always keeps one
        filtered[order[0]] = 1.0
        total = 1.0
    return filtered / total


def sample(
    logits: np.ndarray,
    rng: np.random.Generator,
    *,
    temperature: float = 1.0,
    top_p: float = 1.0,
) -> int:
    """Sample an index from logits under temperature + nucleus truncation."""
    logits = np.asarray(logits, dtype=float)
    if logits.size == 0:
        raise ValueError("cannot sample from empty logits")
    if temperature == 0:
        return int(np.argmax(logits))
    probs = softmax(apply_temperature(logits, temperature))
    probs = top_p_filter(probs, top_p)
    return int(rng.choice(len(probs), p=probs))


def sample_jitter(
    rng: np.random.Generator,
    *,
    scale: float,
    temperature: float,
    top_p: float,
) -> int:
    """Sample a small signed integer jitter for per-epoch variation.

    The jitter distribution widens with both the model's intrinsic epoch
    variability (``scale``) and the decoding temperature; ``scale=0`` or
    ``temperature=0`` yields exactly 0 (deterministic models/decoding).
    """
    if scale <= 0 or temperature == 0:
        return 0
    spread = max(1, int(round(3 * scale)))
    offsets = np.arange(-spread, spread + 1)
    # triangular preference for small jitter, flattened by temperature
    logits = -np.abs(offsets) / max(scale, 1e-6)
    return int(offsets[sample(logits, rng, temperature=temperature, top_p=top_p)])
