"""Subword-ish tokenizer for usage accounting.

A deterministic approximation of BPE token counts: words are split on
whitespace, then long words are chunked into 4-character pieces and
punctuation is counted separately.  This tracks real tokenizer counts
closely enough for usage statistics and max_tokens budgeting in the
simulator (it is *not* used by the similarity metrics, which have their
own mteval tokenizer).
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"\w+|[^\w\s]")
_CHUNK = 4


def encode(text: str) -> list[str]:
    """Split text into pseudo-subword tokens."""
    tokens: list[str] = []
    for piece in _WORD_RE.findall(text):
        if len(piece) <= _CHUNK or not piece[0].isalnum():
            tokens.append(piece)
        else:
            tokens.extend(piece[i : i + _CHUNK] for i in range(0, len(piece), _CHUNK))
    return tokens


def count_tokens(text: str) -> int:
    """Number of pseudo-subword tokens in ``text``."""
    return len(encode(text))
