"""Calibration: choose the corruption depth that hits a target score.

Given an ordered operator sequence, the quality curve ``BLEU(k)`` for
``k = 0..N`` is computed once (the artifacts are small, so this is a few
milliseconds) and the k with minimum ``|BLEU(k) − target|`` is selected.
A straight scan is used instead of bisection because the curve is only
*approximately* monotone — individual operators vary in impact.

Results are cached per (reference, ops identity, target) by the caller;
this module stays pure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.llm.corruption import CorruptionOp, apply_ops
from repro.metrics import bleu


@dataclass(frozen=True)
class CalibrationResult:
    """Chosen corruption depth and the achieved score."""

    k: int
    achieved_bleu: float
    target_bleu: float
    curve: tuple[float, ...]

    @property
    def error(self) -> float:
        return abs(self.achieved_bleu - self.target_bleu)


def quality_curve(reference: str, ops: list[CorruptionOp]) -> list[float]:
    """``BLEU(apply_ops(reference, ops, k), reference)`` for k = 0..len(ops)."""
    return [bleu(apply_ops(reference, ops, k), reference) for k in range(len(ops) + 1)]


def local_recalibrate(
    reference: str,
    ops: list[CorruptionOp],
    target_bleu: float,
    *,
    center: int,
    window: int = 8,
) -> int:
    """Re-pick the best depth in a window around ``center``.

    Used per trial after the within-band operator shuffle: the prefix at
    the calibrated depth contains the same *number* of operators but a
    different mix, so the achieved score drifts; a cheap local search
    around the calibrated depth re-centres each trial on the target
    before jitter is applied.
    """
    lo = max(0, center - window)
    hi = min(len(ops), center + window)
    best_k, best_err = center, float("inf")
    for k in range(lo, hi + 1):
        err = abs(bleu(apply_ops(reference, ops, k), reference) - target_bleu)
        if err < best_err:
            best_k, best_err = k, err
    if best_err > 6.0:
        # the shuffle moved the target region outside the window (small op
        # sets shift a lot); fall back to a full scan of this epoch's curve
        for k, score in enumerate(quality_curve(reference, ops)):
            err = abs(score - target_bleu)
            if err < best_err:
                best_k, best_err = k, err
    return best_k


def calibrate(
    reference: str,
    ops: list[CorruptionOp],
    target_bleu: float,
    *,
    tolerance: float = 8.0,
) -> CalibrationResult:
    """Pick the operator-prefix length whose BLEU is closest to the target.

    Raises :class:`CalibrationError` when the closest achievable score is
    farther than ``tolerance`` points from the target — that signals the
    operator pool lacks dynamic range for this cell (e.g. a missing
    ``worst_case`` artifact for a very low target).
    """
    if not 0.0 <= target_bleu <= 100.0:
        raise CalibrationError(f"target BLEU out of range: {target_bleu}")
    curve = quality_curve(reference, ops)
    best_k = min(range(len(curve)), key=lambda k: abs(curve[k] - target_bleu))
    result = CalibrationResult(
        k=best_k,
        achieved_bleu=curve[best_k],
        target_bleu=target_bleu,
        curve=tuple(curve),
    )
    if result.error > tolerance:
        raise CalibrationError(
            f"cannot reach BLEU {target_bleu:.1f}: closest achievable is "
            f"{result.achieved_bleu:.1f} at k={best_k} "
            f"(curve range {min(curve):.1f}..{max(curve):.1f})"
        )
    return result
