"""Calibration: choose the corruption depth that hits a target score.

Given an ordered operator sequence, the quality curve ``BLEU(k)`` for
``k = 0..N`` is evaluated through an incremental :class:`QualityCurve`:
prefix ``k`` is built by applying *one* operator to prefix ``k-1``
(O(N) total op applications, versus O(N²) when every prefix replays
from scratch), and every depth is scored once against a precompiled
reference (:mod:`repro.metrics.compiled`) and memoized.  The k with
minimum ``|BLEU(k) − target|`` is selected by a straight scan rather
than bisection because the curve is only *approximately* monotone —
individual operators vary in impact.

Results are cached per (reference, ops identity, target) by the caller;
this module stays pure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.llm.corruption import CorruptionOp, apply_ops  # noqa: F401 (re-export)
from repro.metrics.compiled import CompiledReference, bleu_compiled, compile_reference


@dataclass(frozen=True)
class CalibrationResult:
    """Chosen corruption depth and the achieved score."""

    k: int
    achieved_bleu: float
    target_bleu: float
    curve: tuple[float, ...]

    @property
    def error(self) -> float:
        return abs(self.achieved_bleu - self.target_bleu)


class QualityCurve:
    """Incrementally evaluated ``BLEU(k)`` over corruption prefixes.

    The curve extends lazily: asking for depth ``k`` applies only the
    operators beyond the deepest prefix built so far, and each depth's
    text and score are memoized.  A windowed search followed by a full
    scan (the ``local_recalibrate`` fallback) therefore never re-applies
    an operator or re-scores a depth.  Corruption operators never mutate
    their input line lists, so prefix states can be retained safely.
    """

    __slots__ = ("reference", "ops", "compiled", "_states", "_texts", "_scores",
                 "_lock", "scores_computed")

    def __init__(
        self,
        reference: str,
        ops: list[CorruptionOp],
        *,
        compiled: CompiledReference | None = None,
    ) -> None:
        self.reference = reference
        self.ops = ops
        self.compiled = compiled if compiled is not None else compile_reference(reference)
        self._states: list[list[str]] = [reference.split("\n")]
        self._texts: dict[int, str] = {0: reference}
        self._scores: dict[int, float] = {}
        self._lock = threading.Lock()  # guards the _states extension
        self.scores_computed = 0  # instrumentation for benches and tests

    def __len__(self) -> int:
        """Number of depths on the curve (k = 0..len(ops))."""
        return len(self.ops) + 1

    def text(self, k: int) -> str:
        """The artifact at depth ``k`` — identical to ``apply_ops(ref, ops, k)``.

        Thread-safe: curve objects are published process-wide inside the
        simulator's cached cells, so the lazy prefix extension is locked
        (the memoized-text fast path stays lock-free).
        """
        k = max(0, min(k, len(self.ops)))
        text = self._texts.get(k)
        if text is None:
            with self._lock:
                while len(self._states) <= k:
                    j = len(self._states)
                    self._states.append(self.ops[j - 1].apply(self._states[j - 1]))
                text = self._texts[k] = "\n".join(self._states[k])
        return text

    def score(self, k: int) -> float:
        """Memoized ``BLEU(text(k), reference)``."""
        score = self._scores.get(k)
        if score is None:
            score = self._scores[k] = bleu_compiled(self.text(k), self.compiled)
            self.scores_computed += 1
        return score

    def scores(self) -> list[float]:
        """The full curve, depths 0..len(ops)."""
        return [self.score(k) for k in range(len(self))]

    def compact(self, keep: tuple[int, ...] = ()) -> None:
        """Release retained prefix states and texts, keeping only ``keep``.

        A calibrated cell lives for the whole process but only ever
        re-reads the text at its calibrated depth; dropping the other
        N prefix strings and line-list states frees ~N copies of the
        artifact per cell.  Memoized *scores* (a handful of floats) are
        kept, and any depth's text can still be rebuilt on demand.
        """
        kept = {k: self.text(k) for k in keep}
        with self._lock:
            self._states = [self.reference.split("\n")]
            self._texts = {0: self.reference, **kept}

    def best(self, target: float, lo: int = 0, hi: int | None = None) -> tuple[int, float]:
        """(k, error) minimising ``|score(k) − target|`` over ``[lo, hi]``.

        Ties break toward the lowest depth, matching the historical
        straight-scan behaviour.
        """
        hi = len(self.ops) if hi is None else min(hi, len(self.ops))
        best_k, best_err = lo, float("inf")
        for k in range(lo, hi + 1):
            err = abs(self.score(k) - target)
            if err < best_err:
                best_k, best_err = k, err
        return best_k, best_err


def quality_curve(reference: str, ops: list[CorruptionOp]) -> list[float]:
    """``BLEU(apply_ops(reference, ops, k), reference)`` for k = 0..len(ops)."""
    return QualityCurve(reference, ops).scores()


def local_recalibrate(
    reference: str,
    ops: list[CorruptionOp],
    target_bleu: float,
    *,
    center: int,
    window: int = 8,
    curve: QualityCurve | None = None,
) -> int:
    """Re-pick the best depth in a window around ``center``.

    Used per trial after the within-band operator shuffle: the prefix at
    the calibrated depth contains the same *number* of operators but a
    different mix, so the achieved score drifts; a cheap local search
    around the calibrated depth re-centres each trial on the target
    before jitter is applied.

    Pass the trial's :class:`QualityCurve` as ``curve`` to reuse its
    prefix states and memoized scores (the fallback full scan then skips
    every depth the window search already evaluated).
    """
    if curve is None:
        curve = QualityCurve(reference, ops)
    lo = max(0, center - window)
    hi = min(len(ops), center + window)
    best_k, best_err = curve.best(target_bleu, lo, hi)
    if best_err > 6.0:
        # the shuffle moved the target region outside the window (small op
        # sets shift a lot); fall back to a full scan of this epoch's curve
        for k in range(len(curve)):
            err = abs(curve.score(k) - target_bleu)
            if err < best_err:
                best_k, best_err = k, err
    return best_k


def calibrate(
    reference: str,
    ops: list[CorruptionOp],
    target_bleu: float,
    *,
    tolerance: float = 8.0,
    curve: QualityCurve | None = None,
) -> CalibrationResult:
    """Pick the operator-prefix length whose BLEU is closest to the target.

    ``curve`` lets a caller hand in a pre-built :class:`QualityCurve`
    (and keep it for later reuse — the simulator's per-cell calibration
    does this so the deterministic generation path never re-applies ops).

    Raises :class:`CalibrationError` when the closest achievable score is
    farther than ``tolerance`` points from the target — that signals the
    operator pool lacks dynamic range for this cell (e.g. a missing
    ``worst_case`` artifact for a very low target).
    """
    if not 0.0 <= target_bleu <= 100.0:
        raise CalibrationError(f"target BLEU out of range: {target_bleu}")
    if curve is None:
        curve = QualityCurve(reference, ops)
    scores = curve.scores()
    best_k, _ = curve.best(target_bleu)
    result = CalibrationResult(
        k=best_k,
        achieved_bleu=scores[best_k],
        target_bleu=target_bleu,
        curve=tuple(scores),
    )
    if result.error > tolerance:
        raise CalibrationError(
            f"cannot reach BLEU {target_bleu:.1f}: closest achievable is "
            f"{result.achieved_bleu:.1f} at k={best_k} "
            f"(curve range {min(scores):.1f}..{max(scores):.1f})"
        )
    return result
