"""Per-model, per-system knowledge profiles.

A :class:`SystemKnowledge` captures *how a specific model fails* on a
specific (experiment, system) cell — the behavioural fingerprints the
paper documents:

* ``confusions``: real API/field name → the nonexistent name the model
  substitutes (``henson_save_int`` → ``henson_put`` for o3,
  ``inports`` → ``inputs`` for zero-shot o3 on Wilkins, ...);
* ``drops``: required calls the model omits (``compss_wait_on_file`` for
  LLaMA);
* ``inserts``: redundant lines the model adds unprompted (Parsl executor
  configuration);
* ``renames``: benign identifier drift that hurts BLEU mildly;
* ``worst_case``: the completely-confused artifact the model produces at
  the bottom of its competence (task code instead of a config file, an
  ADIOS2-shaped Henson API, ...).

:class:`ModelProfile` aggregates the knowledge cells with the model's
response style and calibration targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import GenerationError

# cell key: (experiment, system) with system either a name or a (src, dst)
# pair for translation
CellKey = tuple


@dataclass(frozen=True)
class SystemKnowledge:
    """Failure fingerprint of one model on one experiment cell."""

    confusions: Mapping[str, str] = field(default_factory=dict)
    drops: tuple[str, ...] = ()
    inserts: tuple[tuple[str, str], ...] = ()  # (anchor-substring, new line)
    renames: Mapping[str, str] = field(default_factory=dict)
    worst_case: str | None = None


@dataclass
class ModelProfile:
    """Everything that makes one simulated model behave like itself."""

    name: str  # registry key suffix, e.g. "o3"
    vendor: str
    display_name: str
    chatter_prefixes: tuple[str, ...]
    chatter_suffixes: tuple[str, ...] = ()
    ignore_sampling_params: bool = False  # o3: no temperature/top_p knobs
    epoch_jitter: float = 1.0  # 0 => fully deterministic across trials
    knowledge: dict[CellKey, SystemKnowledge] = field(default_factory=dict)
    # calibration targets: (experiment, system-key, variant[, shot]) -> BLEU
    targets: dict[tuple, float] = field(default_factory=dict)
    # (experiment, system-key) -> paper ChrF − paper BLEU; steers which
    # corruption families dominate (see corruption.build_ops)
    biases: dict[tuple, float] = field(default_factory=dict)

    def knowledge_for(self, experiment: str, system_key) -> SystemKnowledge:
        """Cell knowledge with fallback to (experiment, None) then empty."""
        for key in ((experiment, system_key), (experiment, None)):
            if key in self.knowledge:
                return self.knowledge[key]
        return SystemKnowledge()

    def target_for(
        self, experiment: str, system_key, variant: str, fewshot: bool = False
    ) -> float:
        """Calibration BLEU target for an experiment cell."""
        if fewshot:
            key = (experiment + "-fewshot", system_key)
            if key in self.targets:
                return self.targets[key]
        key = (experiment, system_key, variant)
        if key in self.targets:
            return self.targets[key]
        # unknown variant falls back to the original phrasing
        key = (experiment, system_key, "original")
        if key in self.targets:
            return self.targets[key]
        raise GenerationError(
            f"model {self.name!r} has no calibration target for "
            f"{(experiment, system_key, variant, fewshot)!r}"
        )

    def bias_for(self, experiment: str, system_key) -> float:
        """ChrF-vs-BLEU bias for a cell (0 when unknown)."""
        return self.biases.get((experiment, system_key), 0.0)

    def fence_language(self, experiment: str, system_key) -> str:
        """Markdown fence tag the model uses for this artifact kind."""
        if experiment == "configuration":
            if system_key == "adios2":
                return "xml"
            if system_key == "wilkins":
                return "yaml"
            return "text"
        target = system_key[1] if isinstance(system_key, tuple) else system_key
        return "python" if target in ("parsl", "pycompss") else "c"
