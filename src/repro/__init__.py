"""repro — reproduction of "Do Large Language Models Speak Scientific Workflows?"

Public surface (stable):

* :mod:`repro.metrics` — BLEU / ChrF / aggregation.
* :mod:`repro.llm` — model registry (``get_model``), chat types, the
  offline :class:`~repro.llm.simulated.SimulatedModel` provider.
* :mod:`repro.core` — the evaluation harness (tasks, solvers, scorers,
  ``evaluate``) and the paper's experiment builders.
* :mod:`repro.runtime` — the parallel evaluation runtime: sweeps flatten
  into work-unit plans executed on pluggable executors (serial, thread
  pool, MPI shards) behind a content-addressed result cache.
* :mod:`repro.workflows` — executable mini-implementations of ADIOS2,
  Henson, Parsl, PyCOMPSs and Wilkins, each with an API-surface validator.
* :mod:`repro.mpi`, :mod:`repro.store` — the simulated MPI and storage
  substrates the workflow runtimes execute on.
* :mod:`repro.reporting` — table and heatmap renderers for every table
  and figure in the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
