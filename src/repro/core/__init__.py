"""The evaluation harness — the paper's primary contribution, reproduced.

An Inspect-AI-style pipeline:

* :class:`~repro.core.samples.Sample` — one prompt/target pair with
  metadata identifying the experiment cell;
* :class:`~repro.core.task.Task` — dataset + solver chain + scorer;
* :func:`~repro.core.task.evaluate` — runs a task against a model for
  ``epochs`` repetitions with a :class:`~repro.llm.types.GenerateConfig`
  (temperature 0.2 / top_p 0.95 in the paper, except o3) and aggregates
  mean ± standard error;
* experiment builders under :mod:`repro.core.experiments` for workflow
  configuration, task-code annotation, task-code translation, prompt
  sensitivity, and few-shot prompting;
* :class:`~repro.core.repair.RepairLoop` — the iterative error-correction
  extension the paper's conclusion proposes.
"""

from repro.core.samples import Sample
from repro.core.scorers import CodeSimilarityScorer, Score
from repro.core.solvers import SolverChain, few_shot_solver, prompt_solver
from repro.core.task import EvalResult, Task, evaluate

__all__ = [
    "Sample",
    "Task",
    "evaluate",
    "EvalResult",
    "Score",
    "CodeSimilarityScorer",
    "SolverChain",
    "prompt_solver",
    "few_shot_solver",
]
