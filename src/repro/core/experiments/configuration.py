"""Workflow configuration experiment (paper §4.1, Table 1).

Models are asked for the configuration file of the 3-node
producer/two-consumer workflow; PyCOMPSs and Parsl are excluded because
their configuration files describe the execution environment rather than
the workflow structure (paper §4.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.assets import fewshot_example_config, reference_config
from repro.core.experiments.base import ExperimentGrid, run_grid_sweep
from repro.core.samples import Sample
from repro.core.solvers import few_shot_solver, prompt_solver
from repro.core.task import DEFAULT_EPOCHS, Task
from repro.data import MODELS
from repro.errors import HarnessError
from repro.workflows import get_system

CONFIGURATION_SYSTEMS = ("adios2", "henson", "wilkins")


def configuration_task(
    system: str, variant: str = "original", fewshot: bool = False
) -> Task:
    """Build the configuration task for one workflow system."""
    if system not in CONFIGURATION_SYSTEMS:
        raise HarnessError(
            f"configuration experiment covers {CONFIGURATION_SYSTEMS}, "
            f"got {system!r} (PyCOMPSs/Parsl configs describe the execution "
            "environment, not the workflow)"
        )
    descriptor = get_system(system)
    sample = Sample(
        id=f"configuration/{system}",
        input="",
        target=reference_config(system),
        metadata={
            "experiment": "configuration",
            "system": system,
            "system_display": descriptor.display_name,
        },
    )
    solvers = [prompt_solver(variant)]
    if fewshot:
        solvers.append(
            few_shot_solver(fewshot_example_config(system), descriptor.display_name)
        )
    shot = "few-shot" if fewshot else "zero-shot"
    return Task(
        name=f"configuration/{system}/{variant}/{shot}",
        dataset=[sample],
        solvers=solvers,
    )


def run_configuration(
    models: Sequence[str] = MODELS,
    systems: Sequence[str] = CONFIGURATION_SYSTEMS,
    *,
    epochs: int = DEFAULT_EPOCHS,
    variant: str = "original",
    fewshot: bool = False,
    config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> ExperimentGrid:
    """Sweep models × systems; returns the Table 1 grid."""
    return run_grid_sweep(
        "configuration",
        systems,
        models,
        lambda system: configuration_task(system, variant=variant, fewshot=fewshot),
        epochs=epochs,
        config=config,
        executor=executor,
        cache=cache,
        scheduler=scheduler,
        store=store,
        scoring=scoring,
        faults=faults,
    )
