"""Task code annotation experiment (paper §4.2, Table 2).

Models annotate the plain producer (C for ADIOS2/Henson, Python for
PyCOMPSs/Parsl) with the workflow system's API calls; Wilkins is excluded
because it requires no task-code changes (paper §4.2).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.assets import annotated_producer, base_producer
from repro.core.experiments.base import ExperimentGrid, run_grid_sweep
from repro.core.samples import Sample
from repro.core.solvers import prompt_solver
from repro.core.task import DEFAULT_EPOCHS, Task
from repro.data import MODELS
from repro.errors import HarnessError
from repro.workflows import get_system

ANNOTATION_SYSTEMS = ("adios2", "henson", "pycompss", "parsl")


def annotation_task(system: str, variant: str = "original") -> Task:
    """Build the annotation task for one workflow system."""
    if system not in ANNOTATION_SYSTEMS:
        raise HarnessError(
            f"annotation experiment covers {ANNOTATION_SYSTEMS}, got "
            f"{system!r} (Wilkins requires no task-code changes)"
        )
    descriptor = get_system(system)
    sample = Sample(
        id=f"annotation/{system}",
        input="",
        target=annotated_producer(system),
        metadata={
            "experiment": "annotation",
            "system": system,
            "system_display": descriptor.display_name,
            "code": base_producer(descriptor.task_language),
        },
    )
    return Task(
        name=f"annotation/{system}/{variant}",
        dataset=[sample],
        solvers=[prompt_solver(variant)],
    )


def run_annotation(
    models: Sequence[str] = MODELS,
    systems: Sequence[str] = ANNOTATION_SYSTEMS,
    *,
    epochs: int = DEFAULT_EPOCHS,
    variant: str = "original",
    config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> ExperimentGrid:
    """Sweep models × systems; returns the Table 2 grid."""
    return run_grid_sweep(
        "annotation",
        systems,
        models,
        lambda system: annotation_task(system, variant=variant),
        epochs=epochs,
        config=config,
        executor=executor,
        cache=cache,
        scheduler=scheduler,
        store=store,
        scoring=scoring,
        faults=faults,
    )
