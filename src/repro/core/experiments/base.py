"""Shared result containers and sweep plumbing for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.errors import HarnessError
from repro.metrics.stats import Aggregate, pool


@dataclass(frozen=True)
class CellResult:
    """BLEU and ChrF aggregates for one (condition, model) cell."""

    bleu: Aggregate
    chrf: Aggregate


@dataclass
class ExperimentGrid:
    """Results of one sweep: rows are conditions, columns are models.

    Mirrors the layout of the paper's tables, including the Overall
    row/column convention (unweighted mean across conditions, with the
    spread *across conditions* as the uncertainty).
    """

    name: str
    row_keys: Sequence[Hashable]
    models: Sequence[str]
    cells: dict[tuple[Hashable, str], CellResult] = field(default_factory=dict)

    def cell(self, row: Hashable, model: str) -> CellResult:
        try:
            return self.cells[(row, model)]
        except KeyError:
            raise HarnessError(
                f"grid {self.name!r} has no cell ({row!r}, {model!r})"
            ) from None

    def add(self, row: Hashable, model: str, result: CellResult) -> None:
        if row not in self.row_keys:
            raise HarnessError(
                f"grid {self.name!r} has no row {row!r}; rows: {list(self.row_keys)}"
            )
        if model not in self.models:
            raise HarnessError(
                f"grid {self.name!r} has no model {model!r}; "
                f"models: {list(self.models)}"
            )
        self.cells[(row, model)] = result

    def overall_by_model(self) -> dict[str, CellResult]:
        """Overall row: pool each model's cells across conditions."""
        out: dict[str, CellResult] = {}
        for model in self.models:
            col = [self.cell(row, model) for row in self.row_keys]
            out[model] = CellResult(
                bleu=pool(c.bleu for c in col),
                chrf=pool(c.chrf for c in col),
            )
        return out

    def overall_by_row(self) -> dict[Hashable, CellResult]:
        """Overall column: pool each condition's cells across models."""
        out: dict[Hashable, CellResult] = {}
        for row in self.row_keys:
            cells = [self.cell(row, model) for model in self.models]
            out[row] = CellResult(
                bleu=pool(c.bleu for c in cells),
                chrf=pool(c.chrf for c in cells),
            )
        return out

    def grand_overall(self) -> CellResult:
        """Bottom-right cell: pool the per-model overall values."""
        overall = self.overall_by_model()
        return CellResult(
            bleu=pool(overall[m].bleu for m in self.models),
            chrf=pool(overall[m].chrf for m in self.models),
        )

    def best_model(self, metric: str = "bleu") -> str:
        """Model with the highest overall mean."""
        overall = self.overall_by_model()
        return max(
            self.models, key=lambda m: getattr(overall[m], metric).mean
        )

    def best_row(self, metric: str = "bleu") -> Hashable:
        """Condition on which models perform best overall."""
        overall = self.overall_by_row()
        return max(
            self.row_keys, key=lambda r: getattr(overall[r], metric).mean
        )


def cell_from_eval(result) -> CellResult:
    """Build a CellResult from an :class:`~repro.core.task.EvalResult`."""
    return CellResult(
        bleu=result.aggregate("bleu"),
        chrf=result.aggregate("chrf"),
    )


def run_grid_sweep(
    name: str,
    rows: Sequence[Hashable],
    models: Sequence[str],
    task_for_row: Callable[[Hashable], object],
    *,
    epochs: int,
    config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> ExperimentGrid:
    """Plan and run a rows × models sweep through the runtime.

    The shared body of the grid-shaped experiment runners: one
    :class:`~repro.runtime.plan.Plan` over all cells (so a parallel
    executor sees the whole sweep at once), one run, one grid.
    ``config`` is a :class:`~repro.runtime.config.RunConfig` carrying
    every runtime knob at once (the documented path); the individual
    keyword knobs remain as a deprecation shim and merge into it.
    ``store`` makes the sweep durable and resumable (see
    :mod:`repro.persist`); ``faults`` installs a
    :class:`~repro.runtime.faults.FaultPolicy` — with an isolating
    policy, cells whose units were quarantined are simply absent from
    the grid (``grid.cell`` raises for them) until a resumed run heals
    them, instead of one bad unit aborting the whole sweep.
    """
    # imported here: repro.runtime builds on repro.core
    from repro.errors import UnitFailedError
    from repro.runtime import Plan, run

    plan = Plan(name)
    specs = {}
    for row in rows:
        task = task_for_row(row)
        for model in models:
            specs[(row, model)] = plan.add_eval(task, f"sim/{model}", epochs=epochs)
    outcome = run(plan, config=config, executor=executor, cache=cache,
                  scheduler=scheduler, store=store, scoring=scoring, faults=faults)
    grid = ExperimentGrid(name=name, row_keys=list(rows), models=list(models))
    for (row, model), spec in specs.items():
        try:
            grid.add(row, model, cell_from_eval(outcome.eval_result(spec)))
        except UnitFailedError:
            # quarantined cell: recorded on the run (and its manifest),
            # healed by re-running against the same store
            continue
    return grid
