"""Experiment builders: one module per experiment in the paper's §4.

Each module exposes task builders (``*_task``) returning harness
:class:`~repro.core.task.Task` objects and a ``run_*`` helper that sweeps
models × systems and returns an :class:`~repro.core.experiments.base.ExperimentGrid`
ready for the reporting layer.
"""

from repro.core.experiments.annotation import annotation_task, run_annotation
from repro.core.experiments.base import CellResult, ExperimentGrid
from repro.core.experiments.configuration import configuration_task, run_configuration
from repro.core.experiments.fewshot import run_fewshot
from repro.core.experiments.prompt_sensitivity import run_prompt_sensitivity
from repro.core.experiments.translation import run_translation, translation_task

__all__ = [
    "CellResult",
    "ExperimentGrid",
    "configuration_task",
    "run_configuration",
    "annotation_task",
    "run_annotation",
    "translation_task",
    "run_translation",
    "run_prompt_sensitivity",
    "run_fewshot",
]
