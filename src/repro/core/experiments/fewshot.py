"""Few-shot prompting experiment (paper §4.5, Table 5).

The workflow-configuration experiment repeated with the original prompt
augmented by an example 2-node configuration; results are averaged over
the three configuration systems, as in the paper.  Both shot modes are
emitted into one runtime plan, so a parallel executor sees the whole
2 × systems × models sweep at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.experiments.base import CellResult, cell_from_eval
from repro.core.experiments.configuration import (
    CONFIGURATION_SYSTEMS,
    configuration_task,
)
from repro.core.task import DEFAULT_EPOCHS
from repro.data import MODELS
from repro.metrics.stats import pool
from repro.runtime import Plan, run


@dataclass
class FewshotComparison:
    """Zero-shot vs few-shot aggregates per model (Table 5 layout)."""

    models: Sequence[str]
    zero_shot: dict[str, CellResult]
    few_shot: dict[str, CellResult]

    def gain(self, model: str, metric: str = "bleu") -> float:
        """Few-shot minus zero-shot mean."""
        return (
            getattr(self.few_shot[model], metric).mean
            - getattr(self.zero_shot[model], metric).mean
        )

    def best_gainer(self, metric: str = "bleu") -> str:
        return max(self.models, key=lambda m: self.gain(m, metric))


def run_fewshot(
    models: Sequence[str] = MODELS,
    systems: Sequence[str] = CONFIGURATION_SYSTEMS,
    *,
    epochs: int = DEFAULT_EPOCHS,
    config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> FewshotComparison:
    """Run both shot modes and average over the configuration systems."""
    plan = Plan("fewshot")
    specs = {}
    for fewshot in (False, True):
        for system in systems:
            task = configuration_task(system, fewshot=fewshot)
            for model in models:
                specs[(fewshot, system, model)] = plan.add_eval(
                    task, f"sim/{model}", epochs=epochs
                )
    outcome = run(plan, config=config, executor=executor, cache=cache,
                  scheduler=scheduler, store=store, scoring=scoring,
                  faults=faults)

    def averaged(fewshot: bool) -> dict[str, CellResult]:
        out: dict[str, CellResult] = {}
        for model in models:
            cells = [
                cell_from_eval(outcome.eval_result(specs[(fewshot, system, model)]))
                for system in systems
            ]
            out[model] = CellResult(
                bleu=pool(c.bleu for c in cells),
                chrf=pool(c.chrf for c in cells),
            )
        return out

    return FewshotComparison(
        models=list(models),
        zero_shot=averaged(False),
        few_shot=averaged(True),
    )
