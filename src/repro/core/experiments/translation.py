"""Task code translation experiment (paper §4.3, Table 3).

Models translate the *annotated* producer of the source system (from the
annotation experiment) into the target system's API, within each language
family: ADIOS2 ↔ Henson (C) and Parsl ↔ PyCOMPSs (Python).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.assets import annotated_producer
from repro.core.experiments.base import ExperimentGrid, run_grid_sweep
from repro.core.samples import Sample
from repro.core.solvers import prompt_solver
from repro.core.task import DEFAULT_EPOCHS, Task
from repro.data import MODELS, TRANSLATION_DIRECTIONS
from repro.errors import HarnessError
from repro.workflows import get_system


def translation_task(source: str, target: str, variant: str = "original") -> Task:
    """Build the translation task for one (source → target) direction."""
    if (source, target) not in TRANSLATION_DIRECTIONS:
        raise HarnessError(
            f"translation experiment covers {TRANSLATION_DIRECTIONS}, "
            f"got {(source, target)!r}"
        )
    src = get_system(source)
    dst = get_system(target)
    sample = Sample(
        id=f"translation/{source}-to-{target}",
        input="",
        target=annotated_producer(target),
        metadata={
            "experiment": "translation",
            "source": source,
            "target": target,
            "source_display": src.display_name,
            "target_display": dst.display_name,
            "code": annotated_producer(source),
        },
    )
    return Task(
        name=f"translation/{source}-to-{target}/{variant}",
        dataset=[sample],
        solvers=[prompt_solver(variant)],
    )


def run_translation(
    models: Sequence[str] = MODELS,
    directions: Sequence[tuple[str, str]] = TRANSLATION_DIRECTIONS,
    *,
    epochs: int = DEFAULT_EPOCHS,
    variant: str = "original",
    config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> ExperimentGrid:
    """Sweep models × directions; returns the Table 3 grid."""
    return run_grid_sweep(
        "translation",
        list(directions),
        models,
        lambda direction: translation_task(*direction, variant=variant),
        epochs=epochs,
        config=config,
        executor=executor,
        cache=cache,
        scheduler=scheduler,
        store=store,
        scoring=scoring,
        faults=faults,
    )
