"""Prompt-sensitivity experiment (paper §4.4, Figure 1).

Five prompt variants × four models per condition.  The paper's heatmaps
show single-run BLEU values (unlike the 5-trial tables), so the default
here is ``epochs=1``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.experiments.annotation import ANNOTATION_SYSTEMS, annotation_task
from repro.core.experiments.configuration import (
    CONFIGURATION_SYSTEMS,
    configuration_task,
)
from repro.core.experiments.translation import translation_task
from repro.data import MODELS, PROMPT_VARIANTS, TRANSLATION_DIRECTIONS
from repro.errors import HarnessError
from repro.runtime import Plan, run


def _conditions(experiment: str) -> Sequence[Hashable]:
    if experiment == "configuration":
        return CONFIGURATION_SYSTEMS
    if experiment == "annotation":
        return ANNOTATION_SYSTEMS
    if experiment == "translation":
        return TRANSLATION_DIRECTIONS
    raise HarnessError(f"unknown experiment {experiment!r}")


def _task(experiment: str, condition, variant: str):
    if experiment == "configuration":
        return configuration_task(condition, variant=variant)
    if experiment == "annotation":
        return annotation_task(condition, variant=variant)
    source, target = condition
    return translation_task(source, target, variant=variant)


def run_prompt_sensitivity(
    experiment: str,
    *,
    models: Sequence[str] = MODELS,
    variants: Sequence[str] = PROMPT_VARIANTS,
    conditions: Sequence[Hashable] | None = None,
    epochs: int = 1,
    config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> dict[Hashable, dict[str, dict[str, float]]]:
    """Sweep conditions × variants × models.

    Returns ``{condition: {variant: {model: bleu_mean}}}``, the structure
    of one Figure 1 sub-plot per condition.
    """
    conditions = list(conditions if conditions is not None else _conditions(experiment))
    plan = Plan(f"prompt_sensitivity/{experiment}")
    specs = {}
    for condition in conditions:
        for variant in variants:
            task = _task(experiment, condition, variant)
            for model in models:
                specs[(condition, variant, model)] = plan.add_eval(
                    task, f"sim/{model}", epochs=epochs
                )
    outcome = run(plan, config=config, executor=executor, cache=cache,
                  scheduler=scheduler, store=store, scoring=scoring,
                  faults=faults)
    out: dict[Hashable, dict[str, dict[str, float]]] = {}
    for condition in conditions:
        out[condition] = {
            variant: {
                model: outcome.eval_result(specs[(condition, variant, model)])
                .aggregate("bleu")
                .mean
                for model in models
            }
            for variant in variants
        }
    return out
