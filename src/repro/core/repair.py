"""Iterative error correction (the paper's §5 future-work direction).

The paper closes by proposing "iterative error correction mechanisms as
successfully applied in other LLM applications".  :class:`RepairLoop`
implements that mechanism for workflow configurations:

1. generate a configuration from the user request;
2. validate it against the target system's surface
   (:mod:`repro.workflows` validators, the hallucination detectors);
3. if invalid, build a *repair prompt*: the original request plus the
   validator diagnostics plus a known-good example configuration, and
   regenerate;
4. stop when the artifact validates or the iteration budget is spent.

Step 3 is exactly the knowledge injection the paper shows to work in
§4.5 — feeding the model an example suppresses invented schema fields —
so the loop converges for the simulated models the same way it would for
real ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assets import fewshot_example_config
from repro.data.prompts import FEWSHOT_SUFFIX
from repro.errors import HarnessError
from repro.llm.api import Model, get_model
from repro.llm.types import GenerateConfig
from repro.utils.text import strip_markdown_chatter
from repro.workflows import ValidationReport, get_system


@dataclass
class RepairAttempt:
    """One iteration: the artifact produced and its validation outcome."""

    iteration: int
    prompt: str
    artifact: str
    report: ValidationReport


@dataclass
class RepairOutcome:
    """Full loop history plus the final artifact."""

    system: str
    attempts: list[RepairAttempt] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].report.ok

    @property
    def iterations(self) -> int:
        return len(self.attempts)

    @property
    def final_artifact(self) -> str:
        if not self.attempts:
            raise HarnessError("repair loop never ran")
        return self.attempts[-1].artifact


class RepairLoop:
    """Generate → validate → feed diagnostics back → regenerate."""

    def __init__(
        self,
        model: Model | str,
        system: str,
        *,
        max_iterations: int = 3,
        config: GenerateConfig | None = None,
    ) -> None:
        self.model = get_model(model) if isinstance(model, str) else model
        self.system = get_system(system)
        if self.system.validate_config is None:
            raise HarnessError(
                f"{self.system.display_name} has no configuration validator"
            )
        if max_iterations <= 0:
            raise HarnessError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.config = config or GenerateConfig()

    def run(self, request: str) -> RepairOutcome:
        """Run the loop on a natural-language configuration request."""
        outcome = RepairOutcome(system=self.system.name)
        prompt = request
        for iteration in range(self.max_iterations):
            gen_config = GenerateConfig(
                temperature=self.config.temperature,
                top_p=self.config.top_p,
                max_tokens=self.config.max_tokens,
                seed=self.config.seed + iteration,
            )
            output = self.model.generate(prompt, gen_config)
            artifact = strip_markdown_chatter(output.completion)
            report = self.system.validate_config(artifact)
            outcome.attempts.append(
                RepairAttempt(
                    iteration=iteration,
                    prompt=prompt,
                    artifact=artifact,
                    report=report,
                )
            )
            if report.ok:
                break
            prompt = self._repair_prompt(request, report)
        return outcome

    def _repair_prompt(self, request: str, report: ValidationReport) -> str:
        diagnostics = "\n".join(f"- {d.render()}" for d in report.errors())
        example = fewshot_example_config(self.system.name)
        return (
            f"{request}\n\n"
            f"Your previous configuration was rejected by the "
            f"{self.system.display_name} validator with these errors:\n"
            f"{diagnostics}\n"
            f"Please fix the configuration."
            + FEWSHOT_SUFFIX.format(
                system=self.system.display_name, example=example
            )
        )
