"""Ground-truth artifacts for the three experiments.

* :mod:`~repro.core.assets.configs` — reference workflow configuration
  files (ADIOS2 XML, Henson hwl, Wilkins YAML) for the paper's 3-node
  producer/two-consumer workflow, plus the 2-node examples used for
  few-shot prompting;
* :mod:`~repro.core.assets.task_codes` — the plain producer task codes
  (C and Python) and their reference annotations for each workflow
  system, written against the *real* systems' APIs (these are evaluation
  ground truth; executable substrate equivalents live in ``examples/``).

Accessors return fresh strings; the texts are dedented and newline
normalized.
"""

from repro.core.assets.configs import (
    fewshot_example_config,
    reference_config,
)
from repro.core.assets.task_codes import (
    annotated_producer,
    base_producer,
)

__all__ = [
    "reference_config",
    "fewshot_example_config",
    "base_producer",
    "annotated_producer",
]
