"""Producer task codes: plain bases and per-system reference annotations.

The C producer emulates an HPC simulation (random array per step, local
and global sums via MPI) and matches the structure of the paper's Table 4
listings.  The Python producer is the equivalent used for PyCOMPSs and
Parsl.  Reference annotations are written against the *real* systems'
APIs — they are similarity-metric ground truth, not substrate code.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.utils.text import dedent_strip

# ---------------------------------------------------------------------------
# Plain producers (inputs to the annotation experiment)
# ---------------------------------------------------------------------------

BASE_PRODUCER_C = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <unistd.h>
    #include <time.h>
    #include <mpi.h>

    int main(int argc, char** argv)
    {
        MPI_Init(&argc, &argv);
        int rank, size;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &size);

        size_t n = 50;
        if (argc > 1) n = atoi(argv[1]);
        if (rank == 0) printf("Using %zu random numbers\\n", n);

        int iterations = 3;
        if (argc > 2) iterations = atoi(argv[2]);

        int sleep_interval = 0;
        if (argc > 3) sleep_interval = atoi(argv[3]);

        srand(time(NULL) + rank);

        /* workflow system: initialization goes here */

        int t;
        for (t = 0; t < iterations; ++t) {
            if (sleep_interval) sleep(sleep_interval);

            float* array = (float*) malloc(n * sizeof(float));
            size_t i;
            for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

            float sum = 0;
            for (i = 0; i < n; ++i) sum += array[i];
            printf("[%d] Simulation [t=%d]: sum = %f\\n", rank, t, sum);

            float total_sum;
            MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
            if (rank == 0)
                printf("[%d] Simulation [t=%d]: total_sum = %f\\n", rank, t, total_sum);

            /* workflow system: publish array and t here */

            free(array);
        }

        /* workflow system: cleanup goes here */

        MPI_Finalize();
        return 0;
    }
    """
)

BASE_PRODUCER_PY = dedent_strip(
    '''
    import sys
    import time

    import numpy as np


    def simulate_step(n, t):
        """One simulation step: a fresh random array and its checksum."""
        rng = np.random.default_rng(t)
        array = rng.random(n).astype("float32")
        return array, float(array.sum())


    def main(argv):
        n = int(argv[1]) if len(argv) > 1 else 50
        iterations = int(argv[2]) if len(argv) > 2 else 3
        sleep_interval = int(argv[3]) if len(argv) > 3 else 0
        print(f"Using {n} random numbers")

        total = 0.0
        for t in range(iterations):
            if sleep_interval:
                time.sleep(sleep_interval)
            # workflow system: publish the array produced below
            array, checksum = simulate_step(n, t)
            print(f"Simulation [t={t}]: sum = {checksum}")
            total += checksum
        # workflow system: synchronize before reporting
        print(f"Simulation total_sum = {total}")


    if __name__ == "__main__":
        main(sys.argv)
    '''
)

# ---------------------------------------------------------------------------
# ADIOS2 reference annotation (C)
# ---------------------------------------------------------------------------

ADIOS2_PRODUCER_C = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <unistd.h>
    #include <time.h>
    #include <mpi.h>
    #include <adios2_c.h>

    int main(int argc, char** argv)
    {
        MPI_Init(&argc, &argv);
        int rank, size;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &size);

        size_t n = 50;
        if (argc > 1) n = atoi(argv[1]);
        if (rank == 0) printf("Using %zu random numbers\\n", n);

        int iterations = 3;
        if (argc > 2) iterations = atoi(argv[2]);

        int sleep_interval = 0;
        if (argc > 3) sleep_interval = atoi(argv[3]);

        srand(time(NULL) + rank);

        adios2_adios* adios = adios2_init(MPI_COMM_WORLD);
        adios2_io* io = adios2_declare_io(adios, "SimulationOutput");

        size_t shape[2], start[2], count[2];
        shape[0] = (size_t) size; shape[1] = n;
        start[0] = (size_t) rank; start[1] = 0;
        count[0] = 1;             count[1] = n;
        adios2_variable* var_array = adios2_define_variable(
            io, "array", adios2_type_float, 2, shape, start, count,
            adios2_constant_dims_true);
        adios2_variable* var_t = adios2_define_variable(
            io, "t", adios2_type_int32_t, 0, NULL, NULL, NULL,
            adios2_constant_dims_true);

        adios2_engine* engine = adios2_open(io, "output.bp", adios2_mode_write);

        int t;
        for (t = 0; t < iterations; ++t) {
            if (sleep_interval) sleep(sleep_interval);

            float* array = (float*) malloc(n * sizeof(float));
            size_t i;
            for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

            float sum = 0;
            for (i = 0; i < n; ++i) sum += array[i];
            printf("[%d] Simulation [t=%d]: sum = %f\\n", rank, t, sum);

            float total_sum;
            MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
            if (rank == 0)
                printf("[%d] Simulation [t=%d]: total_sum = %f\\n", rank, t, total_sum);

            adios2_step_status status;
            adios2_begin_step(engine, adios2_step_mode_append, -1.0f, &status);
            adios2_put(engine, var_array, array, adios2_mode_sync);
            adios2_put(engine, var_t, &t, adios2_mode_sync);
            adios2_end_step(engine);

            free(array);
        }

        adios2_close(engine);
        adios2_finalize(adios);

        MPI_Finalize();
        return 0;
    }
    """
)

# ---------------------------------------------------------------------------
# Henson reference annotation (C)
# ---------------------------------------------------------------------------

HENSON_PRODUCER_C = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <unistd.h>
    #include <time.h>
    #include <mpi.h>
    #include <henson/context.h>
    #include <henson/data.h>

    int main(int argc, char** argv)
    {
        /* MPI is initialized by the Henson runtime; puppets just query it */
        int rank, size;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &size);

        size_t n = 50;
        if (argc > 1) n = atoi(argv[1]);
        if (rank == 0) printf("Using %zu random numbers\\n", n);

        int sleep_interval = 0;
        if (argc > 2) sleep_interval = atoi(argv[2]);

        srand(time(NULL) + rank);

        int t = 0;
        while (henson_active())
        {
            if (sleep_interval) sleep(sleep_interval);

            float* array = (float*) malloc(n * sizeof(float));
            size_t i;
            for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

            float sum = 0;
            for (i = 0; i < n; ++i) sum += array[i];
            printf("[%d] Simulation [t=%d]: sum = %f\\n", rank, t, sum);

            float total_sum;
            MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
            if (rank == 0)
                printf("[%d] Simulation [t=%d]: total_sum = %f\\n", rank, t, total_sum);

            henson_save_array("array", array, sizeof(float), n, sizeof(float));
            henson_save_int("t", t);

            henson_yield();

            free(array);
            t++;
        }

        return 0;
    }
    """
)

# ---------------------------------------------------------------------------
# Parsl reference annotation (Python)
# ---------------------------------------------------------------------------

PARSL_PRODUCER_PY = dedent_strip(
    '''
    import sys
    import time

    import numpy as np
    import parsl
    from parsl import python_app
    from parsl.data_provider.files import File


    @python_app
    def simulate_step(n, t, outputs=()):
        """One simulation step as a Parsl app: writes the array, returns its sum."""
        import numpy as np
        rng = np.random.default_rng(t)
        array = rng.random(n).astype("float32")
        np.save(outputs[0].filepath, array)
        return float(array.sum())


    def main(argv):
        n = int(argv[1]) if len(argv) > 1 else 50
        iterations = int(argv[2]) if len(argv) > 2 else 3
        sleep_interval = int(argv[3]) if len(argv) > 3 else 0
        print(f"Using {n} random numbers")

        parsl.load()

        futures = []
        for t in range(iterations):
            if sleep_interval:
                time.sleep(sleep_interval)
            out = File(f"array_{t}.npy")
            futures.append(simulate_step(n, t, outputs=[out]))

        total = sum(future.result() for future in futures)
        print(f"Simulation total_sum = {total}")

        parsl.clear()


    if __name__ == "__main__":
        main(sys.argv)
    '''
)

# ---------------------------------------------------------------------------
# PyCOMPSs reference annotation (Python)
# ---------------------------------------------------------------------------

PYCOMPSS_PRODUCER_PY = dedent_strip(
    '''
    import sys
    import time

    import numpy as np
    from pycompss.api.task import task
    from pycompss.api.parameter import FILE_OUT
    from pycompss.api.api import compss_wait_on, compss_wait_on_file


    @task(fname=FILE_OUT, returns=float)
    def simulate_step(n, t, fname):
        """One simulation step as a PyCOMPSs task: writes the array to fname."""
        import numpy as np
        rng = np.random.default_rng(t)
        array = rng.random(n).astype("float32")
        np.save(fname, array)
        return float(array.sum())


    def main(argv):
        n = int(argv[1]) if len(argv) > 1 else 50
        iterations = int(argv[2]) if len(argv) > 2 else 3
        sleep_interval = int(argv[3]) if len(argv) > 3 else 0
        print(f"Using {n} random numbers")

        sums = []
        for t in range(iterations):
            if sleep_interval:
                time.sleep(sleep_interval)
            sums.append(simulate_step(n, t, f"array_{t}.npy"))

        sums = compss_wait_on(sums)
        for t in range(iterations):
            compss_wait_on_file(f"array_{t}.npy")
        print(f"Simulation total_sum = {sum(sums)}")


    if __name__ == "__main__":
        main(sys.argv)
    '''
)

_BASES = {"c": BASE_PRODUCER_C, "python": BASE_PRODUCER_PY}

_ANNOTATED = {
    "adios2": ADIOS2_PRODUCER_C,
    "henson": HENSON_PRODUCER_C,
    "parsl": PARSL_PRODUCER_PY,
    "pycompss": PYCOMPSS_PRODUCER_PY,
}


def base_producer(language: str) -> str:
    """The plain producer task code in ``language`` (``c`` or ``python``)."""
    try:
        return _BASES[language.lower()]
    except KeyError:
        raise ConfigError(f"no base producer for language {language!r}") from None


def annotated_producer(system: str) -> str:
    """The reference annotated producer for ``system``."""
    try:
        return _ANNOTATED[system.lower()]
    except KeyError:
        raise ConfigError(
            f"no annotated producer for system {system!r} "
            f"(annotation experiment covers {sorted(_ANNOTATED)})"
        ) from None
