"""Reference workflow configuration files (evaluation ground truth).

The 3-node workflow is the one in the paper's sample prompt: one producer
generating ``grid`` and ``particles`` datasets on 3 processes, consumer1
reading ``grid`` and consumer2 reading ``particles``, one process each.
The Wilkins reference is verbatim the paper's Table 6 (left).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.utils.text import dedent_strip

# ---------------------------------------------------------------------------
# Wilkins (YAML) — Table 6 left, verbatim layout
# ---------------------------------------------------------------------------

WILKINS_3NODE_YAML = dedent_strip(
    """
    tasks:
    - func: producer
      nprocs: 3
      outports:
      - filename: outfile.h5
        dsets:
        - name: /group1/grid
          file: 0
          memory: 1
        - name: /group1/particles
          file: 0
          memory: 1
    - func: consumer1
      nprocs: 1
      inports:
      - filename: outfile.h5
        dsets:
        - name: /group1/grid
          file: 0
          memory: 1
    - func: consumer2
      nprocs: 1
      inports:
      - filename: outfile.h5
        dsets:
        - name: /group1/particles
          file: 0
          memory: 1
    """
)

WILKINS_2NODE_YAML = dedent_strip(
    """
    tasks:
    - func: producer
      nprocs: 2
      outports:
      - filename: outfile.h5
        dsets:
        - name: /group1/grid
          file: 0
          memory: 1
    - func: consumer
      nprocs: 1
      inports:
      - filename: outfile.h5
        dsets:
        - name: /group1/grid
          file: 0
          memory: 1
    """
)

# ---------------------------------------------------------------------------
# ADIOS2 (XML runtime configuration)
# ---------------------------------------------------------------------------

ADIOS2_3NODE_XML = dedent_strip(
    """
    <?xml version="1.0"?>
    <adios-config>
        <io name="SimulationOutput">
            <engine type="SST">
                <parameter key="RendezvousReaderCount" value="2"/>
                <parameter key="QueueLimit" value="1"/>
            </engine>
            <variable name="grid"/>
            <variable name="particles"/>
        </io>
        <io name="GridInput">
            <engine type="SST">
                <parameter key="SpeculativePreloadMode" value="OFF"/>
            </engine>
            <variable name="grid"/>
        </io>
        <io name="ParticlesInput">
            <engine type="SST">
                <parameter key="SpeculativePreloadMode" value="OFF"/>
            </engine>
            <variable name="particles"/>
        </io>
    </adios-config>
    """
)

ADIOS2_2NODE_XML = dedent_strip(
    """
    <?xml version="1.0"?>
    <adios-config>
        <io name="SimulationOutput">
            <engine type="SST">
                <parameter key="RendezvousReaderCount" value="1"/>
            </engine>
            <variable name="grid"/>
        </io>
        <io name="AnalysisInput">
            <engine type="SST"/>
        </io>
    </adios-config>
    """
)

# ---------------------------------------------------------------------------
# Henson (hwl workflow script)
# ---------------------------------------------------------------------------

HENSON_3NODE_HWL = dedent_strip(
    """
    # 3-node workflow: producer feeding two consumers
    producer = ./producer grid particles on 3 procs
    consumer1 = ./consumer1 grid on 1 procs
    consumer2 = ./consumer2 particles on 1 procs
    """
)

HENSON_2NODE_HWL = dedent_strip(
    """
    # 2-node workflow
    producer = ./producer grid on 2 procs
    consumer = ./consumer grid on 1 procs
    """
)

_REFERENCE = {
    "wilkins": WILKINS_3NODE_YAML,
    "adios2": ADIOS2_3NODE_XML,
    "henson": HENSON_3NODE_HWL,
}

_FEWSHOT = {
    "wilkins": WILKINS_2NODE_YAML,
    "adios2": ADIOS2_2NODE_XML,
    "henson": HENSON_2NODE_HWL,
}


def reference_config(system: str) -> str:
    """The 3-node ground-truth config for ``system`` (adios2/henson/wilkins)."""
    try:
        return _REFERENCE[system.lower()]
    except KeyError:
        raise ConfigError(
            f"no reference configuration for system {system!r} "
            f"(configuration experiment covers {sorted(_REFERENCE)})"
        ) from None


def fewshot_example_config(system: str) -> str:
    """The simple 2-node example provided for few-shot prompting."""
    try:
        return _FEWSHOT[system.lower()]
    except KeyError:
        raise ConfigError(
            f"no few-shot example for system {system!r}"
        ) from None
