"""Task definition and the evaluation entry point.

:func:`evaluate` runs every sample of a task through the solver chain,
queries the model once per epoch (epoch index = GenerateConfig seed, the
paper repeats 5 times), scores each completion, and aggregates
``mean ± standard error`` per sample and per metric.  Since the runtime
refactor it is a thin wrapper over :mod:`repro.runtime`: it builds a
one-task :class:`~repro.runtime.plan.Plan` and accepts the runtime's
``executor``/``cache`` knobs, so a single evaluation parallelises and
caches exactly like a full sweep.

The paper's decoding settings are the defaults: temperature 0.2 and
top_p 0.95 — applied "to all models except o3", which the provider layer
honours by flagging ``params_applied=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.samples import Sample
from repro.core.scorers import CodeSimilarityScorer, Score
from repro.core.solvers import Solver
from repro.errors import HarnessError
from repro.llm.api import Model
from repro.llm.types import GenerateConfig
from repro.metrics.stats import Aggregate, aggregate

DEFAULT_EPOCHS = 5
PAPER_GENERATE_CONFIG = GenerateConfig(temperature=0.2, top_p=0.95)


@dataclass
class Task:
    """A dataset plus the solver chain and scorer that evaluate it."""

    name: str
    dataset: list[Sample]
    solvers: Sequence[Solver] = ()
    scorer: CodeSimilarityScorer = field(default_factory=CodeSimilarityScorer)

    def __post_init__(self) -> None:
        if not self.dataset:
            raise HarnessError(f"task {self.name!r} has an empty dataset")


@dataclass
class SampleResult:
    """Per-sample outcome: one score per epoch, plus aggregates."""

    sample: Sample
    prompt: str
    scores: list[Score]
    completions: list[str]

    def metric_values(self, metric: str) -> list[float]:
        return [s[metric] for s in self.scores]

    def aggregate(self, metric: str) -> Aggregate:
        return aggregate(self.metric_values(metric))


@dataclass
class EvalResult:
    """Full evaluation outcome for (task, model)."""

    task_name: str
    model_name: str
    epochs: int
    samples: list[SampleResult]

    def aggregate(self, metric: str) -> Aggregate:
        """Pooled aggregate over all samples and epochs."""
        values = [v for s in self.samples for v in s.metric_values(metric)]
        return aggregate(values)

    def by_sample(self, metric: str) -> dict[str, Aggregate]:
        return {s.sample.id: s.aggregate(metric) for s in self.samples}


def evaluate(
    task: Task,
    model: Model | str,
    *,
    epochs: int = DEFAULT_EPOCHS,
    config: GenerateConfig | None = None,
    run_config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> EvalResult:
    """Run ``task`` against ``model`` for ``epochs`` repeated trials.

    ``run_config`` is a :class:`~repro.runtime.config.RunConfig` bundling
    every runtime knob (the documented path; named to avoid colliding
    with ``config``, the per-call :class:`GenerateConfig`).  The
    individual knobs — ``executor`` (execution backend), ``cache``
    (result cache), ``scheduler`` (dispatch order), ``store`` (durable
    :class:`~repro.persist.RunStore`), ``scoring``, ``faults`` — remain
    as a deprecation shim and merge into the config; see
    :mod:`repro.runtime` and :mod:`repro.persist`.
    """
    # imported here: repro.runtime builds on this module's data types
    from repro.runtime import Plan, run

    plan = Plan(f"evaluate/{task.name}")
    spec = plan.add_eval(task, model, epochs=epochs, config=config)
    return run(
        plan, config=run_config, executor=executor, cache=cache,
        scheduler=scheduler, store=store, scoring=scoring, faults=faults,
    ).eval_result(spec)
