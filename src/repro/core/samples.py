"""Samples: the unit of evaluation.

A sample carries the raw experiment parameters (experiment, system or
direction, prompt variant, shot mode); solvers turn it into a prompt,
models answer, scorers compare against ``target``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Sample:
    """One prompt/target pair plus cell metadata."""

    id: str
    input: str  # the (initial) prompt text; solvers may rewrite it
    target: str  # reference artifact (ground truth)
    metadata: dict[str, Any] = field(default_factory=dict)

    def with_input(self, new_input: str) -> "Sample":
        return Sample(
            id=self.id, input=new_input, target=self.target,
            metadata=dict(self.metadata),
        )
