"""Scorers: response post-processing + similarity metrics.

:class:`CodeSimilarityScorer` reproduces the paper's evaluation: extract
the code artifact from the model's markdown response, compare against the
reference with BLEU and ChrF (sacrebleu-equivalent implementations),
report both on the 0..100 scale.

Scoring goes through the compiled-metrics engine
(:mod:`repro.metrics.compiled`): the target is compiled once per
distinct reference text (LRU-shared process-wide) and each completion is
scored against the precompiled statistics — numerically identical to the
plain :func:`~repro.metrics.bleu` / :func:`~repro.metrics.chrf` calls it
replaces, several times faster on repeated targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MetricError
from repro.metrics import bleu, chrf
from repro.metrics.compiled import (
    CompiledReference,
    bleu_compiled,
    chrf_compiled,
    compile_reference,
)
from repro.utils.text import strip_markdown_chatter

# reference implementations (kept for audits and equivalence tests)
_METRIC_FNS: dict[str, Callable[[str, str], float]] = {
    "bleu": bleu,
    "chrf": chrf,
}

# the hot-path implementations actually used for scoring
_COMPILED_FNS: dict[str, Callable[[str, CompiledReference], float]] = {
    "bleu": bleu_compiled,
    "chrf": chrf_compiled,
}


@dataclass(frozen=True)
class Score:
    """Metric values for one completion."""

    values: dict[str, float]
    answer: str  # the extracted artifact that was scored

    def __getitem__(self, metric: str) -> float:
        return self.values[metric]


@dataclass
class CodeSimilarityScorer:
    """BLEU + ChrF over the extracted code artifact."""

    metrics: tuple[str, ...] = ("bleu", "chrf")
    extractor: Callable[[str], str] = field(default=strip_markdown_chatter)

    def __post_init__(self) -> None:
        unknown = [m for m in self.metrics if m not in _METRIC_FNS]
        if unknown:
            raise MetricError(
                f"unknown metric(s) {unknown}; available: {sorted(_METRIC_FNS)}"
            )

    @property
    def fingerprint(self) -> tuple:
        """Stable identity for score memoization (see ``runtime.score_key``).

        Two scorer instances with the same metric tuple and the same
        extractor *object* produce identical scores, so they share
        score-cache entries across plans and runs.  The extractor
        callable itself is part of the key (not its name: distinct
        lambdas share a ``__qualname__`` but are different functions),
        and the reference the key holds keeps it alive while cached.
        """
        # tuple() because metrics may legally be passed as a list
        return ("code-similarity", tuple(self.metrics), self.extractor)

    def __call__(self, completion: str, target: str) -> Score:
        answer = self.extractor(completion)
        compiled = compile_reference(target)
        values = {
            name: float(_COMPILED_FNS[name](answer, compiled)) for name in self.metrics
        }
        return Score(values=values, answer=answer)
