"""Scorers: response post-processing + similarity metrics.

:class:`CodeSimilarityScorer` reproduces the paper's evaluation: extract
the code artifact from the model's markdown response, compare against the
reference with BLEU and ChrF (sacrebleu-equivalent implementations),
report both on the 0..100 scale.

Scoring goes through the vectorized kernel engine
(:mod:`repro.metrics.kernels`): the target is compiled once per
distinct reference content (LRU-shared process-wide), its n-gram
vocabulary is interned into numpy count arrays, and each completion is
scored with vectorized clipped-match counting — numerically identical
to the plain :func:`~repro.metrics.bleu` / :func:`~repro.metrics.chrf`
calls it replaces, several times faster per hypothesis.  Setting
``REPRO_METRIC_KERNELS=0`` routes scoring through the compiled
``Counter`` path instead (same scores; the equivalence tests pin this).

:meth:`CodeSimilarityScorer.score_batch` scores a whole group of
completions against one target per call — the unit the scoring pool
ships to workers, amortizing extraction setup, pickling and IPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import MetricError
from repro.metrics import bleu, chrf
from repro.metrics.compiled import (
    CompiledReference,
    bleu_compiled,
    chrf_compiled,
    compile_reference,
)
from repro.metrics.kernels import (
    bleu_kernel,
    bleu_kernel_batch,
    chrf_kernel,
    chrf_kernel_batch,
)
from repro.utils.text import strip_markdown_chatter

# reference implementations (kept for audits and equivalence tests)
_METRIC_FNS: dict[str, Callable[[str, str], float]] = {
    "bleu": bleu,
    "chrf": chrf,
}

# the compiled Counter-path implementations (the kernels' fallback and
# numerically-identical reference; REPRO_METRIC_KERNELS=0 selects these)
_COMPILED_FNS: dict[str, Callable[[str, CompiledReference], float]] = {
    "bleu": bleu_compiled,
    "chrf": chrf_compiled,
}

# the hot-path implementations actually used for scoring: vectorized
# kernels that fall back to the compiled path per reference when
# vectorization is unsupported (overflow, no numpy, opt-out)
_KERNEL_FNS: dict[str, Callable[[str, CompiledReference], float]] = {
    "bleu": bleu_kernel,
    "chrf": chrf_kernel,
}

# group-vectorized variants: score a whole list of hypotheses per call
# (element-wise bit-identical to the per-hypothesis kernels above)
_KERNEL_BATCH_FNS: dict[
    str, Callable[[Sequence[str], CompiledReference], list[float]]
] = {
    "bleu": bleu_kernel_batch,
    "chrf": chrf_kernel_batch,
}


@dataclass(frozen=True)
class Score:
    """Metric values for one completion."""

    values: dict[str, float]
    answer: str  # the extracted artifact that was scored

    def __getitem__(self, metric: str) -> float:
        return self.values[metric]


@dataclass
class CodeSimilarityScorer:
    """BLEU + ChrF over the extracted code artifact."""

    metrics: tuple[str, ...] = ("bleu", "chrf")
    extractor: Callable[[str], str] = field(default=strip_markdown_chatter)

    def __post_init__(self) -> None:
        unknown = [m for m in self.metrics if m not in _METRIC_FNS]
        if unknown:
            raise MetricError(
                f"unknown metric(s) {unknown}; available: {sorted(_METRIC_FNS)}"
            )

    @property
    def fingerprint(self) -> tuple:
        """Stable identity for score memoization (see ``runtime.score_key``).

        Two scorer instances with the same metric tuple and the same
        extractor *object* produce identical scores, so they share
        score-cache entries across plans and runs.  The extractor
        callable itself is part of the key (not its name: distinct
        lambdas share a ``__qualname__`` but are different functions),
        and the reference the key holds keeps it alive while cached.
        """
        # tuple() because metrics may legally be passed as a list
        return ("code-similarity", tuple(self.metrics), self.extractor)

    def __call__(self, completion: str, target: str) -> Score:
        answer = self.extractor(completion)
        compiled = compile_reference(target)
        values = {
            name: float(_KERNEL_FNS[name](answer, compiled)) for name in self.metrics
        }
        return Score(values=values, answer=answer)

    def score_batch(self, completions: Sequence[str], target: str) -> list[Score]:
        """Score a whole group of completions against one target.

        Element-wise identical to calling the scorer per completion —
        the target is compiled (and its kernel vocabularies interned)
        once, and each metric runs its group-vectorized kernel over all
        extracted answers in one call, which is what makes batch the
        preferred shipping unit for :meth:`ScoringPool.submit_many`
        workers and the inline scoring path.
        """
        compiled = compile_reference(target)
        answers = [self.extractor(completion) for completion in completions]
        by_metric = {
            name: _KERNEL_BATCH_FNS[name](answers, compiled)
            for name in self.metrics
        }
        return [
            Score(
                values={
                    name: float(by_metric[name][i]) for name in self.metrics
                },
                answer=answer,
            )
            for i, answer in enumerate(answers)
        ]
