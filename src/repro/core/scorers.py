"""Scorers: response post-processing + similarity metrics.

:class:`CodeSimilarityScorer` reproduces the paper's evaluation: extract
the code artifact from the model's markdown response, compare against the
reference with BLEU and ChrF (sacrebleu-equivalent implementations),
report both on the 0..100 scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MetricError
from repro.metrics import bleu, chrf
from repro.utils.text import strip_markdown_chatter

_METRIC_FNS: dict[str, Callable[[str, str], float]] = {
    "bleu": bleu,
    "chrf": chrf,
}


@dataclass(frozen=True)
class Score:
    """Metric values for one completion."""

    values: dict[str, float]
    answer: str  # the extracted artifact that was scored

    def __getitem__(self, metric: str) -> float:
        return self.values[metric]


@dataclass
class CodeSimilarityScorer:
    """BLEU + ChrF over the extracted code artifact."""

    metrics: tuple[str, ...] = ("bleu", "chrf")
    extractor: Callable[[str], str] = field(default=strip_markdown_chatter)

    def __post_init__(self) -> None:
        unknown = [m for m in self.metrics if m not in _METRIC_FNS]
        if unknown:
            raise MetricError(
                f"unknown metric(s) {unknown}; available: {sorted(_METRIC_FNS)}"
            )

    def __call__(self, completion: str, target: str) -> Score:
        answer = self.extractor(completion)
        values = {name: float(_METRIC_FNS[name](answer, target)) for name in self.metrics}
        return Score(values=values, answer=answer)
