"""Solvers: prompt construction stages.

A solver is a callable ``(Sample) -> Sample`` that rewrites the sample's
input text; a :class:`SolverChain` composes them.  The two solvers the
paper's experiments need are:

* :func:`prompt_solver` — render one of the five prompt-variant templates
  with the sample's system/code parameters;
* :func:`few_shot_solver` — append an example artifact (§4.5's few-shot
  prompting), after the base prompt has been rendered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.data.prompts import DETAILED_HINTS, FEWSHOT_SUFFIX, get_template
from repro.errors import HarnessError
from repro.core.samples import Sample

Solver = Callable[[Sample], Sample]


@dataclass
class SolverChain:
    """Apply solvers left to right."""

    solvers: Sequence[Solver]

    def __call__(self, sample: Sample) -> Sample:
        for solver in self.solvers:
            sample = solver(sample)
        return sample


def prompt_solver(variant: str = "original") -> Solver:
    """Render the experiment's prompt template for ``variant``.

    Reads from sample metadata: ``experiment``, plus ``system`` &
    ``system_display`` (configuration/annotation) or ``source``/``target``
    displays (translation), and ``code`` for the code-carrying prompts.
    """

    def solve(sample: Sample) -> Sample:
        meta = sample.metadata
        experiment = meta.get("experiment")
        if not experiment:
            raise HarnessError(f"sample {sample.id}: metadata lacks 'experiment'")
        template = get_template(experiment, variant)
        if experiment == "translation":
            text = template.body.format(
                source=meta["source_display"],
                target=meta["target_display"],
                code=meta["code"],
                api_hints=DETAILED_HINTS.get(meta["target"], ""),
            )
        elif experiment == "annotation":
            text = template.body.format(
                system=meta["system_display"],
                code=meta["code"],
                api_hints=DETAILED_HINTS.get(meta["system"], ""),
            )
        else:  # configuration
            hints = DETAILED_HINTS.get(meta["system"], "")
            text = template.body.format(
                system=meta["system_display"],
                field_hints=f" ({hints})" if hints else "",
            )
        out = sample.with_input(text)
        out.metadata["variant"] = variant
        return out

    return solve


def few_shot_solver(example: str, system_display: str) -> Solver:
    """Append a 2-node example configuration to the prompt (§4.5)."""

    def solve(sample: Sample) -> Sample:
        suffix = FEWSHOT_SUFFIX.format(system=system_display, example=example)
        out = sample.with_input(sample.input + suffix)
        out.metadata["fewshot"] = True
        return out

    return solve


def doc_context_solver(system: str, system_display: str) -> Solver:
    """Prepend a documentation excerpt naming the system's real fields.

    A RAG-lite middle ground between zero-shot and few-shot prompting: the
    model sees the valid vocabulary but no worked example (an extension
    beyond the paper; see DESIGN.md §5).
    """
    from repro.workflows import get_system

    descriptor = get_system(system)
    registry = descriptor.config_fields or descriptor.api
    fields = ", ".join(registry.names())

    def solve(sample: Sample) -> Sample:
        doc = (
            f"Documentation excerpt for the {system_display} workflow system: "
            f"valid configuration vocabulary is {fields}.\n\n"
        )
        out = sample.with_input(doc + sample.input)
        out.metadata["doccontext"] = True
        return out

    return solve


def identity_solver() -> Solver:
    """No-op solver (useful in tests)."""
    return lambda sample: sample
