"""Multi-server store client: replication, failover, hedging, spill.

:class:`ReplicatedStoreClient` presents the same transport surface as
:class:`~repro.serve.client.StoreClient` (``request`` /
``request_many`` / ``close`` / ``describe_address``), so
:class:`~repro.serve.client.RemoteRunStore` — and therefore every
sweep — runs against a replica *set* unchanged.  The semantics per
op shape:

* **writes** (``put_records`` / ``put_manifest``) go to every replica
  whose circuit breaker admits them, concurrently.  One success is
  success: the store is content-addressed, so a replica that missed a
  write is simply behind, and ``python -m repro.serve sync`` (or any
  later replayed write) heals it byte-identically.
* **reads** (and every other single-target op) try replicas in a
  stable order — healthy breakers first — and fail over on
  transport-shaped errors.  With ``hedge_s`` set, a read that the
  preferred replica has not answered within the hedge delay is
  *also* sent to the next healthy replica and the first answer wins:
  one slow replica costs the hedge delay, not its own latency.
* **degraded mode** — when a whole cycle over the replica set fails
  (typically: every breaker open), requests spill to a local journal
  store under ``spill_root``.  The journal is a real one-shard
  :class:`~repro.serve.server.StoreServer` handled in-process, so
  gets, puts and manifests behave exactly as over the wire and the
  sweep completes bit-identical offline.  On recovery,
  ``python -m repro.serve sync`` pushes the journal to the replicas.

Health comes from one :class:`~repro.runtime.health.HealthTracker` per
replica (handed to the child :class:`StoreClient`, which fail-fasts
while open and feeds every transport outcome into the rolling window);
after a cooldown, half-open probes let a restarted replica rejoin
automatically.

Every server-reported *deterministic* error (a malformed payload, an
unknown kind) propagates immediately — it would fail identically on
every replica, so failover would only mask the bug.
"""

from __future__ import annotations

import pathlib
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from typing import Any, Sequence

from repro.errors import BreakerOpenError, RemoteStoreError, StoreError
from repro.runtime.faults import FaultPolicy, RetryPolicy
from repro.runtime.health import BreakerRegistry

from repro.serve.client import RemoteRunStore, StoreClient, _as_retry

#: ops replicated to every admitted replica (content-addressed appends)
WRITE_OPS = frozenset({"put_records", "put_manifest"})

#: maintenance ops fanned out to every replica, responses concatenated
FANOUT_OPS = frozenset({"gc", "verify"})

#: ops the local journal can answer while every replica is unreachable
SPILLABLE_OPS = frozenset(
    {
        "get_records",
        "put_records",
        "put_manifest",
        "get_manifest",
        "manifests",
        "latest_manifest",
        "list_keys",
        "stats",
        "read_stats",
    }
)

#: breaker defaults for replica endpoints: trip fast (two consecutive
#: transport failures), re-probe after a short cooldown
REPLICA_BREAKER = dict(
    window=8, failure_threshold=0.5, min_samples=2, open_for_s=2.0
)

#: transport-shaped failures that justify trying the next replica
_FAILOVER_ERRORS = (RemoteStoreError, BreakerOpenError, OSError)


def _describe(addresses: Sequence[tuple[str, Any]]) -> list[str]:
    out = []
    for family, target in addresses:
        if family == "unix":
            out.append(f"unix://{target}")
        else:
            host, port = target
            out.append(f"tcp://{host}:{port}")
    return out


class ReplicatedStoreClient:
    """One logical transport over N replica servers.

    ``retry`` paces *cycles over the whole replica set* — each child
    client gets exactly one attempt per cycle, because the next replica
    (not a blind re-send to the same one) is the retry.
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, Any]],
        *,
        retry: "RetryPolicy | FaultPolicy | None" = None,
        pool_size: int = 4,
        connect_timeout: float = 10.0,
        hedge_s: float | None = None,
        spill_root: "str | pathlib.Path | None" = None,
        breaker: dict[str, Any] | None = None,
    ) -> None:
        if not addresses:
            raise StoreError("ReplicatedStoreClient needs at least one replica")
        if hedge_s is not None and hedge_s <= 0:
            raise StoreError(f"hedge_s must be positive, got {hedge_s}")
        self.retry = _as_retry(retry)
        self.hedge_s = hedge_s
        self.spill_root = (
            pathlib.Path(spill_root) if spill_root is not None else None
        )
        self.health = BreakerRegistry(**{**REPLICA_BREAKER, **(breaker or {})})
        self._urls = _describe(addresses)
        one_shot = RetryPolicy(
            max_attempts=1,
            base_delay=self.retry.base_delay,
            max_delay=self.retry.max_delay,
        )
        self.replicas = [
            StoreClient(
                address,
                retry=one_shot,
                pool_size=pool_size,
                connect_timeout=connect_timeout,
                health=self.health.get(url),
            )
            for address, url in zip(addresses, self._urls)
        ]
        self._mu = threading.Lock()
        self._spill_server = None
        self._hedge_pool: ThreadPoolExecutor | None = None
        # observability for tests, benches and operators
        self.failovers = 0
        self.hedged_reads = 0
        self.spilled_batches = 0

    # -- introspection -------------------------------------------------------

    def describe_address(self) -> str:
        return ",".join(self._urls)

    def replica_states(self) -> dict[str, str]:
        """Breaker state per replica URL (for tests and operators)."""
        return {url: self.health.get(url).state for url in self._urls}

    @property
    def degraded(self) -> bool:
        """True while every replica's breaker is open (journal territory)."""
        return all(self.health.get(url).is_open for url in self._urls)

    # -- transport surface ---------------------------------------------------

    def request(self, request: dict[str, Any]) -> dict[str, Any]:
        return self.request_many([request])[0]

    def request_many(
        self, requests: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        if not requests:
            return []
        op = str(requests[0].get("op", ""))
        if op in WRITE_OPS:
            return self._replicated_write(requests, op)
        if op in FANOUT_OPS:
            return self._fanout(requests, op)
        return self._read_with_failover(requests, op)

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()
        with self._mu:
            server, self._spill_server = self._spill_server, None
            pool, self._hedge_pool = self._hedge_pool, None
        if server is not None:
            for store in server.stores:
                store.close()
        if pool is not None:
            pool.shutdown(wait=False)

    def __enter__(self) -> "ReplicatedStoreClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes: replicate everywhere, one success suffices ------------------

    def _replicated_write(
        self, requests: Sequence[dict[str, Any]], op: str
    ) -> list[dict[str, Any]]:
        last: Exception | None = None
        responses: list[dict[str, Any]] | None = None
        if len(self.replicas) == 1:
            try:
                return self.replicas[0].request_many(requests)
            except _FAILOVER_ERRORS as exc:
                return self._spill(requests, op, exc)
        futures: dict[Future, int] = {
            self._pool().submit(replica.request_many, requests): index
            for index, replica in enumerate(self.replicas)
        }
        for future in list(futures):
            try:
                result = future.result()
            except _FAILOVER_ERRORS as exc:
                last = exc
                continue
            if responses is None:
                responses = result
        if responses is not None:
            return responses
        return self._spill(requests, op, last)

    # -- maintenance: fan out, concatenate per-replica payload lists ---------

    def _fanout(
        self, requests: Sequence[dict[str, Any]], op: str
    ) -> list[dict[str, Any]]:
        if len(requests) != 1:
            raise StoreError(f"{op} does not batch")
        last: Exception | None = None
        merged: list[Any] = []
        reached = 0
        for replica in self.replicas:
            try:
                response = replica.request(requests[0])
            except _FAILOVER_ERRORS as exc:
                last = exc
                continue
            merged.extend(response[op])
            reached += 1
        if not reached:
            raise RemoteStoreError(
                f"{op}: no replica of {self.describe_address()} reachable"
            ) from last
        return [{"ok": True, op: merged, "replicas": reached}]

    # -- reads: ordered failover, optional hedging, spill fallback -----------

    def _read_order(self) -> list[int]:
        indexes = list(range(len(self.replicas)))
        # stable: open breakers last, otherwise replica order — every
        # client prefers the same healthy replica, keeping its LRU warm
        return sorted(
            indexes, key=lambda i: self.health.get(self._urls[i]).is_open
        )

    def _read_with_failover(
        self, requests: Sequence[dict[str, Any]], op: str
    ) -> list[dict[str, Any]]:
        last: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                time.sleep(self.retry.delay(attempt - 1))
            order = self._read_order()
            try:
                responses = self._read_cycle(order, requests)
            except _FAILOVER_ERRORS as exc:
                last = exc
            else:
                return self._merge_journal(requests, responses, op)
            # a full cycle failed: the set is unreachable right now —
            # degrade to the journal rather than stalling the sweep
            if self._spillable(op):
                return self._spill(requests, op, last)
        raise RemoteStoreError(
            f"no replica of {self.describe_address()} answered "
            f"{op!r} after {self.retry.max_attempts} cycle(s): {last}"
        ) from last

    def _read_cycle(
        self, order: Sequence[int], requests: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        last: Exception | None = None
        remaining = list(order)
        while remaining:
            index = remaining.pop(0)
            hedge_to = remaining[0] if remaining else None
            try:
                if self.hedge_s is not None and hedge_to is not None:
                    return self._hedged(index, hedge_to, requests)
                return self.replicas[index].request_many(requests)
            except _FAILOVER_ERRORS as exc:
                last = exc
                with self._mu:
                    self.failovers += 1
        raise last if last is not None else RemoteStoreError("no replicas")

    def _hedged(
        self,
        primary: int,
        secondary: int,
        requests: Sequence[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """Primary with a latency hedge: after ``hedge_s`` without an
        answer, race the next replica and take the first success."""
        pool = self._pool()
        first = pool.submit(self.replicas[primary].request_many, requests)
        try:
            return first.result(timeout=self.hedge_s)
        except FutureTimeoutError:
            pass  # slow replica: hedge
        except _FAILOVER_ERRORS:
            # fast failure: let the ordinary failover loop handle it
            raise
        with self._mu:
            self.hedged_reads += 1
        second = pool.submit(self.replicas[secondary].request_many, requests)
        pending = {first, second}
        last: Exception | None = None
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    return future.result()
                except _FAILOVER_ERRORS as exc:
                    last = exc
        raise last if last is not None else RemoteStoreError("hedge failed")

    def _pool(self) -> ThreadPoolExecutor:
        with self._mu:
            if self._hedge_pool is None:
                self._hedge_pool = ThreadPoolExecutor(
                    max_workers=max(2, len(self.replicas)),
                    thread_name_prefix="repro-replica",
                )
            return self._hedge_pool

    # -- degraded mode: the local journal ------------------------------------

    def _spillable(self, op: str) -> bool:
        return self.spill_root is not None and op in SPILLABLE_OPS

    def _journal(self):
        """The journal store server, created on first use."""
        from repro.serve.server import StoreServer

        with self._mu:
            if self._spill_server is None:
                if self.spill_root is None:
                    return None
                self._spill_server = StoreServer(self.spill_root, shards=1)
            return self._spill_server

    def _journal_has_data(self) -> bool:
        if self._spill_server is not None:
            return True
        return (
            self.spill_root is not None
            and (self.spill_root / "shard-00").exists()
        )

    def _spill(
        self,
        requests: Sequence[dict[str, Any]],
        op: str,
        cause: Exception | None,
    ) -> list[dict[str, Any]]:
        if not self._spillable(op):
            raise RemoteStoreError(
                f"no replica of {self.describe_address()} reachable for "
                f"{op!r} and no spill journal configured: {cause}"
            ) from cause
        journal = self._journal()
        with self._mu:
            self.spilled_batches += 1
        return [
            StoreClient._checked(journal.handle(request))
            for request in requests
        ]

    def _merge_journal(
        self,
        requests: Sequence[dict[str, Any]],
        responses: list[dict[str, Any]],
        op: str,
    ) -> list[dict[str, Any]]:
        """Reads that raced a past outage: records written to the journal
        while the replicas were down are overlaid onto remote misses, so
        a sweep that spans an outage still sees its own writes."""
        if op != "get_records" or not self._journal_has_data():
            return responses
        journal = self._journal()
        for request, response in zip(requests, responses):
            records = response.get("records")
            if records is None:
                continue
            missing = [key for key in request["keys"] if key not in records]
            if not missing:
                continue
            local = journal.handle(
                {"op": "get_records", "kind": request["kind"], "keys": missing}
            )
            if local.get("ok"):
                records.update(local["records"])
        return responses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReplicatedStoreClient({self.describe_address()!r})"


class ReplicatedRunStore(RemoteRunStore):
    """A :class:`RemoteRunStore` whose transport is a replica set.

    ``run(plan, config=RunConfig.from_url("tcp://a:9000,tcp://b:9000"))``
    is the whole integration: every store-shaped call the runtime makes
    replicates, fails over, hedges and spills per
    :class:`ReplicatedStoreClient`.
    """

    def __init__(
        self,
        url: str,
        addresses: Sequence[tuple[str, Any]],
        *,
        retry: "RetryPolicy | FaultPolicy | None" = None,
        pool_size: int = 4,
        connect_timeout: float = 10.0,
        hedge_s: float | None = None,
        spill_root: "str | pathlib.Path | None" = None,
        breaker: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(
            url,
            client=ReplicatedStoreClient(
                addresses,
                retry=retry,
                pool_size=pool_size,
                connect_timeout=connect_timeout,
                hedge_s=hedge_s,
                spill_root=spill_root,
                breaker=breaker,
            ),
        )

    @property
    def replica_states(self) -> dict[str, str]:
        return self.client.replica_states()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReplicatedRunStore({self.url!r})"
