"""Length-prefixed JSON frames: the networked store's wire format.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 compact JSON.  Both directions speak the same
format; a connection is a sequence of request frames answered by one
response frame each, in order — which is what lets the client pipeline
a batch (write N frames, then read N responses) without any request id
bookkeeping.

Torn input is never trusted: a frame that ends mid-length or mid-body
(peer died, connection cut) raises :class:`TornFrameError`, and a clean
EOF *between* frames reads as ``None``.  Frames above :data:`MAX_FRAME`
are refused before any allocation, so a corrupt or hostile length
prefix cannot balloon memory.

Requests are ``{"op": <name>, ...}``; responses are ``{"ok": true, ...}``
or ``{"ok": false, "error": <message>, "error_type": <exception name>}``.
The op vocabulary lives in :mod:`repro.serve.server`.

Distributed tracing rides the same frames: a client with an open trace
attaches ``"trace": {"id": <trace id>, "parent": <client span id>}`` to
each request, and the server answers successful requests with a
``"spans"`` list — server-side span dicts (timed on the server's own
clock, stamped with its pid) parented to the client span, which the
client folds into its live trace.  Both fields are optional and
ignored by peers that predate them, so traced and untraced endpoints
interoperate freely.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

from repro.errors import RemoteStoreError

#: refuse frames above this many body bytes (either direction)
MAX_FRAME = 64 << 20

_LEN = struct.Struct(">I")


class TornFrameError(RemoteStoreError):
    """A frame ended mid-length or mid-body: the peer died or the link cut."""


def encode_frame(payload: dict[str, Any]) -> bytes:
    """One wire frame for ``payload`` (length prefix + compact JSON)."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    if len(body) > MAX_FRAME:
        raise RemoteStoreError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> dict[str, Any]:
    """Parse one frame body; non-object JSON is a protocol violation."""
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise RemoteStoreError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise RemoteStoreError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME:
        raise RemoteStoreError(
            f"peer announced a {length}-byte frame (MAX_FRAME is {MAX_FRAME})"
        )


# -- blocking side (the client) ----------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Exactly ``n`` bytes, ``None`` on immediate EOF, torn on partial EOF."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise TornFrameError(
                f"connection closed {got}/{n} bytes into a frame"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict[str, Any] | None:
    """One frame off a blocking socket; ``None`` on clean EOF between frames."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length)
    if body is None:
        raise TornFrameError("connection closed between length and body")
    return decode_body(body)


def write_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    sock.sendall(encode_frame(payload))


# -- asyncio side (the server) ------------------------------------------------


async def read_frame_async(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """One frame off a stream; ``None`` on clean EOF between frames."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TornFrameError(
            f"connection closed {len(exc.partial)}/{_LEN.size} bytes into a "
            "frame length"
        ) from None
    (length,) = _LEN.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TornFrameError(
            f"connection closed {len(exc.partial)}/{length} bytes into a frame"
        ) from None
    return decode_body(body)


async def write_frame_async(
    writer: asyncio.StreamWriter, payload: dict[str, Any]
) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()
