"""The store server: N local shard stores behind one socket.

:class:`StoreServer` owns ``shards`` independent
:class:`~repro.persist.RunStore` directories under one root
(``shard-00``, ``shard-01``, …) and routes every record to a shard by a
stable hash of its content key — so the shard layout is a pure function
of the data, identical for every client, and growing a deployment is a
matter of re-sharding directories, not rewriting records.  Manifests
(tiny, per-run, listed globally) all live on shard 0.

The server is a single asyncio process: each connection is one
lightweight task reading request frames in order and answering each
with exactly one response frame (see :mod:`repro.serve.protocol`).
Store calls are blocking disk I/O, so they run in worker threads via
``asyncio.to_thread`` — ``RunStore`` is thread-safe — keeping the event
loop free to multiplex many clients.  Because all tenants share the
same shard ``RunStore`` objects, they share one warm read-LRU: tenant
B's ``get_many`` is served from memory when tenant A just read the same
records.

A request that raises is answered with ``{"ok": false, "error": ...,
"error_type": ...}`` and the connection stays usable; a torn frame
closes the connection with nothing persisted (appends are atomic
group-commits that happen only after a frame fully arrives and
validates).
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import pathlib
import stat
import threading
import time
from typing import Any, Awaitable, Callable, Sequence

from repro.errors import PersistError, RemoteStoreError, ServerOverloadedError
from repro.obs import MetricsRegistry, make_span_dict
from repro.persist import RunManifest, RunStore
from repro.persist.records import RECORD_KINDS

from repro.serve.protocol import (
    TornFrameError,
    read_frame_async,
    write_frame_async,
)

#: protocol identity answered to ``ping`` — bump on incompatible changes
SERVER_ID = "repro.serve/1"


def shard_for(key: str, n_shards: int) -> int:
    """Stable shard index of one record key (pure function of the key)."""
    return int(hashlib.sha256(key.encode("utf-8")).hexdigest()[:8], 16) % n_shards


class StoreServer:
    """One process serving ``shards`` RunStore directories over sockets.

    ``root`` is the service directory; shard stores are created under it
    on first boot and re-opened on every later boot (the shard *count*
    must match what the directory was created with — a mismatch would
    silently mis-route keys, so it is refused).
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        *,
        shards: int = 2,
        fsync: bool = False,
        max_inflight: int | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise PersistError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if shards <= 0:
            raise PersistError(f"shards must be positive, got {shards}")
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        existing = sorted(self.root.glob("shard-*"))
        if existing and len(existing) != shards:
            raise PersistError(
                f"store at {self.root} was created with {len(existing)} "
                f"shards; re-serve it with --shards {len(existing)}"
            )
        self.n_shards = shards
        self.stores = [
            RunStore(self.root / f"shard-{i:02d}", fsync=fsync)
            for i in range(shards)
        ]
        self._servers: list[asyncio.base_events.Server] = []
        self._requests_served = 0
        # admission control: a max-in-flight gate plus a drain flag.
        # Refused requests get a typed retryable answer instead of a
        # dropped connection, so clients back off and replay.
        self.max_inflight = max_inflight
        self._admit_mu = threading.Lock()
        self._inflight_n = 0
        self._draining = False
        # server-held named counters (cross-process retry budgets):
        # in-memory only — a budget is per-campaign state, not data
        self._counters: dict[str, float] = {}
        # always-on server metrics: per-op latency/outcome, in-flight
        # gauge — exposed live via the `metrics` op and --metrics-file
        self.registry = MetricsRegistry()
        self._ops_total = self.registry.counter(
            "repro_server_ops_total",
            "requests handled, by op and outcome",
            ("op", "status"),
        )
        self._op_seconds = self.registry.histogram(
            "repro_server_op_seconds",
            "request handling latency, by op",
            ("op",),
        )
        self._inflight = self.registry.gauge(
            "repro_server_inflight_requests",
            "requests currently being handled",
        )

    # -- request dispatch (blocking; runs in worker threads) -----------------

    def _split_by_shard(self, keys: Sequence[str]) -> list[list[str]]:
        buckets: list[list[str]] = [[] for _ in range(self.n_shards)]
        for key in keys:
            buckets[shard_for(key, self.n_shards)].append(key)
        return buckets

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "server": SERVER_ID,
            "shards": self.n_shards,
            "root": str(self.root),
            "requests_served": self._requests_served,
        }

    def _op_get_records(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request["kind"]
        keys = request["keys"]
        if kind not in RECORD_KINDS:
            raise PersistError(f"unknown record kind {kind!r}")
        records: dict[str, dict[str, Any]] = {}
        for shard, shard_keys in enumerate(self._split_by_shard(keys)):
            if shard_keys:
                records.update(self.stores[shard].get_records(kind, shard_keys))
        return {"ok": True, "records": records}

    def _op_put_records(self, request: dict[str, Any]) -> dict[str, Any]:
        payloads = request["payloads"]
        buckets: list[list[dict[str, Any]]] = [[] for _ in range(self.n_shards)]
        for payload in payloads:
            if not isinstance(payload, dict) or not isinstance(
                payload.get("key"), str
            ):
                raise PersistError(
                    f"malformed record payload: {str(payload)[:80]!r}"
                )
            buckets[shard_for(payload["key"], self.n_shards)].append(payload)
        count = 0
        for shard, batch in enumerate(buckets):
            if batch:
                count += self.stores[shard].put_records(batch)
        return {"ok": True, "count": count}

    def _op_put_manifest(self, request: dict[str, Any]) -> dict[str, Any]:
        # parse-then-write: a malformed manifest is refused at the wire,
        # never persisted for every later manifests() to stumble over
        manifest = RunManifest.from_payload(request["manifest"])
        self.stores[0].put_manifest(manifest)
        return {"ok": True, "run_id": manifest.run_id}

    def _op_get_manifest(self, request: dict[str, Any]) -> dict[str, Any]:
        manifest = self.stores[0].manifest(request["run_id"])
        return {
            "ok": True,
            "manifest": manifest.to_payload() if manifest is not None else None,
        }

    def _op_manifests(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "manifests": [m.to_payload() for m in self.stores[0].manifests()],
        }

    def _op_latest_manifest(self, request: dict[str, Any]) -> dict[str, Any]:
        manifest = self.stores[0].latest_manifest(request.get("fingerprint"))
        return {
            "ok": True,
            "manifest": manifest.to_payload() if manifest is not None else None,
        }

    def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "stats": [store.stats().as_dict() for store in self.stores],
        }

    def _op_read_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        totals = {"read_lru_hits": 0, "read_lru_misses": 0, "bytes_read": 0}
        for store in self.stores:
            for field, value in store.read_stats().items():
                totals[field] = totals.get(field, 0) + value
        return {"ok": True, "read_stats": totals}

    def _op_list_keys(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request["kind"]
        if kind not in RECORD_KINDS:
            raise PersistError(f"unknown record kind {kind!r}")
        keys: list[str] = []
        for store in self.stores:
            keys.extend(store.keys(kind))
        return {"ok": True, "keys": sorted(keys)}

    def _op_gc(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "gc": [store.gc().as_dict() for store in self.stores]}

    def _op_verify(self, request: dict[str, Any]) -> dict[str, Any]:
        reports = []
        for index, store in enumerate(self.stores):
            report = store.verify().as_dict()
            # shard-qualify problems so the aggregated report names the
            # directory an operator must look at
            report["problems"] = [
                f"shard-{index:02d}: {problem}" for problem in report["problems"]
            ]
            reports.append(report)
        return {"ok": True, "verify": reports}

    def _op_counter_add(self, request: dict[str, Any]) -> dict[str, Any]:
        name = request["name"]
        delta = request.get("delta", 1)
        if not isinstance(name, str) or not name:
            raise PersistError(f"counter name must be a string, got {name!r}")
        if not isinstance(delta, (int, float)):
            raise PersistError(f"counter delta must be a number, got {delta!r}")
        with self._admit_mu:
            value = self._counters.get(name, 0) + delta
            self._counters[name] = value
        return {"ok": True, "name": name, "value": value}

    def _op_metrics(self, request: dict[str, Any]) -> dict[str, Any]:
        """Live server telemetry: the registry snapshot plus a summary.

        The summary pre-digests what operators ask first — per-op
        latency quantiles, per-shard record counts, uptime, in-flight —
        so a client can print it without understanding the full
        snapshot schema (which ``render_prometheus`` consumes as-is).
        """
        snapshot = self.registry.snapshot()
        per_op: dict[str, dict[str, float]] = {}
        for metric in snapshot["metrics"]:
            if metric["name"] != "repro_server_op_seconds":
                continue
            for series in metric["series"]:
                per_op[series["labels"]["op"]] = {
                    "count": series["count"],
                    "p50_s": series["p50"],
                    "p95_s": series["p95"],
                    "p99_s": series["p99"],
                }
        shards = []
        for index, store in enumerate(self.stores):
            stats = store.stats()
            shards.append(
                {
                    "shard": index,
                    "generations": stats.generations,
                    "scores": stats.scores,
                    "manifests": stats.manifests,
                    "segment_bytes": stats.segment_bytes,
                }
            )
        return {
            "ok": True,
            "metrics": snapshot,
            "summary": {
                "server": SERVER_ID,
                "uptime_seconds": snapshot["uptime_seconds"],
                "requests_served": self._requests_served,
                "in_flight": self._inflight.value(),
                "ops": per_op,
                "shards": shards,
            },
        }

    _OPS: dict[str, Callable[["StoreServer", dict[str, Any]], dict[str, Any]]] = {
        "ping": _op_ping,
        "get_records": _op_get_records,
        "put_records": _op_put_records,
        "put_manifest": _op_put_manifest,
        "get_manifest": _op_get_manifest,
        "manifests": _op_manifests,
        "latest_manifest": _op_latest_manifest,
        "stats": _op_stats,
        "read_stats": _op_read_stats,
        "metrics": _op_metrics,
        "list_keys": _op_list_keys,
        "gc": _op_gc,
        "verify": _op_verify,
        "counter_add": _op_counter_add,
    }

    def _admit(self) -> str | None:
        """Admission control: None to admit, else the refusal message."""
        with self._admit_mu:
            if self._draining:
                return "server is draining; retry against another replica"
            if (
                self.max_inflight is not None
                and self._inflight_n >= self.max_inflight
            ):
                return (
                    f"server over capacity "
                    f"({self.max_inflight} request(s) in flight)"
                )
            self._inflight_n += 1
            return None

    def drain(self) -> None:
        """Refuse every request from now on; in-flight work completes."""
        with self._admit_mu:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._admit_mu:
            return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently being handled (admission-gate view)."""
        with self._admit_mu:
            return self._inflight_n

    async def wait_drained(self, timeout_s: float = 10.0) -> bool:
        """After :meth:`drain`: await in-flight zero; False on timeout."""
        deadline = time.monotonic() + timeout_s
        while self.inflight > 0:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Answer one request dict (blocking; also the in-process test hook).

        Every request is metered (op counter, latency histogram,
        in-flight gauge).  A request carrying a ``trace`` field — the
        ``{"id", "parent"}`` context a tracing client attaches — is
        answered with a ``spans`` list: one server-side span, timed on
        the server's clock and parented to the client span that sent
        the request, which the client folds into its live trace.
        """
        op = request.get("op")
        handler = self._OPS.get(op) if isinstance(op, str) else None
        op_label = op if handler is not None else "unknown"
        trace_ctx = request.get("trace")
        refusal = self._admit()
        if refusal is not None:
            # refused, not failed: typed + retryable, and deliberately
            # outside the latency histogram (refusals are O(ns) and
            # would drown the real per-op quantiles)
            self._ops_total.inc(op=op_label, status="refused")
            return {
                "ok": False,
                "error": refusal,
                "error_type": ServerOverloadedError.__name__,
            }
        self._inflight.inc()
        start_unix = time.time()
        t0 = time.perf_counter()
        ok = True
        try:
            if handler is None:
                raise RemoteStoreError(f"unknown op {op!r}")
            response = handler(self, request)
        except Exception as exc:  # answered, not fatal: connection stays up
            ok = False
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        finally:
            elapsed = time.perf_counter() - t0
            self._inflight.dec()
            with self._admit_mu:
                self._inflight_n -= 1
            self._ops_total.inc(op=op_label, status="ok" if ok else "error")
            self._op_seconds.observe(elapsed, op=op_label)
        if not ok:
            return response
        self._requests_served += 1
        if isinstance(trace_ctx, dict):
            response["spans"] = [
                make_span_dict(
                    f"server:{op_label}",
                    parent_id=trace_ctx.get("parent"),
                    start_unix=start_unix,
                    duration_s=elapsed,
                )
            ]
        return response

    # -- asyncio plumbing ----------------------------------------------------

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_frame_async(reader)
                except (TornFrameError, RemoteStoreError, ConnectionError):
                    break  # torn or garbage frame: drop the connection
                if request is None:
                    break  # clean EOF between frames
                response = await asyncio.to_thread(self.handle, request)
                try:
                    await write_frame_async(writer, response)
                except (ConnectionError, RemoteStoreError):
                    break
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def start_tcp(self, host: str, port: int) -> tuple[str, int]:
        """Listen on TCP; returns the bound (host, port) — port 0 picks one."""
        server = await asyncio.start_server(self._client_connected, host, port)
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start_unix(self, path: str | pathlib.Path) -> str:
        """Listen on a unix socket; a stale *socket* file is replaced.

        Only something that actually is a socket is unlinked — binding
        over a regular file that happens to sit at the path would
        silently destroy data, so that is refused instead.
        """
        path = pathlib.Path(path)
        try:
            mode = path.lstat().st_mode
        except OSError:
            pass  # nothing there: clean bind
        else:
            if not stat.S_ISSOCK(mode):
                raise PersistError(
                    f"refusing to replace non-socket file at {path}"
                )
            with contextlib.suppress(OSError):
                path.unlink()
        server = await asyncio.start_unix_server(self._client_connected, str(path))
        self._servers.append(server)
        return str(path)

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's main loop)."""
        if not self._servers:
            raise RemoteStoreError("serve_forever() before any start_*()")
        waits: "list[Awaitable[None]]" = [
            server.serve_forever() for server in self._servers
        ]
        await asyncio.gather(*waits)

    async def aclose(self) -> None:
        """Stop listening and close every shard store (snapshots indexes)."""
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for store in self.stores:
            store.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreServer(root={str(self.root)!r}, shards={self.n_shards})"
