"""Store URLs: one string that names any store, local or remote.

Everywhere the harness accepts a store — ``RunConfig.from_url``, the
``--store`` flag of ``examples/reproduce_tables.py`` — the value is a
*store URL*:

* a plain path (``runs/store``, ``/var/repro/store``) opens a local
  :class:`~repro.persist.RunStore` on that directory, exactly as before;
* ``tcp://host:port`` (or ``repro+tcp://``) connects a
  :class:`~repro.serve.client.RemoteRunStore` to a TCP server;
* ``unix:///path/to.sock`` (or ``repro+unix://``) connects over a unix
  socket on the same machine — same protocol, no TCP stack;
* a comma-separated list of remote URLs
  (``tcp://a:9000,tcp://b:9000``) opens a
  :class:`~repro.serve.replicated.ReplicatedRunStore` that replicates
  writes across every server and fails reads over between them — one
  replica dying mid-sweep costs a breaker trip, not the run.

The ``repro+`` prefix exists for contexts that key behaviour off the
scheme and want it unambiguous; the short forms are canonical.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StoreError

from repro.serve.client import RemoteRunStore

#: schemes that open a RemoteRunStore; anything else is a local path
REMOTE_SCHEMES = ("tcp", "repro+tcp", "unix", "repro+unix")


def parse_store_url(url: str) -> tuple[str, Any]:
    """``("local", path)``, ``("tcp", (host, port))``, ``("unix", path)``
    or — for a comma-separated list of remote URLs —
    ``("multi", [(family, target), ...])``."""
    if "," in url and "://" in url:
        parts = [part.strip() for part in url.split(",") if part.strip()]
        addresses = []
        for part in parts:
            family, target = parse_store_url(part)
            if family in ("local", "multi"):
                raise StoreError(
                    f"malformed store URL {url!r}: every replica in a "
                    f"comma-separated list must be a remote URL"
                )
            addresses.append((family, target))
        if len(addresses) < 2:
            raise StoreError(
                f"malformed store URL {url!r}: a replica list needs at "
                f"least two remote URLs"
            )
        return ("multi", addresses)
    scheme, sep, rest = url.partition("://")
    if not sep:
        return ("local", url)
    scheme = scheme.lower()
    if scheme in ("tcp", "repro+tcp"):
        host, colon, port = rest.rstrip("/").rpartition(":")
        if not colon or not port.isdigit():
            raise StoreError(
                f"malformed store URL {url!r}: expected tcp://host:port"
            )
        return ("tcp", (host, int(port)))
    if scheme in ("unix", "repro+unix"):
        if not rest:
            raise StoreError(
                f"malformed store URL {url!r}: expected unix:///path/to.sock"
            )
        return ("unix", rest)
    raise StoreError(
        f"unknown store URL scheme {scheme!r} in {url!r}; "
        f"use a local path or one of {REMOTE_SCHEMES}"
    )


def open_store(url: str, **client_options: Any):
    """Open the store a URL names: local ``RunStore`` or ``RemoteRunStore``.

    ``client_options`` (``retry``, ``pool_size``) apply to remote URLs
    only; passing them with a local path is an error rather than a
    silent no-op.
    """
    family, target = parse_store_url(url)
    if family == "local":
        if client_options:
            raise StoreError(
                f"client options {sorted(client_options)} are meaningless "
                f"for local store path {url!r}"
            )
        from repro.persist import RunStore

        return RunStore(target)
    if family == "multi":
        from repro.serve.replicated import ReplicatedRunStore

        return ReplicatedRunStore(url, target, **client_options)
    return RemoteRunStore(url, (family, target), **client_options)
