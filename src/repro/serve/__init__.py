"""Networked store service: one shared cache for many machines.

Everything under :mod:`repro.persist` assumes the store directory is
mountable by every process that wants the warm cache.  This package
removes that assumption: :class:`StoreServer` is a long-lived asyncio
process owning N shard :class:`~repro.persist.RunStore` directories
(records routed by a stable hash of their content key) behind a small
length-prefixed JSON frame protocol over TCP and unix sockets, and
:class:`RemoteRunStore` / :class:`RemoteResultCache` /
:class:`RemoteScoreCache` are drop-in client faces for the existing
store and cache protocols — pooled connections, pipelined batches, and
deterministic reconnect-and-replay on transport faults (surfaced as the
retryable :class:`~repro.errors.RemoteStoreError`).

Quickstart::

    # one shared server
    #   python -m repro.serve --root runs/served --shards 4 --tcp 0.0.0.0:9045

    # any number of sweep processes, on any machine
    from repro.runtime import RunConfig, run

    config = RunConfig.from_url("tcp://cache-host:9045")
    result = run(plan, config=config)       # warm units never re-generate
    config.store.close()

Grids are bit-identical to the local-store path: the server stores the
same checksummed records, keyed by the same content addresses.
"""

from repro.serve.client import (
    RemoteResultCache,
    RemoteRetryBudget,
    RemoteRunStore,
    RemoteScoreCache,
    StoreClient,
)
from repro.serve.replicated import (
    ReplicatedRunStore,
    ReplicatedStoreClient,
)
from repro.serve.protocol import (
    MAX_FRAME,
    TornFrameError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.server import SERVER_ID, StoreServer, shard_for
from repro.serve.url import REMOTE_SCHEMES, open_store, parse_store_url

__all__ = [
    "StoreServer",
    "SERVER_ID",
    "shard_for",
    "StoreClient",
    "RemoteRunStore",
    "RemoteResultCache",
    "RemoteScoreCache",
    "RemoteRetryBudget",
    "ReplicatedRunStore",
    "ReplicatedStoreClient",
    "open_store",
    "parse_store_url",
    "REMOTE_SCHEMES",
    "MAX_FRAME",
    "TornFrameError",
    "encode_frame",
    "read_frame",
    "write_frame",
]
