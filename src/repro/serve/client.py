"""The store client: a local ``RunStore`` face over a remote socket.

:class:`RemoteRunStore` speaks the frame protocol to a
:class:`~repro.serve.server.StoreServer` and exposes the same surface
:func:`repro.runtime.run` already consumes from a local
:class:`~repro.persist.RunStore` — ``result_cache`` /
``score_cache()`` / ``record_run`` / ``manifest`` / ``stats()`` — so
``run(plan, config=RunConfig.from_url("tcp://host:port"))`` is the only
change a sweep needs to share one cache across machines.

Transport behaviour, in one place (:class:`StoreClient`):

* **pooling** — a small stack of connected sockets, checked out per
  request batch and returned on success, so concurrent threads of one
  process multiplex the server without a handshake per call;
* **pipelining** — a batch is written as N back-to-back frames in one
  ``sendall``, then the N responses are read in order; large
  ``get_many``/``put_many`` calls split into bounded chunks that travel
  this way, so latency is paid once per batch, not once per chunk;
* **retries** — every transport fault (refused, reset, torn frame, a
  server restart between batches) tears down the connection and replays
  the whole batch on a fresh one, on the deterministic
  :class:`~repro.runtime.faults.RetryPolicy` backoff schedule.  Replay
  is safe because the store is content-addressed: gets are reads and
  re-putting a record writes identical bytes.  Exhausted retries raise
  :class:`~repro.errors.RemoteStoreError`, which is *also* a retryable
  :class:`~repro.errors.ModelError` — so a run wrapped in a
  :class:`~repro.runtime.faults.FaultPolicy` treats a flaky store link
  like a flaky provider instead of aborting the sweep.

Errors the *server* reports (unknown op, malformed payload) re-raise as
:class:`~repro.errors.PersistError`/:class:`~repro.errors.StoreError` —
deterministic, not worth a retry.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Hashable, Iterable, Sequence

from repro.core.scorers import Score
from repro.errors import (
    BreakerOpenError,
    PersistError,
    RemoteStoreError,
    ServerOverloadedError,
    StoreError,
)
from repro.obs import (
    fold_remote_spans,
    make_span_dict,
    new_span_id,
    propagation_context,
    render_prometheus,
)
from repro.persist.manifest import RunManifest, build_manifest
from repro.persist.records import (
    GEN_KIND,
    SCORE_KIND,
    disk_score_key,
    generation_from_payload,
    generation_payload,
    score_from_payload,
    score_payload,
)
from repro.runtime.cache import ScoreCache
from repro.runtime.faults import FaultPolicy, RetryPolicy
from repro.runtime.units import Generation
from repro.stats import stats_dict

from repro.serve.protocol import encode_frame, read_frame

#: keys / records per pipelined frame — bounds frame size, not batch size
CHUNK = 512


def _as_retry(policy: "RetryPolicy | FaultPolicy | None") -> RetryPolicy:
    if policy is None:
        return RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=1.0)
    if isinstance(policy, FaultPolicy):
        return policy.retry
    return policy


class StoreClient:
    """Pooled, pipelined, retrying frame transport to one server address.

    ``address`` is ``("tcp", (host, port))`` or ``("unix", path)`` (see
    :func:`repro.serve.url.parse_store_url`).  Thread-safe: each request
    batch checks a private socket out of the pool.
    """

    def __init__(
        self,
        address: tuple[str, Any],
        *,
        retry: "RetryPolicy | FaultPolicy | None" = None,
        pool_size: int = 4,
        connect_timeout: float = 10.0,
        health: Any = None,
    ) -> None:
        family, target = address
        if family not in ("tcp", "unix"):
            raise StoreError(f"unknown address family {family!r}")
        self.address = (family, target)
        self.retry = _as_retry(retry)
        self.pool_size = pool_size
        self.connect_timeout = connect_timeout
        # optional HealthTracker: while its breaker is open, requests
        # fail fast with BreakerOpenError instead of burning connect
        # timeouts; every transport outcome feeds its rolling window
        self.health = health
        self._mu = threading.Lock()
        self._pool: list[socket.socket] = []
        self._closed = False

    # -- connection pool -----------------------------------------------------

    def _connect(self) -> socket.socket:
        family, target = self.address
        try:
            if family == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.connect_timeout)
                sock.connect(str(target))
            else:
                host, port = target
                sock = socket.create_connection(
                    (host, port), timeout=self.connect_timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise RemoteStoreError(
                f"cannot connect to store at {self.describe_address()}: {exc}"
            ) from exc
        sock.settimeout(None)
        return sock

    def _checkout(self) -> socket.socket:
        with self._mu:
            if self._closed:
                raise StoreError("store client is closed")
            if self._pool:
                return self._pool.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._mu:
            if not self._closed and len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        sock.close()

    def describe_address(self) -> str:
        family, target = self.address
        if family == "unix":
            return f"unix://{target}"
        host, port = target
        return f"tcp://{host}:{port}"

    def close(self) -> None:
        with self._mu:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            sock.close()

    # -- request path --------------------------------------------------------

    def request_many(
        self, requests: Sequence[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Pipeline a batch: N frames out, N responses back, in order.

        The whole batch replays on a fresh connection after any
        transport fault — safe because every op is idempotent.  Server
        error frames are raised (typed) after transport success.
        """
        if not requests:
            return []
        ctx = propagation_context()
        if ctx is None:
            wire = b"".join(encode_frame(request) for request in requests)
            return self._exchange(requests, wire)
        # One client span covers the whole pipelined batch; every frame
        # carries its id as the trace parent, so the server-side spans
        # nest under it.  The span id is minted up front (it must travel
        # in the frames), the span itself is folded only after transport
        # success — a replayed batch therefore never double-records.
        op = str(requests[0].get("op", "?"))
        batch_span = new_span_id()
        frame_ctx = {"id": ctx["id"], "parent": batch_span}
        wire = b"".join(
            encode_frame({**request, "trace": frame_ctx})
            for request in requests
        )
        start_unix = time.time()
        t0 = time.perf_counter()
        responses = self._exchange(requests, wire)
        spans = [
            make_span_dict(
                f"remote:{op}",
                parent_id=ctx.get("parent"),
                start_unix=start_unix,
                duration_s=time.perf_counter() - t0,
                span_id=batch_span,
            )
        ]
        for response in responses:
            spans.extend(response.get("spans") or ())
        fold_remote_spans(spans)
        return responses

    def _exchange(
        self, requests: Sequence[dict[str, Any]], wire: bytes
    ) -> list[dict[str, Any]]:
        last: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                time.sleep(self.retry.delay(attempt - 1))
            if self.health is not None and not self.health.allow():
                raise BreakerOpenError(
                    f"store at {self.describe_address()} breaker is "
                    f"{self.health.state}; request refused"
                )
            try:
                sock = self._checkout()
            except RemoteStoreError as exc:
                if self.health is not None:
                    self.health.record_failure()
                last = exc
                continue
            try:
                sock.sendall(wire)
                responses = []
                for _ in requests:
                    response = read_frame(sock)
                    if response is None:
                        raise RemoteStoreError(
                            "server closed the connection mid-batch"
                        )
                    responses.append(response)
            except (OSError, RemoteStoreError) as exc:
                sock.close()  # poisoned: never back into the pool
                if self.health is not None:
                    self.health.record_failure()
                last = exc
                continue
            self._checkin(sock)
            # transport worked; an admission-control refusal is a healthy
            # server saying "not now" — retryable, but never a breaker
            # failure (the breaker guards reachability, not load)
            if self.health is not None:
                self.health.record_success()
            overload = next(
                (
                    response
                    for response in responses
                    if not response.get("ok")
                    and response.get("error_type")
                    == ServerOverloadedError.__name__
                ),
                None,
            )
            if overload is not None:
                last = ServerOverloadedError(
                    f"store at {self.describe_address()}: "
                    f"{overload.get('error', 'overloaded')}"
                )
                continue
            return [self._checked(response) for response in responses]
        if isinstance(last, ServerOverloadedError):
            raise last
        raise RemoteStoreError(
            f"store at {self.describe_address()} unreachable after "
            f"{self.retry.max_attempts} attempts: {last}"
        ) from last

    def request(self, request: dict[str, Any]) -> dict[str, Any]:
        return self.request_many([request])[0]

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if response.get("ok"):
            return response
        error = response.get("error", "unknown server error")
        error_type = response.get("error_type", "StoreError")
        if error_type == "PersistError":
            raise PersistError(f"server: {error}")
        raise StoreError(f"server ({error_type}): {error}")


class RemoteRunStore:
    """A :class:`~repro.persist.RunStore`-shaped client for one server.

    Drop-in wherever ``runtime.run`` takes a ``store``: same
    ``result_cache`` / ``score_cache()`` / ``record_run`` / ``manifest``
    / ``manifests`` / ``latest_manifest`` / ``stats`` surface, with
    every record round-tripping through the server's shards instead of
    a local directory.  ``root`` is the URL — it only ever appears in
    messages and provenance.
    """

    def __init__(
        self,
        url: str,
        address: tuple[str, Any] | None = None,
        *,
        retry: "RetryPolicy | FaultPolicy | None" = None,
        pool_size: int = 4,
        health: Any = None,
        client: Any = None,
    ) -> None:
        self.url = url
        if client is not None:
            # an injected transport (e.g. a ReplicatedStoreClient) —
            # anything with request / request_many / close
            self.client = client
        elif address is not None:
            self.client = StoreClient(
                address, retry=retry, pool_size=pool_size, health=health
            )
        else:
            raise StoreError("RemoteRunStore needs an address or a client")
        self._result_cache: RemoteResultCache | None = None

    @property
    def root(self) -> str:
        return self.url

    # -- raw records (chunked + pipelined) -----------------------------------

    def get_records(
        self, kind: str, keys: Sequence[str]
    ) -> dict[str, dict[str, Any]]:
        keys = list(keys)
        requests = [
            {"op": "get_records", "kind": kind, "keys": keys[i : i + CHUNK]}
            for i in range(0, len(keys), CHUNK)
        ]
        records: dict[str, dict[str, Any]] = {}
        for response in self.client.request_many(requests):
            records.update(response["records"])
        return records

    def put_records(self, payloads: Sequence[dict[str, Any]]) -> int:
        payloads = list(payloads)
        requests = [
            {"op": "put_records", "payloads": payloads[i : i + CHUNK]}
            for i in range(0, len(payloads), CHUNK)
        ]
        return sum(
            response["count"] for response in self.client.request_many(requests)
        )

    # -- generations and scores ----------------------------------------------

    def get_generation(self, key: str) -> Generation | None:
        found = self.get_generations([key])
        return found.get(key)

    def get_generations(self, keys: Sequence[str]) -> dict[str, Generation]:
        return {
            key: generation_from_payload(payload)
            for key, payload in self.get_records(GEN_KIND, keys).items()
        }

    def put_generation(self, generation: Generation) -> None:
        self.put_generations([generation])

    def put_generations(self, generations: Iterable[Generation]) -> None:
        batch = [generation_payload(gen) for gen in generations]
        if batch:
            self.put_records(batch)

    def get_score(self, disk_key: str) -> Score | None:
        found = self.get_records(SCORE_KIND, [disk_key])
        payload = found.get(disk_key)
        return score_from_payload(payload) if payload is not None else None

    def put_score(self, disk_key: str, gen_key: str, score: Score) -> None:
        self.put_records([score_payload(disk_key, gen_key, score)])

    # -- runtime integration -------------------------------------------------

    @property
    def result_cache(self) -> "RemoteResultCache":
        if self._result_cache is None:
            self._result_cache = RemoteResultCache(self)
        return self._result_cache

    def score_cache(self, maxsize: int = 4096) -> "RemoteScoreCache":
        return RemoteScoreCache(self, maxsize=maxsize)

    # -- manifests -----------------------------------------------------------

    def record_run(
        self,
        *,
        plan,
        stats,
        executor: object,
        scheduler: object,
        cache: object,
        started_unix: float,
        wall_seconds: float,
        failures: Sequence = (),
        resumed_from: str | None = None,
        trace: dict | None = None,
        metrics: dict | None = None,
    ) -> RunManifest:
        """Build the manifest locally, ship the payload; same linkage rules
        as :meth:`repro.persist.RunStore.record_run` (the predecessor
        lookup asks the server for the latest same-fingerprint run)."""
        manifest = build_manifest(
            plan=plan,
            stats=stats,
            executor=executor,
            scheduler=scheduler,
            cache=cache,
            started_unix=started_unix,
            wall_seconds=wall_seconds,
            failures=failures,
            resumed_from=resumed_from,
            latest_for=self.latest_manifest,
            trace=trace,
            metrics=metrics,
        )
        self.put_manifest(manifest)
        return manifest

    def put_manifest(self, manifest: RunManifest) -> None:
        self.client.request(
            {"op": "put_manifest", "manifest": manifest.to_payload()}
        )

    def manifest(self, run_id: str) -> RunManifest | None:
        response = self.client.request({"op": "get_manifest", "run_id": run_id})
        payload = response["manifest"]
        return RunManifest.from_payload(payload) if payload is not None else None

    def manifests(self) -> list[RunManifest]:
        response = self.client.request({"op": "manifests"})
        return [RunManifest.from_payload(p) for p in response["manifests"]]

    def latest_manifest(self, fingerprint: str | None = None) -> RunManifest | None:
        response = self.client.request(
            {"op": "latest_manifest", "fingerprint": fingerprint}
        )
        payload = response["manifest"]
        return RunManifest.from_payload(payload) if payload is not None else None

    # -- maintenance (remote gc / verify / key inventory) --------------------

    def keys(self, kind: str) -> list[str]:
        """Every live record key of one kind, across all server shards."""
        return self.client.request({"op": "list_keys", "kind": kind})["keys"]

    def gc(self) -> "GCStats":
        """Compact every server shard; one aggregated :class:`GCStats`."""
        from repro.persist.store import GCStats

        payloads = self.client.request({"op": "gc"})["gc"]
        reports = [GCStats.from_dict(payload) for payload in payloads]
        merged = reports[0]
        for report in reports[1:]:
            merged = merged.merged_with(report)
        return merged

    def verify(self) -> "VerifyReport":
        """Audit every server shard; one aggregated :class:`VerifyReport`."""
        from repro.persist.store import VerifyReport

        payloads = self.client.request({"op": "verify"})["verify"]
        reports = [VerifyReport.from_dict(payload) for payload in payloads]
        merged = reports[0]
        for report in reports[1:]:
            merged = merged.merged_with(report)
        return merged

    def counter_add(self, name: str, delta: float = 1) -> float:
        """Bump a server-held named counter; returns the new value.

        The primitive behind cross-process retry budgets: every worker
        process bumps the same counter on the same server, so the
        budget is spent campaign-wide, not per-process.
        """
        response = self.client.request(
            {"op": "counter_add", "name": name, "delta": delta}
        )
        return response["value"]

    # -- introspection -------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.client.request({"op": "ping"})

    def shard_stats(self) -> "list[StoreStats]":
        from repro.persist.store import StoreStats

        response = self.client.request({"op": "stats"})
        return [StoreStats.from_dict(payload) for payload in response["stats"]]

    def stats(self) -> "StoreStats":
        """Service-wide totals as one StoreStats, rooted at the URL."""
        from repro.persist.store import StoreStats

        shards = self.shard_stats()
        return StoreStats(
            root=self.url,
            segments=sum(s.segments for s in shards),
            segment_bytes=sum(s.segment_bytes for s in shards),
            generations=sum(s.generations for s in shards),
            scores=sum(s.scores for s in shards),
            manifests=sum(s.manifests for s in shards),
            corrupt_skipped=sum(s.corrupt_skipped for s in shards),
            read_lru_hits=sum(s.read_lru_hits for s in shards),
            read_lru_misses=sum(s.read_lru_misses for s in shards),
            bytes_read=sum(s.bytes_read for s in shards),
        )

    def read_stats(self) -> dict[str, int]:
        return self.client.request({"op": "read_stats"})["read_stats"]

    def metrics(self) -> dict[str, Any]:
        """The server's live metrics: a ``repro.metrics/1`` snapshot under
        ``"metrics"`` plus the per-op/per-shard ``"summary"`` digest."""
        response = self.client.request({"op": "metrics"})
        return {
            "metrics": response["metrics"],
            "summary": response["summary"],
        }

    def dump_metrics(self) -> str:
        """The server's live metrics as Prometheus text exposition."""
        return render_prometheus(self.metrics()["metrics"])

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "RemoteRunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteRunStore({self.url!r})"


class RemoteRetryBudget:
    """A cross-process retry budget backed by a server-held counter.

    Plug into :class:`~repro.runtime.faults.FaultPolicy` as
    ``shared_budget``: every worker process pointed at the same server
    and ``name`` draws from one campaign-wide pool of retries, so a
    provider melt-down degrades into isolation fleet-wide instead of
    each process burning its own full budget.  ``try_acquire`` raising
    (server unreachable) makes the policy fall back to its local
    budget — fail open, never wedge a run on budget accounting.
    """

    def __init__(self, store: RemoteRunStore, name: str, limit: int) -> None:
        if limit < 0:
            raise StoreError(f"budget limit must be >= 0, got {limit}")
        self._store = store
        self.name = name
        self.limit = limit

    def try_acquire(self) -> bool:
        spent = self._store.counter_add(f"retry-budget:{self.name}", 1)
        return spent <= self.limit

    def spent(self) -> float:
        """How many retries the fleet has drawn so far (read-only probe)."""
        return self._store.counter_add(f"retry-budget:{self.name}", 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteRetryBudget({self.name!r}, limit={self.limit})"


class RemoteResultCache:
    """:class:`~repro.runtime.cache.ResultCache` face of a remote store.

    The fourth backend next to memory / sim-fs / disk: identical
    protocol (including batched ``get_many``/``put_many`` and the
    ``read_stats`` hook the runner samples), with entries living on the
    server's shards — shared by every process pointed at the URL.
    """

    def __init__(self, store: RemoteRunStore) -> None:
        self._store = store
        self._mu = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0

    @property
    def store(self) -> RemoteRunStore:
        return self._store

    def get(self, key: str) -> Generation | None:
        gen = self._store.get_generation(key)
        with self._mu:
            if gen is None:
                self._misses += 1
            else:
                self._hits += 1
        return gen.as_cached() if gen is not None else None

    def get_many(self, keys: Sequence[str]) -> dict[str, Generation]:
        found = self._store.get_generations(keys)
        with self._mu:
            self._hits += len(found)
            self._misses += len(keys) - len(found)
        return {key: gen.as_cached() for key, gen in found.items()}

    def put(self, generation: Generation) -> None:
        self._store.put_generation(generation)
        with self._mu:
            self._puts += 1

    def put_many(self, generations: Iterable[Generation]) -> None:
        batch = list(generations)
        self._store.put_generations(batch)
        with self._mu:
            self._puts += len(batch)

    def __len__(self) -> int:
        return self._store.stats().generations

    def __contains__(self, key: str) -> bool:
        return self._store.get_generation(key) is not None

    def read_stats(self) -> dict[str, int]:
        return self._store.read_stats()

    def stats(self) -> dict[str, int | str]:
        with self._mu:
            hits, misses, puts = self._hits, self._misses, self._puts
        store_stats = self._store.stats()
        return stats_dict(
            "result_cache",
            backend="remote",
            entries=store_stats.generations,
            hits=hits,
            misses=misses,
            puts=puts,
            read_lru_hits=store_stats.read_lru_hits,
            read_lru_misses=store_stats.read_lru_misses,
            bytes_read=store_stats.bytes_read,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteResultCache({self._store.url!r})"


class RemoteScoreCache:
    """Write-through score memo over the remote store.

    Same layering as :class:`~repro.persist.DiskScoreCache`: a local LRU
    in front, durable score records behind — here on the server's
    shards, so warm scores are shared across machines too.
    """

    def __init__(self, store: RemoteRunStore, maxsize: int = 4096) -> None:
        self._store = store
        self._memory = ScoreCache(maxsize)
        self._mu = threading.Lock()
        self._disk_hits = 0
        self._disk_puts = 0
        self._unpersistable = 0

    def get(self, key: Hashable) -> object | None:
        score = self._memory.get(key)
        if score is not None:
            return score
        dkey = disk_score_key(key)
        if dkey is None:
            return None
        score = self._store.get_score(dkey)
        if score is None:
            return None
        self._memory.put(key, score)
        with self._mu:
            self._disk_hits += 1
        return score

    def put(self, key: Hashable, score: object) -> None:
        self._memory.put(key, score)
        dkey = disk_score_key(key)
        if dkey is None or not isinstance(score, Score):
            with self._mu:
                self._unpersistable += 1
            return
        assert isinstance(key, tuple)  # disk_score_key validated the shape
        self._store.put_score(dkey, key[0], score)
        with self._mu:
            self._disk_puts += 1

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> dict[str, int | str]:
        with self._mu:
            return stats_dict(
                "score_cache",
                backend="remote",
                entries=len(self._memory),
                disk_hits=self._disk_hits,
                disk_puts=self._disk_puts,
                unpersistable=self._unpersistable,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteScoreCache({self._store.url!r}, entries={len(self)})"
