"""``python -m repro.serve`` — boot a store server from the shell.

Typical service::

    python -m repro.serve --root runs/served --shards 4 --tcp 0.0.0.0:9045

Same-machine sharing without TCP::

    python -m repro.serve --root runs/served --unix /tmp/repro-store.sock

``--tcp host:0`` binds an ephemeral port; ``--ready-file PATH`` writes
one JSON object with the *bound* endpoints once listening (the file CI
and tests poll instead of racing the boot).  SIGINT/SIGTERM shut down
cleanly: listeners close first, then every shard store snapshots its
index.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import pathlib
import signal
import sys
from typing import Any

from repro.errors import ReproError

from repro.serve.server import StoreServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="serve a sharded run store over TCP and/or a unix socket",
    )
    parser.add_argument(
        "--root", required=True, help="service directory holding the shard stores"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of shard stores (must match the directory once created)",
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on TCP (PORT 0 binds an ephemeral port)",
    )
    parser.add_argument("--unix", metavar="PATH", help="listen on a unix socket")
    parser.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write bound endpoints as JSON once listening",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every shard append (durability over throughput)",
    )
    return parser


def _parse_tcp(value: str) -> tuple[str, int]:
    host, colon, port = value.rpartition(":")
    if not colon or not port.isdigit():
        raise SystemExit(f"--tcp expects HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


async def _serve(args: argparse.Namespace) -> int:
    server = StoreServer(args.root, shards=args.shards, fsync=args.fsync)
    endpoints: dict[str, Any] = {"shards": server.n_shards}
    if args.tcp:
        host, port = await server.start_tcp(*_parse_tcp(args.tcp))
        endpoints["tcp"] = [host, port]
        print(f"listening on tcp://{host}:{port}", flush=True)
    if args.unix:
        path = await server.start_unix(args.unix)
        endpoints["unix"] = path
        print(f"listening on unix://{path}", flush=True)
    if args.ready_file:
        pathlib.Path(args.ready_file).write_text(json.dumps(endpoints))

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop.set)
    serve_task = asyncio.ensure_future(server.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait(
            [serve_task, stop_task], return_when=asyncio.FIRST_COMPLETED
        )
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        await server.aclose()
        print("store server stopped", flush=True)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.tcp and not args.unix:
        build_parser().error("give at least one of --tcp / --unix")
    try:
        return asyncio.run(_serve(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
