"""``python -m repro.serve`` — boot a store server from the shell.

Typical service::

    python -m repro.serve --root runs/served --shards 4 --tcp 0.0.0.0:9045

Same-machine sharing without TCP::

    python -m repro.serve --root runs/served --unix /tmp/repro-store.sock

``--tcp host:0`` binds an ephemeral port; ``--ready-file PATH`` writes
one JSON object with the *bound* endpoints once listening (the file CI
and tests poll instead of racing the boot).  ``--metrics-file PATH``
dumps the server's live metrics as Prometheus text every
``--metrics-interval`` seconds (atomic replace, so a node-exporter
textfile collector can scrape it) and once more at shutdown.

SIGINT/SIGTERM **drain**: the server immediately refuses new frames
(typed, retryable ``ServerOverloadedError`` — clients fail over or
back off), finishes what is in flight (bounded by ``--drain-grace``
seconds), then closes listeners and snapshots every shard index.  On
the way out the unix socket path and the ready file are removed, so a
restart on the same paths starts clean.  ``--max-inflight N`` arms the
same admission gate against overload during normal operation.

``python -m repro.serve sync …`` is replica reconciliation — see
:mod:`repro.serve.sync`.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import pathlib
import signal
import sys
from typing import Any

from repro.errors import ReproError
from repro.obs import render_prometheus

from repro.serve.server import StoreServer


def _dump_metrics(server: StoreServer, path: pathlib.Path) -> None:
    """Atomically replace ``path`` with the registry's Prometheus text."""
    text = render_prometheus(server.registry.snapshot())
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    tmp.replace(path)


async def _metrics_pump(
    server: StoreServer, path: pathlib.Path, interval: float
) -> None:
    while True:
        await asyncio.sleep(max(interval, 0.1))
        _dump_metrics(server, path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="serve a sharded run store over TCP and/or a unix socket",
    )
    parser.add_argument(
        "--root", required=True, help="service directory holding the shard stores"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of shard stores (must match the directory once created)",
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on TCP (PORT 0 binds an ephemeral port)",
    )
    parser.add_argument("--unix", metavar="PATH", help="listen on a unix socket")
    parser.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write bound endpoints as JSON once listening",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every shard append (durability over throughput)",
    )
    parser.add_argument(
        "--metrics-file",
        metavar="PATH",
        help="dump live metrics as Prometheus text to PATH periodically "
        "and at shutdown (atomic replace; textfile-collector friendly)",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=15.0,
        help="seconds between --metrics-file dumps (default 15)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission control: refuse (typed, retryable) beyond N "
        "concurrently handled requests",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait up to this long for in-flight "
        "requests before closing (default 10)",
    )
    return parser


def _parse_tcp(value: str) -> tuple[str, int]:
    host, colon, port = value.rpartition(":")
    if not colon or not port.isdigit():
        raise SystemExit(f"--tcp expects HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


async def _serve(args: argparse.Namespace) -> int:
    server = StoreServer(
        args.root,
        shards=args.shards,
        fsync=args.fsync,
        max_inflight=args.max_inflight,
    )
    endpoints: dict[str, Any] = {"shards": server.n_shards}
    if args.tcp:
        host, port = await server.start_tcp(*_parse_tcp(args.tcp))
        endpoints["tcp"] = [host, port]
        print(f"listening on tcp://{host}:{port}", flush=True)
    if args.unix:
        path = await server.start_unix(args.unix)
        endpoints["unix"] = path
        print(f"listening on unix://{path}", flush=True)
    if args.ready_file:
        pathlib.Path(args.ready_file).write_text(json.dumps(endpoints))

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop.set)
    metrics_path = (
        pathlib.Path(args.metrics_file) if args.metrics_file else None
    )
    serve_task = asyncio.ensure_future(server.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    tasks = [serve_task, stop_task]
    if metrics_path is not None:
        _dump_metrics(server, metrics_path)  # exists as soon as we listen
        tasks.append(
            asyncio.ensure_future(
                _metrics_pump(server, metrics_path, args.metrics_interval)
            )
        )
    try:
        await asyncio.wait(
            [serve_task, stop_task], return_when=asyncio.FIRST_COMPLETED
        )
        if stop_task.done() and not serve_task.done():
            # graceful drain: refuse new frames, finish in-flight ones
            server.drain()
            print("draining: refusing new requests", flush=True)
            if not await server.wait_drained(args.drain_grace):
                print(
                    f"drain grace ({args.drain_grace}s) elapsed with "
                    f"{server.inflight} request(s) still in flight",
                    flush=True,
                )
    finally:
        for task in tasks:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        if metrics_path is not None:
            _dump_metrics(server, metrics_path)  # final totals
        await server.aclose()
        # leave nothing stale behind: a restart on the same --unix /
        # --ready-file paths must start clean
        for stale in (args.unix, args.ready_file):
            if stale:
                with contextlib.suppress(OSError):
                    pathlib.Path(stale).unlink()
        print("store server stopped", flush=True)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sync":
        from repro.serve.sync import main as sync_main

        return sync_main(argv[1:])
    args = build_parser().parse_args(argv)
    if not args.tcp and not args.unix:
        build_parser().error("give at least one of --tcp / --unix")
    try:
        return asyncio.run(_serve(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
