"""``python -m repro.serve sync`` — reconcile replicas and spill journals.

After an outage, the replica set is inconsistent in two ways:

* a replica that was down missed the writes its peers took (the
  :class:`~repro.serve.replicated.ReplicatedStoreClient` accepts a
  write once *any* replica has it);
* a 100%-unreachable period spilled writes into a client's local
  journal directory, which no replica has seen at all.

Both heal the same way, because every record is content-addressed:
compute the union of live record keys across the journal and every
replica, then push each replica the records it is missing (and every
manifest it has not seen, keyed by run id).  Re-pushing something a
replica already has would merely append identical bytes for gc to
drop, but the key inventory (the servers' ``list_keys`` op) makes the
push exact instead.

Usage::

    python -m repro.serve sync tcp://a:9045 tcp://b:9045
    python -m repro.serve sync --journal runs/spill --prune \\
        tcp://a:9045 tcp://b:9045

``--journal`` names the spill directory a degraded client wrote
(``spill_root``); ``--prune`` deletes it after every replica has
everything it held.  With no journal, ``sync`` is replica-to-replica
anti-entropy on its own.
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import sys
from typing import Any, Sequence

from repro.errors import ReproError, StoreError
from repro.persist import RunStore
from repro.persist.records import RECORD_KINDS

from repro.serve.client import CHUNK, RemoteRunStore
from repro.serve.url import parse_store_url


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve sync",
        description="push missing records/manifests to every replica "
        "(journal -> replicas, replicas <-> replicas)",
    )
    parser.add_argument(
        "urls", nargs="+", metavar="URL",
        help="replica store URLs (tcp:// or unix://)",
    )
    parser.add_argument(
        "--journal", metavar="DIR",
        help="spill journal directory written by a degraded client",
    )
    parser.add_argument(
        "--prune", action="store_true",
        help="delete the journal once every replica holds its contents",
    )
    return parser


def _open_journal(path: pathlib.Path) -> list[RunStore]:
    if not path.exists():
        raise StoreError(f"journal directory {path} does not exist")
    shard_dirs = sorted(path.glob("shard-*"))
    if not shard_dirs:
        raise StoreError(f"{path} holds no shard stores; not a journal")
    return [RunStore(shard) for shard in shard_dirs]


def _journal_records(
    stores: Sequence[RunStore], kind: str
) -> dict[str, dict[str, Any]]:
    records: dict[str, dict[str, Any]] = {}
    for store in stores:
        keys = store.keys(kind)
        if keys:
            records.update(store.get_records(kind, keys))
    return records


def _fetch(
    replica: RemoteRunStore, kind: str, keys: Sequence[str]
) -> dict[str, dict[str, Any]]:
    return replica.get_records(kind, list(keys)) if keys else {}


def sync(
    urls: Sequence[str],
    journal: "pathlib.Path | None" = None,
    prune: bool = False,
) -> dict[str, Any]:
    """Reconcile; returns a summary dict (the CLI prints it)."""
    for url in urls:
        family, _ = parse_store_url(url)
        if family in ("local", "multi"):
            raise StoreError(
                f"sync expects individual replica URLs, got {url!r}"
            )
    journal_stores = _open_journal(journal) if journal is not None else []
    replicas = [
        RemoteRunStore(url, parse_store_url(url)) for url in urls
    ]
    summary: dict[str, Any] = {
        "replicas": {url: {"records": 0, "manifests": 0} for url in urls},
        "journal_records": 0,
        "journal_manifests": 0,
    }
    try:
        for kind in RECORD_KINDS:
            journal_records = _journal_records(journal_stores, kind)
            summary["journal_records"] += len(journal_records)
            inventories = [set(replica.keys(kind)) for replica in replicas]
            union = set(journal_records)
            for inventory in inventories:
                union |= inventory
            # fetch each remote-only record once, from the first holder
            fetched: dict[str, dict[str, Any]] = {}
            for index, inventory in enumerate(inventories):
                wanted = [
                    key for key in sorted(inventory)
                    if key not in journal_records and key not in fetched
                    and any(key not in other for other in inventories)
                ]
                fetched.update(_fetch(replicas[index], kind, wanted))
            for index, (url, replica) in enumerate(zip(urls, replicas)):
                missing = sorted(union - inventories[index])
                payloads = [
                    journal_records.get(key) or fetched.get(key)
                    for key in missing
                ]
                payloads = [p for p in payloads if p is not None]
                for start in range(0, len(payloads), CHUNK):
                    replica.put_records(payloads[start:start + CHUNK])
                summary["replicas"][url]["records"] += len(payloads)

        # manifests: union by run id, journal first
        journal_manifests = {
            manifest.run_id: manifest
            for store in journal_stores
            for manifest in store.manifests()
        }
        summary["journal_manifests"] = len(journal_manifests)
        replica_manifests = [
            {m.run_id: m for m in replica.manifests()} for replica in replicas
        ]
        all_manifests = dict(journal_manifests)
        for held in replica_manifests:
            for run_id, manifest in held.items():
                all_manifests.setdefault(run_id, manifest)
        for index, (url, replica) in enumerate(zip(urls, replicas)):
            for run_id, manifest in sorted(all_manifests.items()):
                if run_id not in replica_manifests[index]:
                    replica.put_manifest(manifest)
                    summary["replicas"][url]["manifests"] += 1
    finally:
        for replica in replicas:
            replica.close()
        for store in journal_stores:
            store.close()

    if prune and journal is not None:
        shutil.rmtree(journal)
        summary["pruned"] = str(journal)
    return summary


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    journal = pathlib.Path(args.journal) if args.journal else None
    if args.prune and journal is None:
        build_parser().error("--prune needs --journal")
    try:
        summary = sync(args.urls, journal=journal, prune=args.prune)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if journal is not None:
        print(
            f"journal: {summary['journal_records']} record(s), "
            f"{summary['journal_manifests']} manifest(s)"
        )
    for url, pushed in summary["replicas"].items():
        print(
            f"{url}: pushed {pushed['records']} record(s), "
            f"{pushed['manifests']} manifest(s)"
        )
    if summary.get("pruned"):
        print(f"pruned journal {summary['pruned']}")
    print("replicas converged")
    return 0
