"""Durable record encoding for the on-disk run store.

Every persisted entry — a generation or a memoized score — is one
*record*: a single line of the form ::

    <sha256 hex of payload> <compact JSON payload>\\n

The checksum covers the exact payload bytes, so a flipped bit, a torn
write (process killed mid-append), or a truncated tail is detected on
read and the record is skipped rather than trusted.  Payloads are
canonical JSON (sorted keys, no whitespace, ASCII-escaped) so the same
logical record always produces the same bytes — and therefore the same
checksum — on every platform and in every process.

Two record kinds exist:

* ``gen`` — one :class:`~repro.runtime.units.Generation`, addressed by
  its content key (:func:`repro.runtime.units.generation_key`);
* ``score`` — one memoized :class:`~repro.core.scorers.Score`, addressed
  by :func:`disk_score_key` (a digest of the in-memory
  :func:`repro.runtime.runner.score_key` tuple).  The payload carries the
  generation key it was scored for, so GC can drop orphaned scores.

Score keys are only persistable when the scorer's fingerprint is
*stable* across processes: plain data plus module-level functions.  A
lambda or a bound method has no cross-process identity, so such scores
stay in the in-memory layer only (see :func:`stable_fingerprint_token`).
"""

from __future__ import annotations

import hashlib
import json
import types
from typing import Any, Hashable

from repro.core.scorers import Score
from repro.errors import RecordCorruptError
from repro.llm.types import ModelUsage
from repro.runtime.units import Generation

GEN_KIND = "gen"
SCORE_KIND = "score"
RECORD_KINDS = (GEN_KIND, SCORE_KIND)


def encode_payload(payload: dict[str, Any]) -> bytes:
    """Canonical JSON bytes for ``payload`` (stable across processes)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def encode_record(payload: dict[str, Any]) -> bytes:
    """One checksummed record line (including the trailing newline)."""
    body = encode_payload(payload)
    digest = hashlib.sha256(body).hexdigest()
    return digest.encode("ascii") + b" " + body + b"\n"


def decode_record(line: "bytes | memoryview") -> dict[str, Any]:
    """Parse and verify one record line; raises :class:`RecordCorruptError`.

    Accepts ``bytes`` (the pread path) or a ``memoryview`` (a zero-copy
    slice of an mmapped segment): the checksum is computed straight off
    the buffer — :mod:`hashlib` consumes memoryviews without copying —
    and only the payload body is materialized, for the JSON parse.
    """
    if isinstance(line, memoryview):
        n = line.nbytes
        if n == 0 or line[n - 1] != 0x0A:
            raise RecordCorruptError("unterminated record (torn tail)")
        # the record format is fixed-layout: 64 hex digest, one space,
        # payload, newline — anything else fails the checksum anyway
        if n < 66 or line[64] != 0x20:
            raise RecordCorruptError("malformed record: no checksum separator")
        digest = bytes(line[:64])
        body = line[65 : n - 1]
    else:
        if not line.endswith(b"\n"):
            raise RecordCorruptError("unterminated record (torn tail)")
        stripped = line[:-1]
        digest, sep, body = stripped.partition(b" ")
        if not sep:
            raise RecordCorruptError("malformed record: no checksum separator")
    if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
        raise RecordCorruptError("checksum mismatch")
    try:
        # decode to str before json.loads: bytes input would pay a
        # detect_encoding regex pass per record on the read hot path
        payload = json.loads(str(body, "utf-8"))
    except ValueError as exc:  # pragma: no cover - checksum catches this first
        raise RecordCorruptError(f"payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("kind") not in RECORD_KINDS:
        raise RecordCorruptError(f"unknown record kind {payload!r:.80}")
    return payload


def index_key(kind: str, key: str) -> str:
    """The store-index key for one record: ``<kind>:<content key>``."""
    return f"{kind}:{key}"


# -- generations --------------------------------------------------------------


def generation_payload(gen: Generation) -> dict[str, Any]:
    return {
        "kind": GEN_KIND,
        "key": gen.key,
        "model": gen.model,
        "completion": gen.completion,
        "elapsed_s": gen.elapsed_s,
        **gen.usage.as_dict(),
    }


def generation_from_payload(payload: dict[str, Any]) -> Generation:
    return Generation(
        key=payload["key"],
        model=payload["model"],
        completion=payload["completion"],
        usage=ModelUsage.from_dict(payload),
        cached=False,  # callers mark cache provenance via as_cached()
        elapsed_s=payload["elapsed_s"],
    )


# -- scores --------------------------------------------------------------


def score_payload(disk_key: str, gen_key: str, score: Score) -> dict[str, Any]:
    return {
        "kind": SCORE_KIND,
        "key": disk_key,
        "gen": gen_key,
        "values": dict(score.values),
        "answer": score.answer,
    }


def score_from_payload(payload: dict[str, Any]) -> Score:
    return Score(values=dict(payload["values"]), answer=payload["answer"])


def stable_fingerprint_token(obj: object) -> str | None:
    """A cross-process identity string for one fingerprint element.

    Plain data (str/int/float/bool/None) and nested tuples/lists of it
    are rendered directly; module-level functions become
    ``module:qualname``.  Anything whose identity dies with the process
    — lambdas, locally defined functions, bound methods, arbitrary
    objects — returns ``None``, which marks the whole fingerprint
    unpersistable.
    """
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        tokens = [stable_fingerprint_token(item) for item in obj]
        if any(token is None for token in tokens):
            return None
        return "(" + ",".join(tokens) + ")"  # type: ignore[arg-type]
    if isinstance(obj, (types.FunctionType, types.BuiltinFunctionType)):
        qualname = getattr(obj, "__qualname__", "")
        module = getattr(obj, "__module__", "")
        if module and qualname and "<lambda>" not in qualname and "<locals>" not in qualname:
            return f"{module}:{qualname}"
    return None


def disk_score_key(key: Hashable) -> str | None:
    """Durable digest of one :func:`repro.runtime.runner.score_key` tuple.

    Returns ``None`` when the scorer fingerprint has no stable
    cross-process identity — such entries are memoized in memory only.
    """
    if not (isinstance(key, tuple) and len(key) == 3):
        return None
    gen_key, target_hash, fingerprint = key
    if not (isinstance(gen_key, str) and isinstance(target_hash, str)):
        return None
    token = stable_fingerprint_token(fingerprint)
    if token is None:
        return None
    body = "\x1f".join((gen_key, target_hash, token)).encode("utf-8")
    return hashlib.sha256(body).hexdigest()
