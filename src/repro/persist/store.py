"""The durable run store: content-addressed records + run manifests.

Layout of one store directory::

    store/
      LOCK                    advisory lockfile (fcntl; see locking.py)
      index.json              index snapshot (optional; rebuilt if stale)
      segments/
        segment-000001.seg    append-only checksummed records (gen + score)
        segment-000002.seg    …rotated past max_segment_bytes, or by GC
      manifests/
        run-….json            one RunManifest per recorded run

N processes may share one store concurrently: appends happen under the
exclusive lock (first scanning any bytes other writers added, so the
in-memory index never goes blind), reads and scans under the shared
lock.  The in-memory index maps ``kind:key`` to ``(segment, offset)``;
record payloads stay on disk and are read on demand, so a store with
many thousands of generations costs the process only its key table.

Crash safety comes from per-record checksums (a torn tail decodes as
one corrupt record, skipped with a warning and healed by the next
writer) and from write-temp-then-rename for every whole-file write
(index snapshot, compacted segments, manifests).

:meth:`RunStore.gc` is the compaction pass: it rewrites all *live*
records (the newest per key, minus corrupt lines and score entries
whose generation vanished) into one fresh segment and deletes the old
ones.  :meth:`RunStore.verify` is the auditor: a full checksum scan of
every segment plus a parse of every manifest.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from repro.core.scorers import Score
from repro.errors import PersistError, RecordCorruptError, StoreError
from repro.runtime.cache import ScoreCache
from repro.runtime.units import Generation

from repro.persist.locking import FileLock
from repro.persist.manifest import RunManifest, make_run_id, plan_fingerprint
from repro.persist.records import (
    GEN_KIND,
    SCORE_KIND,
    decode_record,
    disk_score_key,
    encode_record,
    generation_from_payload,
    generation_payload,
    index_key,
    score_from_payload,
    score_payload,
)
from repro.persist.segments import (
    append_blobs,
    list_segments,
    scan_records,
    segment_name,
    segment_number,
    warn_corrupt,
    write_atomic,
)

INDEX_VERSION = 1


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time shape of one store."""

    root: str
    segments: int
    segment_bytes: int
    generations: int
    scores: int
    manifests: int
    corrupt_skipped: int  # corrupt records seen by this process's scans

    def describe(self) -> str:
        return (
            f"store {self.root}: {self.generations} generation(s), "
            f"{self.scores} score(s), {self.manifests} manifest(s) in "
            f"{self.segments} segment(s) / {self.segment_bytes} bytes"
            + (f"; {self.corrupt_skipped} corrupt record(s) skipped"
               if self.corrupt_skipped else "")
        )


@dataclass(frozen=True)
class VerifyReport:
    """Result of a full store audit."""

    segments: int
    records: int
    generations: int
    scores: int
    stale: int  # superseded duplicates awaiting GC
    manifests: int
    problems: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        status = "clean" if self.clean else f"{len(self.problems)} problem(s)"
        lines = [
            f"verify: {status} — {self.records} record(s) "
            f"({self.generations} generation(s), {self.scores} score(s), "
            f"{self.stale} stale) in {self.segments} segment(s), "
            f"{self.manifests} manifest(s)"
        ]
        lines += [f"  - {problem}" for problem in self.problems]
        return "\n".join(lines)


@dataclass(frozen=True)
class GCStats:
    """What one compaction pass reclaimed."""

    records_before: int
    records_after: int
    corrupt_dropped: int
    stale_dropped: int
    orphan_scores_dropped: int
    bytes_before: int
    bytes_after: int

    def describe(self) -> str:
        return (
            f"gc: {self.records_before} -> {self.records_after} record(s) "
            f"({self.stale_dropped} stale, {self.corrupt_dropped} corrupt, "
            f"{self.orphan_scores_dropped} orphan score(s) dropped), "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )


class RunStore:
    """One on-disk store directory shared by any number of processes."""

    def __init__(
        self,
        root: str | pathlib.Path,
        *,
        create: bool = True,
        max_segment_bytes: int = 8 << 20,
        fsync: bool = False,
    ) -> None:
        if max_segment_bytes <= 0:
            raise PersistError(
                f"max_segment_bytes must be positive, got {max_segment_bytes}"
            )
        self.root = pathlib.Path(root)
        self._segments_dir = self.root / "segments"
        self._manifests_dir = self.root / "manifests"
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store path {self.root} is not a directory")
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
            self._segments_dir.mkdir(exist_ok=True)
            self._manifests_dir.mkdir(exist_ok=True)
        elif not (self._segments_dir.is_dir() and self._manifests_dir.is_dir()):
            # opening read-only (the CLI) must neither scaffold missing
            # directories nor report a typo'd path as a clean empty store
            raise StoreError(f"no store at {self.root}")
        self.max_segment_bytes = max_segment_bytes
        self.fsync = fsync
        self._lock = FileLock(self.root / "LOCK")
        self._mu = threading.Lock()  # guards the in-memory index
        self._index: dict[str, tuple[str, int]] = {}
        self._scanned: dict[str, int] = {}  # segment name -> bytes indexed
        self._corrupt_skipped = 0
        self._result_cache: DiskResultCache | None = None
        self._load_index_snapshot()
        self.refresh()

    # -- index maintenance ---------------------------------------------------

    def _snapshot_path(self) -> pathlib.Path:
        return self.root / "index.json"

    def _load_index_snapshot(self) -> None:
        """Seed the index from ``index.json`` when it still matches disk."""
        path = self._snapshot_path()
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or payload.get("version") != INDEX_VERSION:
            return
        scanned = payload.get("scanned")
        entries = payload.get("entries")
        if not isinstance(scanned, dict) or not isinstance(entries, dict):
            return
        for name, offset in scanned.items():
            seg = self._segments_dir / name
            if segment_number(name) is None or not seg.is_file():
                return  # segment vanished (GC elsewhere): rebuild from scratch
            if not isinstance(offset, int) or seg.stat().st_size < offset:
                return  # segment shrank: snapshot is from another universe
        for key, entry in entries.items():
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or entry[0] not in scanned
            ):
                return
        self._scanned = {name: offset for name, offset in scanned.items()}
        self._index = {key: (entry[0], entry[1]) for key, entry in entries.items()}

    def write_index_snapshot(self) -> None:
        """Persist the index so the next open skips the full scan."""
        with self._mu:
            payload = {
                "version": INDEX_VERSION,
                "scanned": dict(self._scanned),
                "entries": {key: list(entry) for key, entry in self._index.items()},
            }
        blob = json.dumps(payload, sort_keys=True).encode("ascii")
        with self._lock.exclusive():
            write_atomic(self._snapshot_path(), blob)

    def _note_corrupt(self, path: pathlib.Path, offset: int, reason: str) -> None:
        self._corrupt_skipped += 1
        warn_corrupt(path, offset, reason)

    def _scan_locked(self) -> None:
        """Index every byte other processes appended since the last scan.

        Caller holds ``self._mu`` and at least the shared file lock.  A
        segment set that lost members (GC in another process) invalidates
        the whole index and forces a rebuild.
        """
        segments = list_segments(self._segments_dir)
        names = {seg.name for seg in segments}
        if any(name not in names for name in self._scanned):
            self._index.clear()
            self._scanned.clear()
        for seg in segments:
            size = seg.stat().st_size
            start = self._scanned.get(seg.name, 0)
            if size <= start:
                continue
            for offset, payload in scan_records(
                seg, start, on_corrupt=self._note_corrupt
            ):
                self._index[index_key(payload["kind"], payload["key"])] = (
                    seg.name,
                    offset,
                )
            # consume up to the last terminated line only: a torn tail
            # stays unconsumed so its healed rewrite is rescanned later
            self._scanned[seg.name] = self._terminated_end(seg, start, size)

    @staticmethod
    def _terminated_end(seg: pathlib.Path, start: int, size: int) -> int:
        """Offset just past the last newline in ``seg[start:size]``."""
        with seg.open("rb") as handle:
            handle.seek(start)
            data = handle.read(size - start)
        last_nl = data.rfind(b"\n")
        return start + last_nl + 1 if last_nl >= 0 else start

    def refresh(self) -> None:
        """Pick up records appended by other processes."""
        with self._mu:
            with self._lock.shared():
                self._scan_locked()

    # -- record I/O ----------------------------------------------------------

    def _active_segment_locked(self) -> pathlib.Path:
        """The segment new appends go to (rotating past the size cap)."""
        segments = list_segments(self._segments_dir)
        if not segments:
            return self._segments_dir / segment_name(1)
        active = segments[-1]
        if active.stat().st_size >= self.max_segment_bytes:
            number = segment_number(active.name) or 0
            return self._segments_dir / segment_name(number + 1)
        return active

    def _append_payloads(self, payloads: list[dict[str, Any]]) -> None:
        if not payloads:
            return
        blobs = [encode_record(payload) for payload in payloads]
        with self._mu:
            with self._lock.exclusive():
                # first index what other writers appended, so our offsets
                # never shadow unscanned foreign bytes
                self._scan_locked()
                seg = self._active_segment_locked()
                offsets = append_blobs(seg, blobs, fsync=self.fsync)
                for payload, offset in zip(payloads, offsets):
                    self._index[index_key(payload["kind"], payload["key"])] = (
                        seg.name,
                        offset,
                    )
                self._scanned[seg.name] = seg.stat().st_size

    def _read_record(self, kind: str, key: str) -> dict[str, Any] | None:
        ikey = index_key(kind, key)
        refreshed = False
        while True:
            with self._mu:
                entry = self._index.get(ikey)
            if entry is None:
                if refreshed:
                    return None
                self.refresh()
                refreshed = True
                continue
            name, offset = entry
            seg = self._segments_dir / name
            try:
                with self._lock.shared():
                    with seg.open("rb") as handle:
                        handle.seek(offset)
                        line = handle.readline()
                payload = decode_record(line)
            except (OSError, RecordCorruptError):
                # an indexed record should always read back; the entry is
                # stale (typically a concurrent GC compacted the segment
                # away) — drop it and rescan once: the live record is in
                # the compacted segment, and a warm store must not read
                # as cold just because another process tidied it.
                with self._mu:
                    if self._index.get(ikey) == entry:
                        del self._index[ikey]
                if refreshed:
                    return None
                self.refresh()
                refreshed = True
                continue
            if payload["kind"] != kind or payload["key"] != key:
                raise PersistError(
                    f"index points {ikey!r} at a record for "
                    f"{payload['kind']}:{payload['key']}"
                )
            return payload

    # -- generations ---------------------------------------------------------

    def get_generation(self, key: str) -> Generation | None:
        payload = self._read_record(GEN_KIND, key)
        return generation_from_payload(payload) if payload is not None else None

    def put_generation(self, generation: Generation) -> None:
        self._append_payloads([generation_payload(generation)])

    def put_generations(self, generations: Iterable[Generation]) -> None:
        self._append_payloads([generation_payload(gen) for gen in generations])

    # -- scores --------------------------------------------------------------

    def get_score(self, disk_key: str) -> Score | None:
        payload = self._read_record(SCORE_KIND, disk_key)
        return score_from_payload(payload) if payload is not None else None

    def put_score(self, disk_key: str, gen_key: str, score: Score) -> None:
        self._append_payloads([score_payload(disk_key, gen_key, score)])

    # -- runtime integration -------------------------------------------------

    @property
    def result_cache(self) -> "DiskResultCache":
        """The store's :class:`~repro.runtime.cache.ResultCache` facade."""
        if self._result_cache is None:
            self._result_cache = DiskResultCache(self)
        return self._result_cache

    def score_cache(self, maxsize: int = 4096) -> "DiskScoreCache":
        """A fresh write-through score cache backed by this store."""
        return DiskScoreCache(self, maxsize=maxsize)

    # -- manifests -----------------------------------------------------------

    def record_run(
        self,
        *,
        plan,
        stats,
        executor: object,
        scheduler: object,
        cache: object,
        started_unix: float,
        wall_seconds: float,
    ) -> RunManifest:
        """Durably record one executed run; links repeats of the same plan."""
        fingerprint = plan_fingerprint(plan)
        previous = self.latest_manifest(fingerprint)
        manifest = RunManifest(
            run_id=make_run_id(started_unix, fingerprint),
            plan_name=plan.name,
            plan_fingerprint=fingerprint,
            unit_keys=tuple(unit.key for unit in plan.units),
            executor=repr(executor),
            scheduler=repr(scheduler),
            cache=repr(cache),
            stats=stats,
            started_unix=started_unix,
            wall_seconds=wall_seconds,
            resumed_from=previous.run_id if previous is not None else None,
        )
        blob = json.dumps(manifest.to_payload(), sort_keys=True, indent=1)
        write_atomic(
            self._manifests_dir / f"{manifest.run_id}.json", blob.encode("ascii")
        )
        return manifest

    def manifests(self) -> list[RunManifest]:
        """Every recorded run, oldest first."""
        out: list[RunManifest] = []
        for path in sorted(self._manifests_dir.glob("*.json")):
            try:
                out.append(RunManifest.from_payload(json.loads(path.read_text())))
            except (OSError, ValueError, PersistError):
                continue  # verify() reports these; listing stays usable
        out.sort(key=lambda m: (m.started_unix, m.run_id))
        return out

    def latest_manifest(self, fingerprint: str | None = None) -> RunManifest | None:
        """The most recent run, optionally restricted to one plan fingerprint."""
        candidates = [
            m
            for m in self.manifests()
            if fingerprint is None or m.plan_fingerprint == fingerprint
        ]
        return candidates[-1] if candidates else None

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> StoreStats:
        self.refresh()
        with self._mu:
            generations = sum(
                1 for key in self._index if key.startswith(f"{GEN_KIND}:")
            )
            scores = sum(1 for key in self._index if key.startswith(f"{SCORE_KIND}:"))
            corrupt = self._corrupt_skipped
        segments = list_segments(self._segments_dir)
        return StoreStats(
            root=str(self.root),
            segments=len(segments),
            segment_bytes=sum(seg.stat().st_size for seg in segments),
            generations=generations,
            scores=scores,
            manifests=len(list(self._manifests_dir.glob("*.json"))),
            corrupt_skipped=corrupt,
        )

    def verify(self) -> VerifyReport:
        """Full audit: re-checksum every record, parse every manifest."""
        problems: list[str] = []
        records = stale = 0
        kinds: dict[str, str] = {}

        def flag(path: pathlib.Path, offset: int, reason: str) -> None:
            problems.append(f"{path.name}@{offset}: {reason}")

        with self._lock.shared():
            segments = list_segments(self._segments_dir)
            for seg in segments:
                for _offset, payload in scan_records(seg, 0, on_corrupt=flag):
                    records += 1
                    ikey = index_key(payload["kind"], payload["key"])
                    if ikey in kinds:
                        stale += 1
                    else:
                        kinds[ikey] = payload["kind"]
        generations = sum(1 for kind in kinds.values() if kind == GEN_KIND)
        scores = sum(1 for kind in kinds.values() if kind == SCORE_KIND)
        manifest_paths = sorted(self._manifests_dir.glob("*.json"))
        manifests = 0
        for path in manifest_paths:
            try:
                RunManifest.from_payload(json.loads(path.read_text()))
                manifests += 1
            except (OSError, ValueError, PersistError) as exc:
                problems.append(f"manifest {path.name}: {exc}")
        return VerifyReport(
            segments=len(segments),
            records=records,
            generations=generations,
            scores=scores,
            stale=stale,
            manifests=manifests,
            problems=tuple(problems),
        )

    def gc(self) -> GCStats:
        """Compact: rewrite live records into one fresh segment, drop the rest.

        Live means: the newest record per key, checksum-valid, and — for
        scores — still referencing a generation present in the store.
        """
        with self._mu:
            with self._lock.exclusive():
                segments = list_segments(self._segments_dir)
                bytes_before = sum(seg.stat().st_size for seg in segments)
                seen = corrupt = 0
                live: dict[str, dict[str, Any]] = {}

                def count_corrupt(
                    path: pathlib.Path, offset: int, reason: str
                ) -> None:
                    nonlocal corrupt
                    corrupt += 1

                for seg in segments:
                    for _offset, payload in scan_records(
                        seg, 0, on_corrupt=count_corrupt
                    ):
                        seen += 1
                        live[index_key(payload["kind"], payload["key"])] = payload
                stale = seen - len(live)
                gen_keys = {
                    payload["key"]
                    for payload in live.values()
                    if payload["kind"] == GEN_KIND
                }
                orphans = [
                    ikey
                    for ikey, payload in live.items()
                    if payload["kind"] == SCORE_KIND
                    and payload.get("gen") not in gen_keys
                ]
                for ikey in orphans:
                    del live[ikey]

                next_number = (
                    (segment_number(segments[-1].name) or 0) + 1 if segments else 1
                )
                self._index.clear()
                self._scanned.clear()
                bytes_after = 0
                if live:
                    target = self._segments_dir / segment_name(next_number)
                    blob = b""
                    offsets: dict[str, int] = {}
                    for ikey, payload in sorted(live.items()):
                        offsets[ikey] = len(blob)
                        blob += encode_record(payload)
                    write_atomic(target, blob)
                    bytes_after = len(blob)
                    for ikey, offset in offsets.items():
                        self._index[ikey] = (target.name, offset)
                    self._scanned[target.name] = len(blob)
                for seg in segments:
                    seg.unlink()
        self.write_index_snapshot()
        return GCStats(
            records_before=seen,
            records_after=len(live),
            corrupt_dropped=corrupt,
            stale_dropped=stale,
            orphan_scores_dropped=len(orphans),
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )

    def close(self) -> None:
        """Snapshot the index so the next open skips the cold scan."""
        self.write_index_snapshot()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunStore({str(self.root)!r})"


class DiskResultCache:
    """:class:`~repro.runtime.cache.ResultCache` backend over a RunStore.

    The third cache backend next to ``InMemoryResultCache`` and
    ``FilesystemResultCache`` — same protocol (``get``/``put``/
    ``put_many``/``__len__``/``stats``), but entries survive the process
    and are shared, under the store's file lock, with every other
    process pointed at the same directory.
    """

    def __init__(self, store: RunStore) -> None:
        self._store = store
        self._mu = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0

    @property
    def store(self) -> RunStore:
        return self._store

    def get(self, key: str) -> Generation | None:
        gen = self._store.get_generation(key)
        with self._mu:
            if gen is None:
                self._misses += 1
            else:
                self._hits += 1
        return gen.as_cached() if gen is not None else None

    def put(self, generation: Generation) -> None:
        self._store.put_generation(generation)
        with self._mu:
            self._puts += 1

    def put_many(self, generations: Iterable[Generation]) -> None:
        batch = list(generations)
        self._store.put_generations(batch)
        with self._mu:
            self._puts += len(batch)

    def __len__(self) -> int:
        return self._store.stats().generations

    def __contains__(self, key: str) -> bool:
        return self._store.get_generation(key) is not None

    def stats(self) -> dict[str, int | str]:
        with self._mu:
            hits, misses, puts = self._hits, self._misses, self._puts
        return {
            "backend": "disk",
            "entries": len(self),
            "hits": hits,
            "misses": misses,
            "puts": puts,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskResultCache({str(self._store.root)!r})"


class DiskScoreCache:
    """Write-through score memo: in-memory LRU over durable score records.

    Drop-in for :class:`~repro.runtime.cache.ScoreCache` (same
    ``get``/``put`` surface, keyed by the
    :func:`repro.runtime.runner.score_key` tuple).  Entries whose scorer
    fingerprint has a stable cross-process identity are written through
    to the store; the rest stay in the process-local LRU.
    """

    def __init__(self, store: RunStore, maxsize: int = 4096) -> None:
        self._store = store
        self._memory = ScoreCache(maxsize)
        self._mu = threading.Lock()
        self._disk_hits = 0
        self._disk_puts = 0
        self._unpersistable = 0

    def get(self, key: Hashable) -> object | None:
        score = self._memory.get(key)
        if score is not None:
            return score
        dkey = disk_score_key(key)
        if dkey is None:
            return None
        score = self._store.get_score(dkey)
        if score is None:
            return None
        self._memory.put(key, score)
        with self._mu:
            self._disk_hits += 1
        return score

    def put(self, key: Hashable, score: object) -> None:
        self._memory.put(key, score)
        dkey = disk_score_key(key)
        if dkey is None or not isinstance(score, Score):
            with self._mu:
                self._unpersistable += 1
            return
        assert isinstance(key, tuple)  # disk_score_key validated the shape
        self._store.put_score(dkey, key[0], score)
        with self._mu:
            self._disk_puts += 1

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> dict[str, int | str]:
        with self._mu:
            return {
                "backend": "disk",
                "entries": len(self._memory),
                "disk_hits": self._disk_hits,
                "disk_puts": self._disk_puts,
                "unpersistable": self._unpersistable,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskScoreCache({str(self._store.root)!r}, entries={len(self)})"
