"""The durable run store: content-addressed records + run manifests.

Layout of one store directory::

    store/
      LOCK                    advisory lockfile (fcntl; see locking.py)
      index.json              index snapshot (optional; rebuilt if stale)
      segments/
        segment-000001.seg    append-only checksummed records (gen + score)
        segment-000002.seg    …rotated past max_segment_bytes, or by GC
      manifests/
        run-….json            one RunManifest per recorded run

N processes may share one store concurrently: appends happen under the
exclusive lock (first scanning any bytes other writers added, so the
in-memory index never goes blind), scans under the shared lock.  The
in-memory index maps ``kind:key`` to ``(segment, offset, length)``;
record payloads stay on disk and are read on demand, so a store with
many thousands of generations costs the process only its key table.

**The read path is lock-free and zero-copy.**  Each segment is mmapped
once on first read (``use_mmap=True``, the default) and a ``get`` is a
``memoryview`` slice of exactly ``length`` bytes at ``offset`` — no
syscall, no buffer copy; the checksum and the UTF-8 decode consume the
view in place.  Where ``mmap`` is unavailable or fails (exotic
filesystems, 32-bit address pressure) the reader falls back to one
``os.pread`` per record on a persistent per-segment file descriptor —
still no file open, no seek, no ``fcntl`` round trip.  Either way this
is safe because segments are strictly append-only (the byte range an
index entry points at is immutable once scanned), compaction replaces
whole files via rename (an already-open descriptor or mapping keeps
reading the old inode's complete contents, which for content-addressed
records is the identical data), and every read re-verifies the record
checksum — any racy read that does slip through decodes as corrupt and
falls back to a locked rescan.  A mapping that is shorter than a newly
appended record is remapped on demand.  ``get_many`` batches lookups
and sorts the reads by (segment, offset) so a cold sweep touches each
segment sequentially, and a small read-through LRU caches decoded
payloads so each record pays its checksum once.

Crash safety comes from per-record checksums (a torn tail decodes as
one corrupt record, skipped with a warning and healed by the next
writer) and from write-temp-then-rename for every whole-file write
(index snapshot, compacted segments, manifests).  Appends group-commit:
one lock acquisition and one ``write`` batch per ``put_many``, with the
index snapshot debounced (rewritten only after ``snapshot_every``
records accumulate, and on ``close``).

:meth:`RunStore.gc` is the compaction pass: one streaming scan over the
segments that keeps the newest raw line per key (no re-encode, no
re-hash), drops corrupt lines and score entries whose generation
vanished, and writes the survivors into one fresh segment.
:meth:`RunStore.verify` is the auditor: a full checksum scan of every
segment plus a parse of every manifest.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

try:  # pragma: no cover - present on every supported platform
    import mmap
except ImportError:  # pragma: no cover - exotic builds only
    mmap = None  # type: ignore[assignment]
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from repro.core.scorers import Score
from repro.errors import PersistError, RecordCorruptError, StoreError
from repro.obs import span
from repro.runtime.cache import ScoreCache
from repro.runtime.units import Generation
from repro.stats import stats_dict

from repro.persist.locking import FileLock
from repro.persist.manifest import RunManifest, build_manifest
from repro.persist.records import (
    GEN_KIND,
    RECORD_KINDS,
    SCORE_KIND,
    decode_record,
    disk_score_key,
    encode_record,
    generation_from_payload,
    generation_payload,
    index_key,
    score_from_payload,
    score_payload,
)
from repro.persist.segments import (
    append_blobs,
    list_segments,
    scan_entries,
    scan_records,
    segment_name,
    segment_number,
    warn_corrupt,
    write_atomic,
)

# version 2: index entries carry (segment, offset, length) so reads are
# one positioned pread instead of an open+seek+readline
INDEX_VERSION = 2


class _SegmentReader:
    """A persistent read-only view over one segment file.

    The preferred read path is a lazily established ``mmap`` of the
    whole segment: a read is then a ``memoryview`` slice — no syscall,
    no copy — and the mapping is grown on demand when an index entry
    points past its end (segments are append-only, so the mapped prefix
    never changes).  Where ``mmap`` is unavailable or fails, reads fall
    back — stickily, per reader — to ``os.pread`` on the same
    descriptor, which carries its own offset and so serves any number
    of threads without seek races.  Both paths stay valid (reading the
    original inode's full contents) even after another process compacts
    the segment away.
    """

    __slots__ = ("fd", "use_mmap", "_map", "_view")

    def __init__(self, path: pathlib.Path, use_mmap: bool = True) -> None:
        self.fd = os.open(path, os.O_RDONLY)
        self.use_mmap = use_mmap and mmap is not None
        self._map: "mmap.mmap | None" = None
        self._view: memoryview | None = None

    def _remap(self, needed: int) -> bool:
        """(Re)map the segment so at least ``needed`` bytes are visible.

        Returns False without disabling mmap when the file is simply
        shorter than ``needed`` (a stale index entry — the caller's
        short-read handling takes over); disables mmap for this reader
        when the mapping itself fails.
        """
        try:
            size = os.fstat(self.fd).st_size
        except OSError:
            return False
        if size < needed:
            return False
        self._release()
        try:
            self._map = mmap.mmap(self.fd, size, access=mmap.ACCESS_READ)
        except (OSError, ValueError, OverflowError):
            self.use_mmap = False  # sticky: pread from now on
            return False
        self._view = memoryview(self._map)
        return True

    def read(self, offset: int, length: int) -> "bytes | memoryview":
        """Exactly ``length`` bytes at ``offset`` (or fewer, if stale)."""
        if self.use_mmap:
            end = offset + length
            view = self._view
            if (view is not None and end <= len(view)) or self._remap(end):
                return self._view[offset:end]  # type: ignore[index]
        return os.pread(self.fd, length, offset)

    def _release(self) -> None:
        # exported record slices keep the old mapping's pages alive
        # until they are garbage collected; a BufferError here just
        # means such a slice is still live — drop our references and
        # let refcounting reclaim the map
        if self._view is not None:
            try:
                self._view.release()
            except BufferError:  # pragma: no cover - exported slice live
                pass
            self._view = None
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                pass
            self._map = None

    def close(self) -> None:
        self._release()
        try:
            os.close(self.fd)
        except OSError:  # pragma: no cover - already closed
            pass


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time shape of one store."""

    root: str
    segments: int
    segment_bytes: int
    generations: int
    scores: int
    manifests: int
    corrupt_skipped: int  # corrupt records seen by this process's scans
    read_lru_hits: int = 0  # record reads served from the decoded-payload LRU
    read_lru_misses: int = 0  # record reads that went to disk
    bytes_read: int = 0  # record bytes this process pread from segments

    def as_dict(self) -> dict[str, Any]:
        """Unified stats payload (``repro.stats`` schema, kind ``"store"``)."""
        return stats_dict(
            "store",
            root=self.root,
            segments=self.segments,
            segment_bytes=self.segment_bytes,
            generations=self.generations,
            scores=self.scores,
            manifests=self.manifests,
            corrupt_skipped=self.corrupt_skipped,
            read_lru_hits=self.read_lru_hits,
            read_lru_misses=self.read_lru_misses,
            bytes_read=self.bytes_read,
        )

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "StoreStats":
        """Rebuild from :meth:`as_dict` output (marker keys ignored)."""
        from repro.stats import strip_markers

        try:
            return cls(**strip_markers(payload))
        except TypeError as exc:
            raise PersistError(f"malformed store-stats payload: {exc}") from None

    def describe(self) -> str:
        return (
            f"store {self.root}: {self.generations} generation(s), "
            f"{self.scores} score(s), {self.manifests} manifest(s) in "
            f"{self.segments} segment(s) / {self.segment_bytes} bytes; "
            f"reads: {self.read_lru_hits} LRU hit(s), "
            f"{self.read_lru_misses} miss(es), {self.bytes_read} byte(s)"
            + (f"; {self.corrupt_skipped} corrupt record(s) skipped"
               if self.corrupt_skipped else "")
        )


@dataclass(frozen=True)
class VerifyReport:
    """Result of a full store audit."""

    segments: int
    records: int
    generations: int
    scores: int
    stale: int  # superseded duplicates awaiting GC
    manifests: int
    problems: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.problems

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the server's ``verify`` op ships this)."""
        return {
            "segments": self.segments,
            "records": self.records,
            "generations": self.generations,
            "scores": self.scores,
            "stale": self.stale,
            "manifests": self.manifests,
            "problems": list(self.problems),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "VerifyReport":
        try:
            return cls(
                segments=int(payload["segments"]),
                records=int(payload["records"]),
                generations=int(payload["generations"]),
                scores=int(payload["scores"]),
                stale=int(payload["stale"]),
                manifests=int(payload["manifests"]),
                problems=tuple(payload["problems"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistError(
                f"malformed verify-report payload: {exc}"
            ) from None

    def merged_with(self, other: "VerifyReport") -> "VerifyReport":
        """Combine two shard audits into one store-wide report."""
        return VerifyReport(
            segments=self.segments + other.segments,
            records=self.records + other.records,
            generations=self.generations + other.generations,
            scores=self.scores + other.scores,
            stale=self.stale + other.stale,
            manifests=self.manifests + other.manifests,
            problems=self.problems + other.problems,
        )

    def describe(self) -> str:
        status = "clean" if self.clean else f"{len(self.problems)} problem(s)"
        lines = [
            f"verify: {status} — {self.records} record(s) "
            f"({self.generations} generation(s), {self.scores} score(s), "
            f"{self.stale} stale) in {self.segments} segment(s), "
            f"{self.manifests} manifest(s)"
        ]
        lines += [f"  - {problem}" for problem in self.problems]
        return "\n".join(lines)


@dataclass(frozen=True)
class GCStats:
    """What one compaction pass reclaimed."""

    records_before: int
    records_after: int
    corrupt_dropped: int
    stale_dropped: int
    orphan_scores_dropped: int
    bytes_before: int
    bytes_after: int

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the server's ``gc`` op ships this)."""
        return {
            "records_before": self.records_before,
            "records_after": self.records_after,
            "corrupt_dropped": self.corrupt_dropped,
            "stale_dropped": self.stale_dropped,
            "orphan_scores_dropped": self.orphan_scores_dropped,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GCStats":
        try:
            return cls(**{
                field: int(payload[field])
                for field in (
                    "records_before", "records_after", "corrupt_dropped",
                    "stale_dropped", "orphan_scores_dropped",
                    "bytes_before", "bytes_after",
                )
            })
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistError(f"malformed gc-stats payload: {exc}") from None

    def merged_with(self, other: "GCStats") -> "GCStats":
        """Combine two shard compactions into one store-wide summary."""
        return GCStats(
            records_before=self.records_before + other.records_before,
            records_after=self.records_after + other.records_after,
            corrupt_dropped=self.corrupt_dropped + other.corrupt_dropped,
            stale_dropped=self.stale_dropped + other.stale_dropped,
            orphan_scores_dropped=(
                self.orphan_scores_dropped + other.orphan_scores_dropped
            ),
            bytes_before=self.bytes_before + other.bytes_before,
            bytes_after=self.bytes_after + other.bytes_after,
        )

    def describe(self) -> str:
        return (
            f"gc: {self.records_before} -> {self.records_after} record(s) "
            f"({self.stale_dropped} stale, {self.corrupt_dropped} corrupt, "
            f"{self.orphan_scores_dropped} orphan score(s) dropped), "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )


class RunStore:
    """One on-disk store directory shared by any number of processes."""

    def __init__(
        self,
        root: str | pathlib.Path,
        *,
        create: bool = True,
        max_segment_bytes: int = 8 << 20,
        fsync: bool = False,
        read_cache_entries: int = 1024,
        snapshot_every: int = 4096,
        use_mmap: bool = True,
    ) -> None:
        if max_segment_bytes <= 0:
            raise PersistError(
                f"max_segment_bytes must be positive, got {max_segment_bytes}"
            )
        if read_cache_entries < 0:
            raise PersistError(
                f"read_cache_entries must be >= 0, got {read_cache_entries}"
            )
        if snapshot_every <= 0:
            raise PersistError(
                f"snapshot_every must be positive, got {snapshot_every}"
            )
        self.root = pathlib.Path(root)
        self._segments_dir = self.root / "segments"
        self._manifests_dir = self.root / "manifests"
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store path {self.root} is not a directory")
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
            self._segments_dir.mkdir(exist_ok=True)
            self._manifests_dir.mkdir(exist_ok=True)
        elif not (self._segments_dir.is_dir() and self._manifests_dir.is_dir()):
            # opening read-only (the CLI) must neither scaffold missing
            # directories nor report a typo'd path as a clean empty store
            raise StoreError(f"no store at {self.root}")
        self.max_segment_bytes = max_segment_bytes
        self.fsync = fsync
        self.read_cache_entries = read_cache_entries
        self.snapshot_every = snapshot_every
        self.use_mmap = use_mmap
        self._lock = FileLock(self.root / "LOCK")
        self._mu = threading.Lock()  # guards index, readers and the read LRU
        self._index: dict[str, tuple[str, int, int]] = {}
        self._scanned: dict[str, int] = {}  # segment name -> bytes indexed
        self._readers: dict[str, _SegmentReader] = {}  # persistent read fds
        self._read_lru: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._read_lru_hits = 0
        self._read_lru_misses = 0
        self._bytes_read = 0
        self._records_since_snapshot = 0
        self._corrupt_skipped = 0
        self._result_cache: DiskResultCache | None = None
        self._load_index_snapshot()
        self.refresh()

    # -- index maintenance ---------------------------------------------------

    def _snapshot_path(self) -> pathlib.Path:
        return self.root / "index.json"

    def _load_index_snapshot(self) -> None:
        """Seed the index from ``index.json`` when it still matches disk."""
        path = self._snapshot_path()
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or payload.get("version") != INDEX_VERSION:
            return
        scanned = payload.get("scanned")
        entries = payload.get("entries")
        if not isinstance(scanned, dict) or not isinstance(entries, dict):
            return
        for name, offset in scanned.items():
            seg = self._segments_dir / name
            if segment_number(name) is None or not seg.is_file():
                return  # segment vanished (GC elsewhere): rebuild from scratch
            if not isinstance(offset, int) or seg.stat().st_size < offset:
                return  # segment shrank: snapshot is from another universe
        for key, entry in entries.items():
            if (
                not isinstance(entry, list)
                or len(entry) != 3
                or entry[0] not in scanned
            ):
                return
        self._scanned = {name: offset for name, offset in scanned.items()}
        self._index = {
            key: (entry[0], entry[1], entry[2]) for key, entry in entries.items()
        }

    def _snapshot_blob_locked(self) -> bytes:
        """Serialize the index; caller holds ``self._mu``."""
        payload = {
            "version": INDEX_VERSION,
            "scanned": dict(self._scanned),
            "entries": {key: list(entry) for key, entry in self._index.items()},
        }
        return json.dumps(payload, sort_keys=True).encode("ascii")

    def write_index_snapshot(self) -> None:
        """Persist the index so the next open skips the full scan."""
        with self._mu:
            blob = self._snapshot_blob_locked()
            self._records_since_snapshot = 0
        with self._lock.exclusive():
            write_atomic(self._snapshot_path(), blob)

    def _note_corrupt(self, path: pathlib.Path, offset: int, reason: str) -> None:
        self._corrupt_skipped += 1
        warn_corrupt(path, offset, reason)

    def _scan_locked(self) -> None:
        """Index every byte other processes appended since the last scan.

        Caller holds ``self._mu`` and at least the shared file lock.  A
        segment set that lost members (GC in another process) invalidates
        the whole index and forces a rebuild.
        """
        segments = list_segments(self._segments_dir)
        names = {seg.name for seg in segments}
        if any(name not in names for name in self._scanned):
            # segment set changed under us (GC in another process): the
            # whole index and every open descriptor refer to dead files
            self._index.clear()
            self._scanned.clear()
            self._drop_readers_locked()
            self._read_lru.clear()
        for seg in segments:
            size = seg.stat().st_size
            start = self._scanned.get(seg.name, 0)
            if size <= start:
                continue
            for offset, line, payload in scan_entries(
                seg, start, on_corrupt=self._note_corrupt
            ):
                self._index[index_key(payload["kind"], payload["key"])] = (
                    seg.name,
                    offset,
                    len(line),
                )
            # consume up to the last terminated line only: a torn tail
            # stays unconsumed so its healed rewrite is rescanned later
            self._scanned[seg.name] = self._terminated_end(seg, start, size)

    @staticmethod
    def _terminated_end(seg: pathlib.Path, start: int, size: int) -> int:
        """Offset just past the last newline in ``seg[start:size]``."""
        with seg.open("rb") as handle:
            handle.seek(start)
            data = handle.read(size - start)
        last_nl = data.rfind(b"\n")
        return start + last_nl + 1 if last_nl >= 0 else start

    def refresh(self) -> None:
        """Pick up records appended by other processes."""
        with self._mu:
            with self._lock.shared():
                self._scan_locked()

    # -- record I/O ----------------------------------------------------------

    def _active_segment_locked(self) -> pathlib.Path:
        """The segment new appends go to (rotating past the size cap)."""
        segments = list_segments(self._segments_dir)
        if not segments:
            return self._segments_dir / segment_name(1)
        active = segments[-1]
        if active.stat().st_size >= self.max_segment_bytes:
            number = segment_number(active.name) or 0
            return self._segments_dir / segment_name(number + 1)
        return active

    def _append_payloads(self, payloads: list[dict[str, Any]]) -> None:
        if not payloads:
            return
        blobs = [encode_record(payload) for payload in payloads]
        with span("store-io"), span("append"):
            with self._mu:
                with self._lock.exclusive():
                    # first index what other writers appended, so our offsets
                    # never shadow unscanned foreign bytes
                    self._scan_locked()
                    seg = self._active_segment_locked()
                    offsets = append_blobs(seg, blobs, fsync=self.fsync)
                    for payload, blob, offset in zip(payloads, blobs, offsets):
                        ikey = index_key(payload["kind"], payload["key"])
                        self._index[ikey] = (seg.name, offset, len(blob))
                        self._read_lru.pop(ikey, None)  # superseded payload
                    self._scanned[seg.name] = seg.stat().st_size
                    self._records_since_snapshot += len(payloads)
                    if self._records_since_snapshot >= self.snapshot_every:
                        # debounced group-commit of the index: amortize the
                        # snapshot rewrite over many appended records (close()
                        # still writes a final snapshot for the tail)
                        write_atomic(
                            self._snapshot_path(), self._snapshot_blob_locked()
                        )
                        self._records_since_snapshot = 0

    # -- low-level positioned reads ------------------------------------------

    def _drop_readers_locked(self) -> None:
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()

    def _reader_locked(self, name: str) -> _SegmentReader:
        reader = self._readers.get(name)
        if reader is None:
            reader = _SegmentReader(self._segments_dir / name, self.use_mmap)
            self._readers[name] = reader
        return reader

    def _lru_put_locked(self, ikey: str, payload: dict[str, Any]) -> None:
        if self.read_cache_entries <= 0:
            return
        self._read_lru[ikey] = payload
        self._read_lru.move_to_end(ikey)
        while len(self._read_lru) > self.read_cache_entries:
            self._read_lru.popitem(last=False)

    def _pread_locked(self, entry: tuple[str, int, int]) -> "bytes | memoryview":
        """One positioned read of an indexed record; caller holds ``_mu``.

        Returns a zero-copy memoryview slice on the mmap path, bytes on
        the pread fallback.  Lock-free with respect to the file lock:
        the byte range of an indexed entry is immutable (segments are
        append-only, compaction replaces whole files), and the caller
        re-checksums the result.
        """
        name, offset, length = entry
        data = self._reader_locked(name).read(offset, length)
        if len(data) != length:
            raise RecordCorruptError(
                f"short read: wanted {length} bytes at {offset}, got {len(data)}"
            )
        self._bytes_read += length
        return data

    def _drop_stale_locked(self, ikey: str, entry: tuple[str, int, int]) -> None:
        """Forget an index entry (and its reader) that failed to read back."""
        if self._index.get(ikey) == entry:
            del self._index[ikey]
        reader = self._readers.pop(entry[0], None)
        if reader is not None:
            reader.close()

    def _read_record(self, kind: str, key: str) -> dict[str, Any] | None:
        ikey = index_key(kind, key)
        refreshed = False
        with span("store-io"), span("read"):
            while True:
                # one lock cycle per read: lookup, pread, decode, LRU
                # insert.  Decoding under the lock serializes concurrent
                # single-record readers, but the runtime's bulk reads go
                # through _read_many (one acquisition per batch) and the
                # decode is a few microseconds — one cycle wins.
                payload = None
                with self._mu:
                    cached = self._read_lru.get(ikey)
                    if cached is not None:
                        self._read_lru.move_to_end(ikey)
                        self._read_lru_hits += 1
                        return cached
                    entry = self._index.get(ikey)
                    if entry is not None:
                        self._read_lru_misses += 1
                        try:
                            payload = decode_record(self._pread_locked(entry))
                        except (OSError, RecordCorruptError):
                            self._drop_stale_locked(ikey, entry)
                        else:
                            if payload["kind"] == kind and payload["key"] == key:
                                self._lru_put_locked(ikey, payload)
                            # a mismatched record must never enter the LRU:
                            # it would be served silently on the next get
                if payload is None:
                    # either the key is unknown here, or the entry went
                    # stale (typically a concurrent GC compacted the
                    # segment away; it has been dropped) — rescan once:
                    # the live record is in the compacted segment, and a
                    # warm store must not read as cold just because
                    # another process tidied it.
                    if refreshed:
                        return None
                    self.refresh()
                    refreshed = True
                    continue
                if payload["kind"] != kind or payload["key"] != key:
                    raise PersistError(
                        f"index points {ikey!r} at a record for "
                        f"{payload['kind']}:{payload['key']}"
                    )
                return payload

    def _read_many(self, kind: str, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Batched record reads: sorted by (segment, offset), one pass.

        Returns payloads for the keys present in the store; absent keys
        are simply missing from the result.  Missing or stale entries
        trigger at most one refresh, then fall back to the single-read
        path (which handles per-entry staleness).
        """
        out: dict[str, dict[str, Any]] = {}
        todo: list[tuple[str, str, tuple[str, int, int]]] = []
        missing: list[str] = []
        with span("store-io"), span("read"):
            with self._mu:
                for key in keys:
                    ikey = index_key(kind, key)
                    cached = self._read_lru.get(ikey)
                    if cached is not None:
                        self._read_lru.move_to_end(ikey)
                        self._read_lru_hits += 1
                        out[key] = cached
                        continue
                    entry = self._index.get(ikey)
                    if entry is None:
                        missing.append(key)
                    else:
                        todo.append((key, ikey, entry))
            if missing:
                self.refresh()
                with self._mu:
                    for key in missing:
                        entry = self._index.get(index_key(kind, key))
                        if entry is not None:
                            todo.append((key, index_key(kind, key), entry))
            # sequential disk order: sort the batch by (segment, offset)
            todo.sort(key=lambda item: (item[2][0], item[2][1]))
            fallback: list[str] = []
            raw: list[tuple[str, str, tuple[str, int, int], bytes]] = []
            with self._mu:
                for key, ikey, entry in todo:
                    self._read_lru_misses += 1
                    try:
                        raw.append((key, ikey, entry, self._pread_locked(entry)))
                    except (OSError, RecordCorruptError):
                        self._drop_stale_locked(ikey, entry)
                        # the single-read retry below re-counts this miss
                        self._read_lru_misses -= 1
                        fallback.append(key)
            decoded: list[tuple[str, dict[str, Any]]] = []
            for key, ikey, entry, data in raw:
                try:
                    payload = decode_record(data)
                except RecordCorruptError:
                    with self._mu:
                        self._drop_stale_locked(ikey, entry)
                        # the single-read retry below re-counts this miss
                        self._read_lru_misses -= 1
                    fallback.append(key)
                    continue
                if payload["kind"] != kind or payload["key"] != key:
                    raise PersistError(
                        f"index points {ikey!r} at a record for "
                        f"{payload['kind']}:{payload['key']}"
                    )
                decoded.append((ikey, payload))
                out[key] = payload
            # one lock acquisition for the whole batch's LRU maintenance;
            # a batch at or above capacity replaces the cache outright
            # instead of churning insert+evict per record
            if decoded and self.read_cache_entries > 0:
                with self._mu:
                    if len(decoded) >= self.read_cache_entries:
                        self._read_lru.clear()
                        self._read_lru.update(
                            decoded[-self.read_cache_entries :]
                        )
                    else:
                        for ikey, payload in decoded:
                            self._lru_put_locked(ikey, payload)
        for key in fallback:
            payload = self._read_record(kind, key)
            if payload is not None:
                out[key] = payload
        return out

    # -- generations ---------------------------------------------------------

    def get_generation(self, key: str) -> Generation | None:
        payload = self._read_record(GEN_KIND, key)
        return generation_from_payload(payload) if payload is not None else None

    def get_generations(self, keys: Sequence[str]) -> dict[str, Generation]:
        """Batched lookup: reads sorted by (segment, offset), one pass.

        Returns only the keys present in the store — the cache-miss set
        is ``keys - result``.
        """
        payloads = self._read_many(GEN_KIND, keys)
        return {
            key: generation_from_payload(payload)
            for key, payload in payloads.items()
        }

    def put_generation(self, generation: Generation) -> None:
        self._append_payloads([generation_payload(generation)])

    def put_generations(self, generations: Iterable[Generation]) -> None:
        self._append_payloads([generation_payload(gen) for gen in generations])

    # -- scores --------------------------------------------------------------

    def get_score(self, disk_key: str) -> Score | None:
        payload = self._read_record(SCORE_KIND, disk_key)
        return score_from_payload(payload) if payload is not None else None

    def put_score(self, disk_key: str, gen_key: str, score: Score) -> None:
        self._append_payloads([score_payload(disk_key, gen_key, score)])

    # -- raw record I/O (the networked store server's shard surface) ---------

    def get_records(self, kind: str, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Batched raw record payloads for one kind; absent keys omitted.

        The JSON-ready form the wire protocol ships verbatim — no
        decode-to-dataclass/re-encode round trip on the server.
        """
        if kind not in RECORD_KINDS:
            raise PersistError(f"unknown record kind {kind!r}")
        return self._read_many(kind, keys)

    def keys(self, kind: str) -> list[str]:
        """Every live record key of one kind (sorted).

        The inventory surface replica reconciliation
        (``python -m repro.serve sync``) diffs: cheap — one index scan,
        no record reads.
        """
        if kind not in RECORD_KINDS:
            raise PersistError(f"unknown record kind {kind!r}")
        self.refresh()
        prefix = f"{kind}:"
        with self._mu:
            return sorted(
                key[len(prefix):]
                for key in self._index
                if key.startswith(prefix)
            )

    def put_records(self, payloads: Sequence[dict[str, Any]]) -> int:
        """Append raw record payloads (as produced by the record codecs).

        Each payload must carry a valid ``kind`` and ``key``; the append
        is one group-commit exactly like :meth:`put_generations`.
        """
        batch = list(payloads)
        for payload in batch:
            if (
                not isinstance(payload, dict)
                or payload.get("kind") not in RECORD_KINDS
                or not isinstance(payload.get("key"), str)
            ):
                raise PersistError(
                    f"malformed record payload: {str(payload)[:80]!r}"
                )
        self._append_payloads(batch)
        return len(batch)

    # -- runtime integration -------------------------------------------------

    @property
    def result_cache(self) -> "DiskResultCache":
        """The store's :class:`~repro.runtime.cache.ResultCache` facade."""
        if self._result_cache is None:
            self._result_cache = DiskResultCache(self)
        return self._result_cache

    def score_cache(self, maxsize: int = 4096) -> "DiskScoreCache":
        """A fresh write-through score cache backed by this store."""
        return DiskScoreCache(self, maxsize=maxsize)

    # -- manifests -----------------------------------------------------------

    def record_run(
        self,
        *,
        plan,
        stats,
        executor: object,
        scheduler: object,
        cache: object,
        started_unix: float,
        wall_seconds: float,
        failures: Sequence = (),
        resumed_from: str | None = None,
        trace: dict | None = None,
        metrics: dict | None = None,
    ) -> RunManifest:
        """Durably record one executed run; links repeats of the same plan.

        ``failures`` persists the run's quarantined
        :class:`~repro.runtime.faults.UnitFailure` records, so a later
        session can resume exactly the failed units.  ``resumed_from``
        pins the predecessor explicitly (``runtime.run(resume_from=…)``);
        when omitted, the latest same-fingerprint run is linked.
        ``trace``/``metrics`` attach the run's observability payloads
        (a serialized :class:`~repro.obs.Trace` and a metrics snapshot).
        """
        manifest = build_manifest(
            plan=plan,
            stats=stats,
            executor=executor,
            scheduler=scheduler,
            cache=cache,
            started_unix=started_unix,
            wall_seconds=wall_seconds,
            failures=failures,
            resumed_from=resumed_from,
            latest_for=self.latest_manifest,
            trace=trace,
            metrics=metrics,
        )
        self.put_manifest(manifest)
        return manifest

    def put_manifest(self, manifest: RunManifest) -> None:
        """Durably write one already-built manifest (atomic rename)."""
        blob = json.dumps(manifest.to_payload(), sort_keys=True, indent=1)
        write_atomic(
            self._manifests_dir / f"{manifest.run_id}.json", blob.encode("ascii")
        )

    def manifest(self, run_id: str) -> RunManifest | None:
        """One recorded run by id (``None`` when absent or unreadable)."""
        path = self._manifests_dir / f"{run_id}.json"
        try:
            return RunManifest.from_payload(json.loads(path.read_text()))
        except (OSError, ValueError, PersistError):
            return None

    def manifests(self) -> list[RunManifest]:
        """Every recorded run, oldest first."""
        out: list[RunManifest] = []
        for path in sorted(self._manifests_dir.glob("*.json")):
            try:
                out.append(RunManifest.from_payload(json.loads(path.read_text())))
            except (OSError, ValueError, PersistError):
                continue  # verify() reports these; listing stays usable
        out.sort(key=lambda m: (m.started_unix, m.run_id))
        return out

    def latest_manifest(self, fingerprint: str | None = None) -> RunManifest | None:
        """The most recent run, optionally restricted to one plan fingerprint."""
        candidates = [
            m
            for m in self.manifests()
            if fingerprint is None or m.plan_fingerprint == fingerprint
        ]
        return candidates[-1] if candidates else None

    # -- maintenance ---------------------------------------------------------

    def read_stats(self) -> dict[str, int]:
        """The read-path counters, without the disk rescan ``stats()`` pays."""
        with self._mu:
            return {
                "read_lru_hits": self._read_lru_hits,
                "read_lru_misses": self._read_lru_misses,
                "bytes_read": self._bytes_read,
            }

    def stats(self) -> StoreStats:
        self.refresh()
        with self._mu:
            generations = sum(
                1 for key in self._index if key.startswith(f"{GEN_KIND}:")
            )
            scores = sum(1 for key in self._index if key.startswith(f"{SCORE_KIND}:"))
            corrupt = self._corrupt_skipped
            read_hits = self._read_lru_hits
            read_misses = self._read_lru_misses
            bytes_read = self._bytes_read
        segments = list_segments(self._segments_dir)
        return StoreStats(
            root=str(self.root),
            segments=len(segments),
            segment_bytes=sum(seg.stat().st_size for seg in segments),
            generations=generations,
            scores=scores,
            manifests=len(list(self._manifests_dir.glob("*.json"))),
            corrupt_skipped=corrupt,
            read_lru_hits=read_hits,
            read_lru_misses=read_misses,
            bytes_read=bytes_read,
        )

    def verify(self) -> VerifyReport:
        """Full audit: re-checksum every record, parse every manifest."""
        problems: list[str] = []
        records = stale = 0
        kinds: dict[str, str] = {}

        def flag(path: pathlib.Path, offset: int, reason: str) -> None:
            problems.append(f"{path.name}@{offset}: {reason}")

        with self._lock.shared():
            segments = list_segments(self._segments_dir)
            for seg in segments:
                for _offset, payload in scan_records(seg, 0, on_corrupt=flag):
                    records += 1
                    ikey = index_key(payload["kind"], payload["key"])
                    if ikey in kinds:
                        stale += 1
                    else:
                        kinds[ikey] = payload["kind"]
        generations = sum(1 for kind in kinds.values() if kind == GEN_KIND)
        scores = sum(1 for kind in kinds.values() if kind == SCORE_KIND)
        manifest_paths = sorted(self._manifests_dir.glob("*.json"))
        manifests = 0
        for path in manifest_paths:
            try:
                RunManifest.from_payload(json.loads(path.read_text()))
                manifests += 1
            except (OSError, ValueError, PersistError) as exc:
                problems.append(f"manifest {path.name}: {exc}")
        return VerifyReport(
            segments=len(segments),
            records=records,
            generations=generations,
            scores=scores,
            stale=stale,
            manifests=manifests,
            problems=tuple(problems),
        )

    def gc(self) -> GCStats:
        """Compact: rewrite live records into one fresh segment, drop the rest.

        Live means: the newest record per key, checksum-valid, and — for
        scores — still referencing a generation present in the store.

        One streaming pass: each segment is scanned once, the newest raw
        line per key is kept verbatim (no re-encode, no re-hash — the
        checksum was just verified by the scan), stale/corrupt/orphan
        counting happens inline, and the survivors are joined into the
        compacted segment in one allocation.
        """
        with self._mu:
            with self._lock.exclusive():
                segments = list_segments(self._segments_dir)
                bytes_before = sum(seg.stat().st_size for seg in segments)
                seen = corrupt = 0
                # ikey -> (raw line, kind, gen key for scores) — the raw
                # bytes are reused verbatim by the compacted segment
                live: dict[str, tuple[bytes, str, str | None]] = {}

                def count_corrupt(
                    path: pathlib.Path, offset: int, reason: str
                ) -> None:
                    nonlocal corrupt
                    corrupt += 1

                for seg in segments:
                    for _offset, line, payload in scan_entries(
                        seg, 0, on_corrupt=count_corrupt
                    ):
                        seen += 1
                        live[index_key(payload["kind"], payload["key"])] = (
                            line,
                            payload["kind"],
                            payload.get("gen"),
                        )
                stale = seen - len(live)
                gen_keys = {
                    ikey.split(":", 1)[1]
                    for ikey, entry in live.items()
                    if entry[1] == GEN_KIND
                }
                orphans = [
                    ikey
                    for ikey, entry in live.items()
                    if entry[1] == SCORE_KIND and entry[2] not in gen_keys
                ]
                for ikey in orphans:
                    del live[ikey]

                next_number = (
                    (segment_number(segments[-1].name) or 0) + 1 if segments else 1
                )
                self._index.clear()
                self._scanned.clear()
                self._drop_readers_locked()
                self._read_lru.clear()
                bytes_after = 0
                if live:
                    target = self._segments_dir / segment_name(next_number)
                    lines: list[bytes] = []
                    offset = 0
                    for ikey, (line, _kind, _gen) in sorted(live.items()):
                        self._index[ikey] = (target.name, offset, len(line))
                        lines.append(line)
                        offset += len(line)
                    write_atomic(target, b"".join(lines))
                    bytes_after = offset
                    self._scanned[target.name] = offset
                for seg in segments:
                    seg.unlink()
        self.write_index_snapshot()
        return GCStats(
            records_before=seen,
            records_after=len(live),
            corrupt_dropped=corrupt,
            stale_dropped=stale,
            orphan_scores_dropped=len(orphans),
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )

    def close(self) -> None:
        """Snapshot the index and release the persistent read descriptors."""
        self.write_index_snapshot()
        with self._mu:
            self._drop_readers_locked()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunStore({str(self.root)!r})"


class DiskResultCache:
    """:class:`~repro.runtime.cache.ResultCache` backend over a RunStore.

    The third cache backend next to ``InMemoryResultCache`` and
    ``FilesystemResultCache`` — same protocol (``get``/``put``/
    ``put_many``/``__len__``/``stats``), but entries survive the process
    and are shared, under the store's file lock, with every other
    process pointed at the same directory.
    """

    def __init__(self, store: RunStore) -> None:
        self._store = store
        self._mu = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0

    @property
    def store(self) -> RunStore:
        return self._store

    def get(self, key: str) -> Generation | None:
        gen = self._store.get_generation(key)
        with self._mu:
            if gen is None:
                self._misses += 1
            else:
                self._hits += 1
        return gen.as_cached() if gen is not None else None

    def get_many(self, keys: Sequence[str]) -> dict[str, Generation]:
        """Batched lookup: one sorted-by-offset read pass over the store."""
        found = self._store.get_generations(keys)
        with self._mu:
            self._hits += len(found)
            self._misses += len(keys) - len(found)
        return {key: gen.as_cached() for key, gen in found.items()}

    def put(self, generation: Generation) -> None:
        self._store.put_generation(generation)
        with self._mu:
            self._puts += 1

    def put_many(self, generations: Iterable[Generation]) -> None:
        batch = list(generations)
        self._store.put_generations(batch)
        with self._mu:
            self._puts += len(batch)

    def __len__(self) -> int:
        return self._store.stats().generations

    def __contains__(self, key: str) -> bool:
        return self._store.get_generation(key) is not None

    def read_stats(self) -> dict[str, int]:
        """Cheap read-path counters (the runner samples these per run)."""
        return self._store.read_stats()

    def stats(self) -> dict[str, int | str]:
        with self._mu:
            hits, misses, puts = self._hits, self._misses, self._puts
        store_stats = self._store.stats()
        return stats_dict(
            "result_cache",
            backend="disk",
            entries=store_stats.generations,
            hits=hits,
            misses=misses,
            puts=puts,
            read_lru_hits=store_stats.read_lru_hits,
            read_lru_misses=store_stats.read_lru_misses,
            bytes_read=store_stats.bytes_read,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskResultCache({str(self._store.root)!r})"


class DiskScoreCache:
    """Write-through score memo: in-memory LRU over durable score records.

    Drop-in for :class:`~repro.runtime.cache.ScoreCache` (same
    ``get``/``put`` surface, keyed by the
    :func:`repro.runtime.runner.score_key` tuple).  Entries whose scorer
    fingerprint has a stable cross-process identity are written through
    to the store; the rest stay in the process-local LRU.
    """

    def __init__(self, store: RunStore, maxsize: int = 4096) -> None:
        self._store = store
        self._memory = ScoreCache(maxsize)
        self._mu = threading.Lock()
        self._disk_hits = 0
        self._disk_puts = 0
        self._unpersistable = 0

    def get(self, key: Hashable) -> object | None:
        score = self._memory.get(key)
        if score is not None:
            return score
        dkey = disk_score_key(key)
        if dkey is None:
            return None
        score = self._store.get_score(dkey)
        if score is None:
            return None
        self._memory.put(key, score)
        with self._mu:
            self._disk_hits += 1
        return score

    def put(self, key: Hashable, score: object) -> None:
        self._memory.put(key, score)
        dkey = disk_score_key(key)
        if dkey is None or not isinstance(score, Score):
            with self._mu:
                self._unpersistable += 1
            return
        assert isinstance(key, tuple)  # disk_score_key validated the shape
        self._store.put_score(dkey, key[0], score)
        with self._mu:
            self._disk_puts += 1

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> dict[str, int | str]:
        with self._mu:
            return stats_dict(
                "score_cache",
                backend="disk",
                entries=len(self._memory),
                disk_hits=self._disk_hits,
                disk_puts=self._disk_puts,
                unpersistable=self._unpersistable,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskScoreCache({str(self._store.root)!r}, entries={len(self)})"
