"""Append-only segment files: the storage substrate of the run store.

A store's ``segments/`` directory holds numbered files
(``segment-000001.seg``, ``segment-000002.seg``, …).  Writers append
whole checksummed record lines (see :mod:`repro.persist.records`) to the
highest-numbered segment and rotate to a fresh one past a size
threshold; compaction writes a brand-new segment (write-temp-then-
rename) and deletes the old ones.  Nothing is ever modified in place, so
a reader holding a shared lock always sees a prefix of well-formed
records plus, at worst, one torn tail from a crashed writer.

Torn tails self-heal: before appending, a writer terminates any
unterminated final line with a newline, so the garbage becomes one
checksum-failing record (skipped and warned about on scan) and every
subsequent record is clean.
"""

from __future__ import annotations

import os
import pathlib
import re
import warnings
from typing import Any, Callable, Iterator

from repro.errors import RecordCorruptError
from repro.persist.records import decode_record

SEGMENT_RE = re.compile(r"^segment-(\d{6,})\.seg$")

OnCorrupt = Callable[[pathlib.Path, int, str], None]


def segment_name(number: int) -> str:
    return f"segment-{number:06d}.seg"


def segment_number(name: str) -> int | None:
    """The rotation ordinal of one segment filename, or None if foreign."""
    match = SEGMENT_RE.match(name)
    return int(match.group(1)) if match else None


def list_segments(directory: pathlib.Path) -> list[pathlib.Path]:
    """Segment files of ``directory`` in rotation order."""
    if not directory.is_dir():
        return []
    found = [
        (number, directory / name)
        for name in os.listdir(directory)
        if (number := segment_number(name)) is not None
    ]
    return [path for _, path in sorted(found)]


def warn_corrupt(path: pathlib.Path, offset: int, reason: str) -> None:
    """Default corruption handler: skip the record, tell the user."""
    warnings.warn(
        f"skipping corrupt record in {path.name} at offset {offset}: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


def scan_entries(
    path: pathlib.Path,
    start: int = 0,
    *,
    on_corrupt: OnCorrupt = warn_corrupt,
) -> Iterator[tuple[int, bytes, dict[str, Any]]]:
    """Yield ``(offset, raw_line, payload)`` for every valid record.

    The raw line (checksum + payload + newline, exactly as on disk) lets
    offset-indexing callers record each entry's byte length and lets GC
    re-emit live records verbatim without re-encoding or re-hashing.

    Corrupt records (checksum mismatch, malformed line, torn tail) are
    reported through ``on_corrupt`` and skipped.  An unterminated final
    line ends the scan — the bytes stay unconsumed, so callers that
    track scan offsets must record the offset *after the last terminated
    line*, not the file size.
    """
    with path.open("rb") as handle:
        handle.seek(start)
        while True:
            offset = handle.tell()
            line = handle.readline()
            if not line:
                break
            if not line.endswith(b"\n"):
                # torn tail: report, leave unconsumed (a writer will heal it)
                on_corrupt(path, offset, "unterminated record (torn tail)")
                break
            try:
                payload = decode_record(line)
            except RecordCorruptError as exc:
                on_corrupt(path, offset, str(exc))
                continue
            yield offset, line, payload


def scan_records(
    path: pathlib.Path,
    start: int = 0,
    *,
    on_corrupt: OnCorrupt = warn_corrupt,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield ``(offset, payload)`` — :func:`scan_entries` minus the bytes."""
    for offset, _line, payload in scan_entries(path, start, on_corrupt=on_corrupt):
        yield offset, payload


def append_blobs(
    path: pathlib.Path, blobs: list[bytes], *, fsync: bool = False
) -> list[int]:
    """Append pre-encoded record lines; return the offset of each.

    The caller must hold the store's exclusive lock.  The file is opened
    in append mode, any torn tail left by a crashed writer is terminated
    first (healing it into one skippable corrupt record), and each blob
    is written with a single ``write`` call.
    """
    offsets: list[int] = []
    with path.open("ab") as handle:
        end = handle.seek(0, os.SEEK_END)
        if end > 0:
            with path.open("rb") as reader:
                reader.seek(end - 1)
                if reader.read(1) != b"\n":
                    handle.write(b"\n")
        for blob in blobs:
            offsets.append(handle.tell())
            handle.write(blob)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    return offsets


def write_atomic(path: pathlib.Path, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` via write-temp-then-rename."""
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
