"""Run manifests: provenance for every table cell.

A :class:`RunManifest` is the durable record of one
:func:`repro.runtime.run` invocation against a store: which plan ran
(name + content fingerprint + the per-unit generation keys), with which
executor/scheduler/cache configuration, how the units were satisfied
(the full :class:`~repro.runtime.runner.RunStats`), and how long it
took.  Manifests are small JSON files under ``manifests/`` in the store
directory, written via write-temp-then-rename so a crashed run never
leaves a half manifest.

The *plan fingerprint* is a content address over the plan's units
(uid + generation key per unit, in plan order).  Re-running the same
sweep — in another process, on another day — produces the same
fingerprint, which is how a repeated run is linked to its predecessor
(``resumed_from``) and how "the second pass generated nothing" becomes
an auditable statement rather than a hope.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Sequence

from repro.errors import HarnessError, PersistError
from repro.runtime.faults import (
    UnitFailure,
    failure_from_payload,
    failure_payload,
)
from repro.runtime.plan import Plan
from repro.runtime.runner import RunStats

# distinguishes several runs recorded by one process in the same millisecond
_RUN_SEQ = itertools.count()


def plan_fingerprint(plan: Plan) -> str:
    """Content address of one plan: SHA-256 over (uid, key) per unit."""
    body = "\x1e".join(f"{unit.uid}\x1f{unit.key}" for unit in plan.units)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def make_run_id(started_unix: float, fingerprint: str) -> str:
    """Unique, sortable id: timestamp + plan fingerprint + pid + sequence."""
    return (
        f"run-{int(started_unix * 1000):013d}-{fingerprint[:8]}"
        f"-p{os.getpid()}-{next(_RUN_SEQ)}"
    )


@dataclass(frozen=True)
class RunManifest:
    """What one ``runtime.run`` did, durably."""

    run_id: str
    plan_name: str
    plan_fingerprint: str
    unit_keys: tuple[str, ...]  # per-unit generation keys, plan order
    executor: str  # repr of the executor the run used
    scheduler: str  # repr of the scheduler
    cache: str  # repr of the result-cache backend
    stats: RunStats
    started_unix: float
    wall_seconds: float
    resumed_from: str | None = None  # run_id of the latest same-fingerprint run
    failures: tuple[UnitFailure, ...] = ()  # units quarantined by the policy
    # repro.stats/2 observability payloads (absent on pre-2 manifests):
    # the run's recorded Trace.as_dict() and a MetricsRegistry snapshot
    trace: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None

    @property
    def total_units(self) -> int:
        return self.stats.total_units

    def to_payload(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["unit_keys"] = list(self.unit_keys)
        # stats persist in the unified repro.stats schema (kind "run");
        # key names are the historical field names, so old consumers
        # keep working and old manifests rehydrate below
        payload["stats"] = self.stats.as_dict()
        payload["failures"] = [failure_payload(f) for f in self.failures]
        # optional observability payloads stay optional on disk too
        for key in ("trace", "metrics"):
            if payload[key] is None:
                del payload[key]
        return payload

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "RunManifest":
        try:
            # accepts both unified-schema stats and pre-schema payloads
            stats = RunStats.from_dict(payload["stats"])
            return RunManifest(
                run_id=payload["run_id"],
                plan_name=payload["plan_name"],
                plan_fingerprint=payload["plan_fingerprint"],
                unit_keys=tuple(payload["unit_keys"]),
                executor=payload["executor"],
                scheduler=payload["scheduler"],
                cache=payload["cache"],
                stats=stats,
                started_unix=payload["started_unix"],
                wall_seconds=payload["wall_seconds"],
                resumed_from=payload.get("resumed_from"),
                failures=tuple(
                    failure_from_payload(f)
                    for f in payload.get("failures", ())
                ),
                trace=payload.get("trace"),
                metrics=payload.get("metrics"),
            )
        except (KeyError, TypeError, HarnessError) as exc:
            raise PersistError(f"malformed run manifest: {exc}") from None

    def describe(self) -> str:
        """One ``ls-runs`` line: id, plan, and how units were satisfied."""
        s = self.stats
        resumed = f" resumed_from={self.resumed_from}" if self.resumed_from else ""
        failed = f" failed={len(self.failures)}" if self.failures else ""
        return (
            f"{self.run_id}  plan={self.plan_name!r} units={s.total_units} "
            f"generated={s.generated} cache_hits={s.cache_hits} "
            f"dedup={s.deduplicated} wall={self.wall_seconds:.2f}s"
            f"{failed}{resumed}"
        )


def build_manifest(
    *,
    plan: Plan,
    stats: RunStats,
    executor: object,
    scheduler: object,
    cache: object,
    started_unix: float,
    wall_seconds: float,
    failures: Sequence[UnitFailure] = (),
    resumed_from: str | None = None,
    latest_for: Callable[[str], "RunManifest | None"] | None = None,
    trace: dict[str, Any] | None = None,
    metrics: dict[str, Any] | None = None,
) -> RunManifest:
    """Assemble one :class:`RunManifest` for an executed run.

    The shared body of :meth:`repro.persist.RunStore.record_run` and the
    networked store client's ``record_run`` — the manifest is built the
    same way whether it is written to a local directory or shipped over
    the wire.  ``latest_for`` (fingerprint → latest same-plan manifest)
    supplies the implicit ``resumed_from`` link when the caller did not
    pin a predecessor explicitly.
    """
    fingerprint = plan_fingerprint(plan)
    if resumed_from is None and latest_for is not None:
        previous = latest_for(fingerprint)
        resumed_from = previous.run_id if previous is not None else None
    return RunManifest(
        run_id=make_run_id(started_unix, fingerprint),
        plan_name=plan.name,
        plan_fingerprint=fingerprint,
        unit_keys=tuple(unit.key for unit in plan.units),
        executor=repr(executor),
        scheduler=repr(scheduler),
        cache=repr(cache),
        stats=stats,
        started_unix=started_unix,
        wall_seconds=wall_seconds,
        resumed_from=resumed_from,
        failures=tuple(failures),
        trace=trace,
        metrics=metrics,
    )
