"""Entry point for ``python -m repro.persist``."""

import sys

from repro.persist.cli import main

sys.exit(main())
