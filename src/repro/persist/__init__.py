"""Durable run store: on-disk caches, run manifests, resumable sweeps.

This package is the persistence layer under the parallel evaluation
runtime.  A :class:`RunStore` is one directory of append-only,
checksummed segment files (generations + memoized scores, content-
addressed exactly like the in-memory caches) plus a registry of
:class:`RunManifest`\\ s — one durable provenance record per
:func:`repro.runtime.run` invocation.  N processes share one store
safely through ``fcntl`` file locking; torn writes are detected by
per-record checksums and healed on the next append.

Quickstart::

    from repro.persist import RunStore
    from repro.core.experiments import run_configuration

    with RunStore("./repro-store") as store:
        grid = run_configuration(store=store)      # cold: generates + records
        rerun = run_configuration(store=store)     # warm: zero generations
        assert store.latest_manifest().stats.generated == 0

    # later, any process:
    #   python -m repro.persist stats ./repro-store
    #   python -m repro.persist verify ./repro-store
    #   python -m repro.persist gc ./repro-store
    #   python -m repro.persist ls-runs ./repro-store
"""

from repro.persist.manifest import RunManifest, make_run_id, plan_fingerprint
from repro.persist.records import (
    decode_record,
    disk_score_key,
    encode_record,
    stable_fingerprint_token,
)
from repro.persist.store import (
    DiskResultCache,
    DiskScoreCache,
    GCStats,
    RunStore,
    StoreStats,
    VerifyReport,
)

__all__ = [
    "RunStore",
    "DiskResultCache",
    "DiskScoreCache",
    "RunManifest",
    "StoreStats",
    "VerifyReport",
    "GCStats",
    "plan_fingerprint",
    "make_run_id",
    "encode_record",
    "decode_record",
    "disk_score_key",
    "stable_fingerprint_token",
]
