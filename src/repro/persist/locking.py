"""Cross-process locking for the run store.

One ``LOCK`` file per store, locked with ``fcntl.flock``: appends,
compaction and index snapshots take the exclusive lock; segment scans
and record reads take the shared lock, so a reader never observes a
half-written append from a *cooperating* process (crashes are covered
separately by per-record checksums).

The lock is also thread-aware: within one process a
:class:`threading.Lock` serializes lock-holding sections, so one
:class:`~repro.persist.store.RunStore` instance may be shared between
the threads of a :class:`~repro.runtime.executors.ThreadedExecutor`
run.  Holding is *not* re-entrant — store code acquires the lock at its
public entry points only.

On platforms without :mod:`fcntl` (not a supported deployment target,
but the import is guarded) the file lock degrades to the in-process
thread lock with a one-time warning: single-process use stays correct,
cross-process exclusion is not available.
"""

from __future__ import annotations

import contextlib
import pathlib
import threading
import warnings
from typing import Iterator

try:  # pragma: no cover - fcntl exists on every supported platform
    import fcntl
except ImportError:  # pragma: no cover - windows fallback
    fcntl = None  # type: ignore[assignment]


class FileLock:
    """Shared/exclusive advisory lock on one lockfile."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._thread_lock = threading.Lock()
        self._warned = False

    @contextlib.contextmanager
    def _held(self, flag: int | None) -> Iterator[None]:
        with self._thread_lock:
            if fcntl is None:
                if not self._warned:  # pragma: no cover - windows fallback
                    self._warned = True
                    warnings.warn(
                        "fcntl unavailable: store locking is process-local only",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                yield
                return
            with self.path.open("ab") as handle:
                fcntl.flock(handle.fileno(), flag)
                try:
                    yield
                finally:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def shared(self) -> contextlib.AbstractContextManager[None]:
        """Hold the lock for reading (concurrent with other readers)."""
        return self._held(fcntl.LOCK_SH if fcntl is not None else None)

    def exclusive(self) -> contextlib.AbstractContextManager[None]:
        """Hold the lock for writing (excludes readers and writers)."""
        return self._held(fcntl.LOCK_EX if fcntl is not None else None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FileLock({str(self.path)!r})"
