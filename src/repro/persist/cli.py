"""Store maintenance CLI: ``python -m repro.persist <command> <store>``.

Commands:

* ``stats``   — record/segment/manifest counts and on-disk size;
* ``verify``  — full checksum audit; exit 1 when the store is unclean;
* ``gc``      — compact segments, drop stale/corrupt/orphan records;
* ``ls-runs`` — list recorded run manifests, oldest first; with
  ``--failures``, expand each run's quarantined-unit records (the
  triage surface of the quarantine-and-resume workflow).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.errors import StoreError
from repro.persist.store import RunStore


def _open(path: str) -> RunStore:
    return RunStore(path, create=False)


def cmd_stats(store: RunStore, args: argparse.Namespace) -> int:
    print(store.stats().describe())
    return 0


def cmd_verify(store: RunStore, args: argparse.Namespace) -> int:
    report = store.verify()
    print(report.describe())
    return 0 if report.clean else 1


def cmd_gc(store: RunStore, args: argparse.Namespace) -> int:
    print(store.gc().describe())
    return 0


def cmd_ls_runs(store: RunStore, args: argparse.Namespace) -> int:
    manifests = store.manifests()
    if getattr(args, "failures", False):
        manifests = [m for m in manifests if m.failures]
        if not manifests:
            print("no runs with recorded failures")
            return 0
        for manifest in manifests:
            print(manifest.describe())
            for failure in manifest.failures:
                print(f"    {failure.describe()}")
        return 0
    if not manifests:
        print("no runs recorded")
        return 0
    for manifest in manifests:
        print(manifest.describe())
    return 0


COMMANDS = {
    "stats": (cmd_stats, "record/segment/manifest counts and sizes"),
    "verify": (cmd_verify, "full checksum audit (exit 1 if unclean)"),
    "gc": (cmd_gc, "compact segments and drop dead records"),
    "ls-runs": (cmd_ls_runs, "list recorded run manifests"),
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.persist",
        description="Inspect and maintain a durable run store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (_handler, help_text) in COMMANDS.items():
        command = sub.add_parser(name, help=help_text)
        command.add_argument("store", help="path to the store directory")
        if name == "ls-runs":
            command.add_argument(
                "--failures",
                action="store_true",
                help="show only runs with quarantined units, one detail "
                "line per recorded failure",
            )
    args = parser.parse_args(argv)
    handler, _ = COMMANDS[args.command]
    try:
        store = _open(args.store)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return handler(store, args)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
