"""Store maintenance CLI: ``python -m repro.persist <command> <store>``.

``<store>`` is a local directory or a ``tcp://`` / ``unix://`` URL of a
running ``python -m repro.serve`` service; ``verify`` and ``gc`` run
remotely too (the server audits/compacts each shard and ships back one
aggregated report).

Commands:

* ``stats``   — record/segment/manifest counts and on-disk size; for a
  served store, also the server's live metrics digest (uptime, per-op
  latency quantiles);
* ``verify``  — full checksum audit; exit 1 when the store is unclean;
* ``gc``      — compact segments, drop stale/corrupt/orphan records;
* ``ls-runs`` — list recorded run manifests, oldest first; with
  ``--failures``, expand each run's quarantined-unit records (the
  triage surface of the quarantine-and-resume workflow); with
  ``--trace``, add each run's trace id and span count.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.errors import StoreError
from repro.persist.store import RunStore

#: commands that read shard files directly and so cannot run over a URL
#: (none since the server grew remote ``gc``/``verify`` ops; kept as the
#: gating hook for any future local-only command)
LOCAL_ONLY: tuple[str, ...] = ()


def _open(path: str, command: str):
    from repro.serve.url import open_store, parse_store_url

    family, target = parse_store_url(path)
    if family == "local":
        return RunStore(target, create=False)
    if command in LOCAL_ONLY:
        raise StoreError(
            f"'{command}' needs the store files; run it on the server's "
            f"--root directory, not on {path!r}"
        )
    return open_store(path)


def _metrics_digest(store) -> str | None:
    """A short live-metrics block for served stores (None for local)."""
    metrics = getattr(store, "metrics", None)
    if metrics is None:
        return None
    summary = metrics()["summary"]
    lines = [
        "live metrics:",
        f"  uptime          {summary['uptime_seconds']:.1f}s",
        f"  requests served {summary['requests_served']}"
        f" (in flight {summary['in_flight']:.0f})",
    ]
    for op, digest in sorted(summary["ops"].items()):
        lines.append(
            f"  op {op:<16} n={digest['count']:<6} "
            f"p50={digest['p50_s'] * 1e3:.2f}ms "
            f"p95={digest['p95_s'] * 1e3:.2f}ms "
            f"p99={digest['p99_s'] * 1e3:.2f}ms"
        )
    return "\n".join(lines)


def cmd_stats(store: RunStore, args: argparse.Namespace) -> int:
    print(store.stats().describe())
    digest = _metrics_digest(store)
    if digest is not None:
        print(digest)
    return 0


def cmd_verify(store: RunStore, args: argparse.Namespace) -> int:
    report = store.verify()
    print(report.describe())
    return 0 if report.clean else 1


def cmd_gc(store: RunStore, args: argparse.Namespace) -> int:
    print(store.gc().describe())
    return 0


def _trace_line(manifest) -> str:
    trace = manifest.trace
    if not isinstance(trace, dict):
        return "    trace -"
    trace_id = trace.get("trace_id", "?")
    spans = trace.get("spans")
    count = len(spans) if isinstance(spans, list) else 0
    return f"    trace {trace_id} ({count} spans)"


def cmd_ls_runs(store: RunStore, args: argparse.Namespace) -> int:
    manifests = store.manifests()
    show_trace = getattr(args, "trace", False)
    if getattr(args, "failures", False):
        manifests = [m for m in manifests if m.failures]
        if not manifests:
            print("no runs with recorded failures")
            return 0
        for manifest in manifests:
            print(manifest.describe())
            if show_trace:
                print(_trace_line(manifest))
            for failure in manifest.failures:
                print(f"    {failure.describe()}")
        return 0
    if not manifests:
        print("no runs recorded")
        return 0
    for manifest in manifests:
        print(manifest.describe())
        if show_trace:
            print(_trace_line(manifest))
    return 0


COMMANDS = {
    "stats": (cmd_stats, "record/segment/manifest counts and sizes"),
    "verify": (cmd_verify, "full checksum audit (exit 1 if unclean)"),
    "gc": (cmd_gc, "compact segments and drop dead records"),
    "ls-runs": (cmd_ls_runs, "list recorded run manifests"),
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.persist",
        description="Inspect and maintain a durable run store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (_handler, help_text) in COMMANDS.items():
        command = sub.add_parser(name, help=help_text)
        command.add_argument("store", help="path to the store directory")
        if name == "ls-runs":
            command.add_argument(
                "--failures",
                action="store_true",
                help="show only runs with quarantined units, one detail "
                "line per recorded failure",
            )
            command.add_argument(
                "--trace",
                action="store_true",
                help="add each run's trace id and span count",
            )
    args = parser.parse_args(argv)
    handler, _ = COMMANDS[args.command]
    try:
        store = _open(args.store, args.command)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return handler(store, args)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
