"""Store maintenance CLI: ``python -m repro.persist <command> <store>``.

Commands:

* ``stats``   — record/segment/manifest counts and on-disk size;
* ``verify``  — full checksum audit; exit 1 when the store is unclean;
* ``gc``      — compact segments, drop stale/corrupt/orphan records;
* ``ls-runs`` — list recorded run manifests, oldest first.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import StoreError
from repro.persist.store import RunStore


def _open(path: str) -> RunStore:
    return RunStore(path, create=False)


def cmd_stats(store: RunStore) -> int:
    print(store.stats().describe())
    return 0


def cmd_verify(store: RunStore) -> int:
    report = store.verify()
    print(report.describe())
    return 0 if report.clean else 1


def cmd_gc(store: RunStore) -> int:
    print(store.gc().describe())
    return 0


def cmd_ls_runs(store: RunStore) -> int:
    manifests = store.manifests()
    if not manifests:
        print("no runs recorded")
        return 0
    for manifest in manifests:
        print(manifest.describe())
    return 0


COMMANDS = {
    "stats": (cmd_stats, "record/segment/manifest counts and sizes"),
    "verify": (cmd_verify, "full checksum audit (exit 1 if unclean)"),
    "gc": (cmd_gc, "compact segments and drop dead records"),
    "ls-runs": (cmd_ls_runs, "list recorded run manifests"),
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.persist",
        description="Inspect and maintain a durable run store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (_handler, help_text) in COMMANDS.items():
        command = sub.add_parser(name, help=help_text)
        command.add_argument("store", help="path to the store directory")
    args = parser.parse_args(argv)
    handler, _ = COMMANDS[args.command]
    try:
        store = _open(args.store)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return handler(store)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
