"""BP-like step-oriented container (the ADIOS2 on-disk/streaming format).

A :class:`BPFile` is an append-only sequence of steps; each step maps a
variable name to its metadata (:class:`BPVarInfo`) and payload.  Writers
append whole steps (``begin_step``/``put``/``end_step`` in the engine layer
batch into one :class:`BPStep`); readers either iterate completed steps
(file engine) or block for the next step (stream engine).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.errors import StoreError


@dataclass(frozen=True)
class BPVarInfo:
    """Variable metadata: global shape and this writer's block offset/count."""

    name: str
    dtype: str
    shape: tuple[int, ...] = ()
    start: tuple[int, ...] = ()
    count: tuple[int, ...] = ()

    @property
    def is_scalar(self) -> bool:
        return self.shape == ()


@dataclass
class BPStep:
    """One completed output step: variable name → (info, data)."""

    index: int
    variables: dict[str, tuple[BPVarInfo, Any]] = field(default_factory=dict)

    def names(self) -> list[str]:
        return sorted(self.variables)

    def read(self, name: str) -> Any:
        try:
            return self.variables[name][1]
        except KeyError:
            raise StoreError(f"step {self.index}: no variable {name!r}") from None

    def info(self, name: str) -> BPVarInfo:
        try:
            return self.variables[name][0]
        except KeyError:
            raise StoreError(f"step {self.index}: no variable {name!r}") from None


class BPFile:
    """Thread-safe append-only sequence of :class:`BPStep`.

    ``finalize()`` marks end-of-stream so blocking readers terminate
    cleanly (ADIOS2's ``EndOfStream`` status).
    """

    def __init__(self, name: str = "<anonymous>.bp") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._steps: list[BPStep] = []
        self._finalized = False

    def append_step(self, variables: dict[str, tuple[BPVarInfo, Any]]) -> BPStep:
        with self._cond:
            if self._finalized:
                raise StoreError(f"{self.name}: cannot append to a finalized BP file")
            step = BPStep(index=len(self._steps), variables=dict(variables))
            self._steps.append(step)
            self._cond.notify_all()
            return step

    def finalize(self) -> None:
        with self._cond:
            self._finalized = True
            self._cond.notify_all()

    @property
    def finalized(self) -> bool:
        with self._lock:
            return self._finalized

    @property
    def num_steps(self) -> int:
        with self._lock:
            return len(self._steps)

    def step(self, index: int) -> BPStep:
        with self._lock:
            try:
                return self._steps[index]
            except IndexError:
                raise StoreError(
                    f"{self.name}: step {index} out of range ({len(self._steps)} steps)"
                ) from None

    def wait_for_step(self, index: int, timeout: float = 30.0) -> BPStep | None:
        """Block until step ``index`` exists; ``None`` signals end-of-stream."""
        import time

        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._steps) <= index:
                if self._finalized:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StoreError(
                        f"{self.name}: timed out waiting for step {index}"
                    )
                self._cond.wait(remaining)
            return self._steps[index]

    def steps(self) -> Iterator[BPStep]:
        """Iterate over the currently completed steps (snapshot)."""
        with self._lock:
            snapshot = list(self._steps)
        return iter(snapshot)

    def variables(self) -> list[str]:
        """Union of variable names over all steps."""
        with self._lock:
            names: set[str] = set()
            for step in self._steps:
                names.update(step.variables)
            return sorted(names)

    def read_all(self, name: str) -> list[np.ndarray]:
        """Payloads of ``name`` across steps (missing steps skipped)."""
        return [s.variables[name][1] for s in self.steps() if name in s.variables]
