"""In-memory filesystem namespace for simulated workflow I/O.

Workflow tasks address files by name (``outfile.h5``, ``output.bp``); the
filesystem maps those names to live file objects (:class:`~repro.store.h5.H5File`,
:class:`~repro.store.bp.BPFile`, or plain payloads).  A process-wide default
instance exists for convenience, but runtimes create private instances so
concurrent workflows never collide.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro.errors import StoreError


class SimFilesystem:
    """Thread-safe name → file-object namespace with creation waiting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._files: dict[str, Any] = {}

    def create(self, name: str, obj: Any, *, overwrite: bool = True) -> Any:
        """Register ``obj`` under ``name``; returns the object."""
        with self._cond:
            if not overwrite and name in self._files:
                raise StoreError(f"file exists: {name!r}")
            self._files[name] = obj
            self._cond.notify_all()
        return obj

    def open(self, name: str) -> Any:
        """Return the file object; raises :class:`StoreError` if absent."""
        with self._lock:
            try:
                return self._files[name]
            except KeyError:
                raise StoreError(f"no such file: {name!r}") from None

    def open_or_create(self, name: str, factory: Callable[[], Any]) -> Any:
        """Atomically fetch ``name``, creating it via ``factory`` if missing."""
        with self._cond:
            if name not in self._files:
                self._files[name] = factory()
                self._cond.notify_all()
            return self._files[name]

    def wait_for(self, name: str, timeout: float = 30.0) -> Any:
        """Block until ``name`` exists (producer/consumer file coupling)."""
        import time

        deadline = time.monotonic() + timeout
        with self._cond:
            while name not in self._files:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StoreError(f"timed out waiting for file {name!r}")
                self._cond.wait(remaining)
            return self._files[name]

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def remove(self, name: str) -> None:
        with self._lock:
            if name not in self._files:
                raise StoreError(f"no such file: {name!r}")
            del self._files[name]

    def listdir(self) -> list[str]:
        with self._lock:
            return sorted(self._files)

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.listdir())

    def __len__(self) -> int:
        with self._lock:
            return len(self._files)


_default = SimFilesystem()
_default_lock = threading.Lock()


def default_filesystem() -> SimFilesystem:
    """The process-wide default namespace (examples / quick scripts)."""
    return _default


def reset_default_filesystem() -> SimFilesystem:
    """Replace the default namespace (test isolation helper)."""
    global _default
    with _default_lock:
        _default = SimFilesystem()
    return _default
