"""Simulated storage substrate.

Three layers, mirroring what HPC in-situ stacks sit on:

* :class:`~repro.store.filesystem.SimFilesystem` — an in-memory POSIX-ish
  namespace holding structured file objects (our "file formats" are Python
  object trees, not byte blobs, because every consumer lives in-process).
* :class:`~repro.store.h5.H5File` — an HDF5-like hierarchy of groups and
  datasets with attributes, addressed by absolute paths such as
  ``/group1/grid``; supports change notification so memory-coupled
  consumers (Wilkins' LowFive memory mode) can block until a producer has
  published a dataset.
* :class:`~repro.store.bp.BPFile` — an ADIOS2 BP-like step-oriented
  container of variables.
"""

from repro.store.bp import BPFile, BPStep, BPVarInfo
from repro.store.filesystem import SimFilesystem, default_filesystem, reset_default_filesystem
from repro.store.h5 import H5Dataset, H5File, H5Group

__all__ = [
    "SimFilesystem",
    "default_filesystem",
    "reset_default_filesystem",
    "H5File",
    "H5Group",
    "H5Dataset",
    "BPFile",
    "BPStep",
    "BPVarInfo",
]
