"""HDF5-like hierarchical container.

Datasets live under slash-separated group paths (``/group1/grid``); each
holds a numpy array plus attributes.  Publication is *versioned by step*:
writers call :meth:`H5File.write` with a step index and readers can block in
:meth:`H5File.read_when_available` until a given (path, step) appears —
this is the mechanism behind Wilkins' memory (LowFive-style) transport in
our substrate, where producer and consumer share the same ``H5File`` object
instead of exchanging bytes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.errors import StoreError


def _normalize(path: str) -> str:
    if not path or not path.strip("/"):
        raise StoreError(f"invalid dataset path: {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


@dataclass
class H5Dataset:
    """A named array with attributes and per-step history."""

    path: str
    data: np.ndarray
    attrs: dict[str, Any] = field(default_factory=dict)
    step: int = 0

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        arr = np.asarray(self.data)
        return arr.astype(dtype) if dtype is not None else arr


@dataclass
class H5Group:
    """A group node: child groups and datasets directly below it."""

    path: str
    groups: dict[str, "H5Group"] = field(default_factory=dict)
    datasets: dict[str, H5Dataset] = field(default_factory=dict)


class H5File:
    """Thread-safe HDF5-like file with step-versioned datasets."""

    def __init__(self, name: str = "<anonymous>.h5") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._root = H5Group(path="/")
        # (path, step) -> H5Dataset ; latest version also lives in the tree
        self._versions: dict[tuple[str, int], H5Dataset] = {}

    # -- group / tree API ---------------------------------------------------

    def require_group(self, path: str) -> H5Group:
        """Create (if needed) and return the group at ``path``."""
        path = _normalize(path)
        with self._lock:
            return self._require_group_locked(path)

    def _require_group_locked(self, path: str) -> H5Group:
        node = self._root
        so_far = ""
        for part in [p for p in path.split("/") if p]:
            so_far += "/" + part
            if part not in node.groups:
                node.groups[part] = H5Group(path=so_far)
            node = node.groups[part]
        return node

    # -- dataset API ---------------------------------------------------------

    def write(
        self,
        path: str,
        data: np.ndarray,
        *,
        step: int = 0,
        attrs: dict[str, Any] | None = None,
    ) -> H5Dataset:
        """Publish ``data`` at ``path`` for ``step``; wakes blocked readers."""
        path = _normalize(path)
        arr = np.asarray(data)
        group_path, _, leaf = path.rpartition("/")
        with self._cond:
            group = self._require_group_locked(group_path or "/")
            ds = H5Dataset(path=path, data=arr, attrs=dict(attrs or {}), step=step)
            group.datasets[leaf] = ds
            self._versions[(path, step)] = ds
            self._cond.notify_all()
            return ds

    def read(self, path: str, *, step: int | None = None) -> H5Dataset:
        """Return the dataset at ``path`` (latest, or a specific ``step``)."""
        path = _normalize(path)
        with self._lock:
            if step is not None:
                try:
                    return self._versions[(path, step)]
                except KeyError:
                    raise StoreError(
                        f"{self.name}: no dataset {path!r} at step {step}"
                    ) from None
            ds = self._lookup_locked(path)
            if ds is None:
                raise StoreError(f"{self.name}: no dataset {path!r}")
            return ds

    def read_when_available(self, path: str, step: int, timeout: float = 30.0) -> H5Dataset:
        """Block until ``(path, step)`` is published, then return it."""
        import time

        path = _normalize(path)
        deadline = time.monotonic() + timeout
        with self._cond:
            while (path, step) not in self._versions:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StoreError(
                        f"{self.name}: timed out waiting for {path!r} step {step}"
                    )
                self._cond.wait(remaining)
            return self._versions[(path, step)]

    def _lookup_locked(self, path: str) -> H5Dataset | None:
        node = self._root
        parts = [p for p in path.split("/") if p]
        for part in parts[:-1]:
            node = node.groups.get(part)
            if node is None:
                return None
        return node.datasets.get(parts[-1]) if parts else None

    def exists(self, path: str, *, step: int | None = None) -> bool:
        path = _normalize(path)
        with self._lock:
            if step is not None:
                return (path, step) in self._versions
            return self._lookup_locked(path) is not None

    def paths(self) -> list[str]:
        """All dataset paths currently in the tree, sorted."""
        out: list[str] = []

        def visit(group: H5Group) -> None:
            out.extend(ds.path for ds in group.datasets.values())
            for child in group.groups.values():
                visit(child)

        with self._lock:
            visit(self._root)
        return sorted(out)

    def steps_of(self, path: str) -> list[int]:
        """All published step indices for ``path``."""
        path = _normalize(path)
        with self._lock:
            return sorted(s for (p, s) in self._versions if p == path)

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def __getitem__(self, path: str) -> H5Dataset:
        return self.read(path)

    def __iter__(self) -> Iterator[str]:
        return iter(self.paths())
