"""Deterministic fault injection: faulty providers, stores and pools.

The chaos suite (``tests/test_chaos.py``) needs faults that are *random
enough* to hit arbitrary units but *deterministic enough* to replay: the
same :class:`FaultPlan` seed must fault the same requests on every run,
in every executor, regardless of dispatch order.  So every injection
decision is a pure function of ``(plan seed, fault kind, request key)``
— no RNG state, no call-order dependence.

Three injection surfaces:

* :class:`FaultyProvider` wraps any registered model provider and
  injects transient failures, permanent failures, latency spikes and
  truncated outputs *in front of* real generation — the payload that
  eventually comes back is always the wrapped provider's own, so healed
  runs stay bit-identical to fault-free ones.
* :class:`FaultyStore` subclasses :class:`~repro.persist.RunStore` and
  makes chosen appends fail — cleanly (`OSError` before any byte lands)
  or torn (half a record hits the segment, then the error) — to prove
  the torn-tail healing documented in :mod:`repro.persist.segments`.
* :func:`kill_pool_workers` shoots the live worker processes of a
  scoring pool, to prove the inline-scoring fallback.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, Sequence

from repro.errors import HarnessError, ModelError
from repro.llm.api import ModelAPI, get_model, register_model
from repro.llm.types import BatchRequest, ChatMessage, GenerateConfig, ModelOutput
from repro.persist.records import encode_record
from repro.persist.segments import list_segments, segment_name
from repro.persist.store import RunStore

FAULT_KINDS = ("transient", "permanent", "latency", "truncate")


class FaultPlan:
    """A seeded, order-independent schedule of injected faults.

    ``roll(kind, key)`` maps to a uniform float in ``[0, 1)`` via SHA-256
    over ``(seed, kind, key)``; a fault of some kind strikes a request
    exactly when its roll lands under that kind's rate.  Because the
    roll depends only on content, the *same requests* fault under serial,
    threaded, async and batched execution — which is what lets the chaos
    suite assert bit-identical grids across executors under fire.

    ``transient_times`` bounds how often a transient (or truncate) fault
    re-strikes one request: the first N calls for that request fail,
    every later call succeeds.  Set it below the retry policy's attempt
    count to heal within a run, above it to force quarantine and test
    resume.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        transient_rate: float = 0.0,
        permanent_rate: float = 0.0,
        latency_rate: float = 0.0,
        truncate_rate: float = 0.0,
        transient_times: int = 1,
        latency_s: float = 0.005,
    ) -> None:
        for label, rate in (
            ("transient_rate", transient_rate),
            ("permanent_rate", permanent_rate),
            ("latency_rate", latency_rate),
            ("truncate_rate", truncate_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise HarnessError(f"{label} must be in [0, 1], got {rate}")
        if transient_times < 1:
            raise HarnessError(
                f"transient_times must be >= 1, got {transient_times}"
            )
        if latency_s < 0:
            raise HarnessError(f"latency_s must be >= 0, got {latency_s}")
        self.seed = seed
        self.transient_rate = transient_rate
        self.permanent_rate = permanent_rate
        self.latency_rate = latency_rate
        self.truncate_rate = truncate_rate
        self.transient_times = transient_times
        self.latency_s = latency_s

    def roll(self, kind: str, key: str) -> float:
        """Uniform [0, 1) decided purely by (seed, kind, key)."""
        digest = hashlib.sha256(
            f"{self.seed}\x1f{kind}\x1f{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def strikes(self, kind: str, key: str) -> bool:
        """Whether a fault of ``kind`` is scheduled for request ``key``."""
        if kind not in FAULT_KINDS:
            raise HarnessError(
                f"unknown fault kind {kind!r}; kinds: {list(FAULT_KINDS)}"
            )
        rate = getattr(self, f"{kind}_rate")
        return rate > 0.0 and self.roll(kind, key) < rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rates = ", ".join(
            f"{kind}={getattr(self, f'{kind}_rate')}"
            for kind in FAULT_KINDS
            if getattr(self, f"{kind}_rate") > 0
        )
        return f"FaultPlan(seed={self.seed}, {rates or 'no faults'})"


def request_key(messages: Sequence[ChatMessage], config: GenerateConfig) -> str:
    """Content address of one provider call, as the fault plan sees it.

    Mirrors the spirit of :func:`repro.runtime.units.generation_key`
    (prompt content + seed) without importing the runtime: the provider
    layer only sees messages and a config.
    """
    body = "\x1f".join(
        [f"{m.role}:{m.content}" for m in messages] + [f"s={config.seed}"]
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class FaultyProvider:
    """A registered provider wrapped in a deterministic fault injector.

    Fault order per request: permanent (always fails), then transient /
    truncate (fail the first ``plan.transient_times`` calls, then pass
    through), then a latency spike, then the real provider.  Successful
    outputs are the wrapped provider's own bytes — injection never
    alters a payload that the harness will cache, which is what keeps
    healed runs bit-identical.

    Truncation is surfaced the way well-behaved SDKs surface it: the
    provider *detects* the truncated body and raises a retryable
    :class:`~repro.errors.ModelError` (carrying the truncated text in
    the message) instead of returning a silently-short success that
    would poison the content-addressed cache.

    Counters (``calls``, ``batch_calls``, ``injected``) are
    lock-protected: threaded and async executors call concurrently.
    """

    def __init__(self, provider: ModelAPI, plan: FaultPlan) -> None:
        self.inner = provider
        self.plan = plan
        self.name = provider.name
        self.calls = 0
        self.batch_calls = 0
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._mu = threading.Lock()
        self._struck: dict[tuple[str, str], int] = {}  # (kind, key) -> strikes

    @property
    def injected_total(self) -> int:
        with self._mu:
            return sum(self.injected.values())

    def _strike(self, kind: str, key: str) -> bool:
        """Consume one strike of ``kind`` for ``key`` if one is due."""
        if not self.plan.strikes(kind, key):
            return False
        with self._mu:
            seen = self._struck.get((kind, key), 0)
            if kind != "permanent" and seen >= self.plan.transient_times:
                return False
            self._struck[(kind, key)] = seen + 1
            self.injected[kind] += 1
        return True

    def _inject(self, messages: Sequence[ChatMessage], config: GenerateConfig) -> None:
        key = request_key(messages, config)
        if self._strike("permanent", key):
            raise ModelError(
                f"{self.name}: injected permanent fault for request {key[:12]}"
            )
        if self._strike("transient", key):
            raise ModelError(
                f"{self.name}: injected transient fault for request {key[:12]}"
            )
        if self._strike("truncate", key):
            preview = messages[-1].content[:40] if messages else ""
            raise ModelError(
                f"{self.name}: injected truncated output for request "
                f"{key[:12]} (stop_reason=length, body={preview!r}…)"
            )
        if self.plan.strikes("latency", key):
            with self._mu:
                self.injected["latency"] += 1
            time.sleep(self.plan.latency_s)

    # -- ModelAPI ------------------------------------------------------------

    def generate(
        self, messages: Sequence[ChatMessage], config: GenerateConfig
    ) -> ModelOutput:
        with self._mu:
            self.calls += 1
        self._inject(messages, config)
        return self.inner.generate(messages, config)

    def generate_batch(
        self, requests: Sequence[BatchRequest]
    ) -> list[ModelOutput]:
        """Batched surface: one poisoned request fails the whole batch.

        This is how real batch endpoints behave, and it is exactly what
        exercises :class:`~repro.runtime.batching.BatchingExecutor`'s
        per-unit salvage fallback.  Only the poisoned request consumes a
        strike — its siblings keep their schedules for the per-unit
        retries that follow.
        """
        with self._mu:
            self.batch_calls += 1
        for messages, config in requests:
            self._inject(messages, config)
        batch = getattr(self.inner, "generate_batch", None)
        if callable(batch):
            return list(batch(requests))
        return [self.inner.generate(m, c) for m, c in requests]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyProvider({self.name!r}, {self.plan!r})"


@contextlib.contextmanager
def faulty_models(
    names: Iterable[str], plan: FaultPlan
) -> Iterator[dict[str, FaultyProvider]]:
    """Swap registered providers for fault-injecting wrappers, then restore.

    Yields ``{name: FaultyProvider}`` so tests can assert on call and
    injection counters.  The originals are re-registered on exit even if
    the body raises, so one chaotic test never leaks faults into the
    next.
    """
    wrapped: dict[str, FaultyProvider] = {}
    originals: dict[str, ModelAPI] = {}
    try:
        for name in names:
            inner = get_model(name).provider
            originals[name] = inner
            proxy = FaultyProvider(inner, plan)
            register_model(name, lambda proxy=proxy: proxy)
            wrapped[name] = proxy
        yield wrapped
    finally:
        for name, inner in originals.items():
            register_model(name, lambda inner=inner: inner)


class FaultyStore(RunStore):
    """A :class:`~repro.persist.RunStore` whose appends can be made to fail.

    ``fail_appends`` / ``torn_appends`` name zero-based append-call
    ordinals.  A *failed* append raises :class:`OSError` before any byte
    reaches disk; a *torn* append writes the front half of the first
    record (no newline, no index update) and then raises — simulating a
    crash mid-``write``.  Both leave the store object usable: the next
    successful append terminates the torn tail (see
    :func:`repro.persist.segments.append_blobs`), and a reopen scans
    past it with a corruption warning, losing nothing that was ever
    acknowledged.
    """

    def __init__(
        self,
        path,
        *,
        fail_appends: Iterable[int] = (),
        torn_appends: Iterable[int] = (),
        **kwargs,
    ) -> None:
        super().__init__(path, **kwargs)
        self.append_calls = 0
        self.injected_failures = 0
        self._fail_appends = set(fail_appends)
        self._torn_appends = set(torn_appends)
        self._fault_mu = threading.Lock()

    def _append_payloads(self, payloads) -> None:
        if not payloads:
            return super()._append_payloads(payloads)
        with self._fault_mu:
            call = self.append_calls
            self.append_calls += 1
            torn = call in self._torn_appends
            fail = call in self._fail_appends
            if torn or fail:
                self.injected_failures += 1
        if torn:
            self._tear(payloads[0])
            raise OSError(f"injected torn append (call {call})")
        if fail:
            raise OSError(f"injected append failure (call {call})")
        return super()._append_payloads(payloads)

    def _tear(self, payload) -> None:
        """Leave the front half of a record on the active segment."""
        blob = encode_record(payload)
        segments = list_segments(self._segments_dir)
        seg = segments[-1] if segments else self._segments_dir / segment_name(1)
        with seg.open("ab") as handle:
            handle.write(blob[: max(1, len(blob) // 2)].rstrip(b"\n"))


def kill_pool_workers(pool) -> int:
    """Kill every live worker process of a scoring pool; return the count.

    Accepts a :class:`~repro.runtime.scoring.ScoringPool`, an
    :class:`~repro.runtime.scoring.AdaptiveScoringPool`, or a raw
    :class:`concurrent.futures.ProcessPoolExecutor` — the wrappers are
    unwrapped through their ``_pool`` attributes.  Killing from outside
    (rather than asking workers to exit) is the point: the next submit
    observes :class:`~concurrent.futures.process.BrokenProcessPool`,
    which the score handles must heal inline.
    """
    executor = pool
    while executor is not None and not isinstance(executor, ProcessPoolExecutor):
        executor = getattr(executor, "_pool", None)
    if executor is None:
        return 0
    processes = list(getattr(executor, "_processes", {}).values())
    for process in processes:
        process.kill()
    for process in processes:
        process.join()
    return len(processes)
