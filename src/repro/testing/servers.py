"""Server-side chaos: kill/restart, slow-replica and overload harnesses.

PR 7's harness injects faults *inside* one process (providers, store
I/O, scoring workers).  The resilience layer needs faults on the other
side of the wire, so this module adds three deterministic server
harnesses:

* :class:`InProcessServer` — a real :class:`~repro.serve.server.StoreServer`
  listening on a loopback TCP port from a background event-loop thread.
  ``stop()``/``restart()`` model a server crash and recovery with *the
  same root directory*, exactly like a supervisor restarting a dead
  process.  (This is the threaded-server idiom the serve tests grew;
  promoted here so every suite and bench can boot replicas in one
  line.)
* :class:`ChaosStoreServer` — a ``StoreServer`` whose ``handle`` adds a
  fixed per-op delay (the *slow replica* of hedged-read tests) and can
  be armed with a :class:`~repro.testing.faults.FaultPlan` to refuse a
  deterministic subset of requests as overload.
* :class:`ServerProcess` — a genuinely separate
  ``python -m repro.serve`` OS process (booted via ``--ready-file``
  polling), for tests that must SIGKILL a replica mid-sweep: no amount
  of in-process mocking proves what ``kill -9`` proves.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Sequence

from repro.errors import HarnessError, ServerOverloadedError
from repro.testing.faults import FaultPlan

from repro.serve.server import StoreServer


class InProcessServer:
    """One real ``StoreServer`` on a loopback port, on its own thread.

    The event loop lives on a daemon thread; ``stop()`` tears down the
    listener and closes the shard stores (a crash, as a client sees
    it), and ``restart()`` boots a fresh server over the same root on a
    new port unless ``port`` pins one.
    """

    def __init__(
        self,
        root: "str | pathlib.Path",
        *,
        shards: int = 2,
        port: int = 0,
        server: StoreServer | None = None,
        **server_options: Any,
    ) -> None:
        self.root = pathlib.Path(root)
        self.shards = shards
        self._options = server_options
        self.server = (
            server
            if server is not None
            else StoreServer(self.root, shards=shards, **server_options)
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()
        self.host: str | None = None
        self.port = port
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise HarnessError("in-process store server failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            self.host, self.port = await self.server.start_tcp(
                "127.0.0.1", self.port
            )
            self._started.set()

        self._loop.run_until_complete(boot())
        try:
            self._loop.run_forever()
        finally:
            try:
                self._loop.run_until_complete(self.server.aclose())
                # abandon in-flight connection handlers the way a dead
                # process would: cancellation runs their finally blocks,
                # which close the transports — clients blocked on a
                # response see EOF instead of hanging forever
                tasks = asyncio.all_tasks(self._loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    self._loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True)
                    )
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens()
                )
            finally:
                self._loop.close()

    # -- addresses -----------------------------------------------------------

    def url(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def address(self) -> tuple[str, Any]:
        return ("tcp", (self.host, self.port))

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Stop listening and close the stores (the crash, client-side)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)

    def restart(self) -> "InProcessServer":
        """A fresh server over the same root (same port by default)."""
        self.stop()
        return InProcessServer(
            self.root,
            shards=self.shards,
            port=self.port,
            **self._options,
        )

    def __enter__(self) -> "InProcessServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ChaosStoreServer(StoreServer):
    """A ``StoreServer`` with deterministic latency and overload faults.

    ``op_delay_s`` stalls every handled request by a fixed delay — the
    slow replica hedged reads route around.  ``overload_plan`` (a
    :class:`~repro.testing.faults.FaultPlan`; its ``transient`` strikes
    on key ``op:<n>`` decide refusals) answers the deterministic subset
    of requests with a typed retryable refusal, exactly like the real
    admission gate under pressure.
    """

    def __init__(
        self,
        root: "str | pathlib.Path",
        *,
        op_delay_s: float = 0.0,
        overload_plan: FaultPlan | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(root, **kwargs)
        if op_delay_s < 0:
            raise HarnessError(f"op_delay_s must be >= 0, got {op_delay_s}")
        self.op_delay_s = op_delay_s
        self.overload_plan = overload_plan
        self._chaos_mu = threading.Lock()
        self._chaos_seq = 0
        self.delayed_requests = 0
        self.refused_requests = 0

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        op = str(request.get("op", "?"))
        with self._chaos_mu:
            self._chaos_seq += 1
            seq = self._chaos_seq
        if self.overload_plan is not None and self.overload_plan.strikes(
            "transient", f"{op}:{seq}"
        ):
            with self._chaos_mu:
                self.refused_requests += 1
            return {
                "ok": False,
                "error": f"chaos overload refused {op} #{seq}",
                "error_type": ServerOverloadedError.__name__,
            }
        if self.op_delay_s:
            with self._chaos_mu:
                self.delayed_requests += 1
            time.sleep(self.op_delay_s)
        return super().handle(request)


class ServerProcess:
    """A real ``python -m repro.serve`` subprocess, SIGKILL-able.

    Boots with ``--ready-file`` and polls it, so the constructor
    returns only once the server is listening.  ``kill()`` is
    ``SIGKILL`` — no drain, no goodbye, the genuine article —
    ``terminate()`` is the graceful ``SIGTERM`` drain, and
    ``restart()`` reboots over the same root.
    """

    def __init__(
        self,
        root: "str | pathlib.Path",
        *,
        shards: int = 2,
        port: int = 0,
        extra_args: Sequence[str] = (),
        start_timeout_s: float = 30.0,
    ) -> None:
        self.root = pathlib.Path(root)
        self.shards = shards
        self.extra_args = tuple(extra_args)
        self.start_timeout_s = start_timeout_s
        self.ready_file = self.root / f"ready-{os.getpid()}-{port}.json"
        self.proc: subprocess.Popen | None = None
        self.host: str | None = None
        self.port = port
        self._boot(port)

    def _boot(self, port: int) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        if self.ready_file.exists():
            self.ready_file.unlink()
        env = dict(os.environ)
        src = pathlib.Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--root",
                str(self.root),
                "--shards",
                str(self.shards),
                "--tcp",
                f"127.0.0.1:{port}",
                "--ready-file",
                str(self.ready_file),
                *self.extra_args,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + self.start_timeout_s
        while time.monotonic() < deadline:
            if self.ready_file.exists():
                try:
                    endpoints = json.loads(self.ready_file.read_text())
                except (OSError, ValueError):
                    pass  # mid-write: poll again
                else:
                    self.host, self.port = endpoints["tcp"]
                    return
            if self.proc.poll() is not None:
                raise HarnessError(
                    f"store server exited with {self.proc.returncode} "
                    f"before becoming ready"
                )
            time.sleep(0.01)
        self.proc.kill()
        raise HarnessError(
            f"store server not ready within {self.start_timeout_s}s"
        )

    # -- addresses -----------------------------------------------------------

    def url(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    # -- lifecycle -----------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL — the server gets no chance to flush or drain."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self, timeout_s: float = 15.0) -> int:
        """SIGTERM — graceful drain; returns the exit code."""
        if self.alive:
            self.proc.send_signal(signal.SIGTERM)
            self.proc.wait(timeout=timeout_s)
        return self.proc.returncode

    def restart(self) -> None:
        """Boot again over the same root, reusing the bound port."""
        self.kill()
        self._boot(self.port)

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.kill()
        if self.ready_file.exists():
            self.ready_file.unlink()
