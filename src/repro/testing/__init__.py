"""Chaos-engineering harness: deterministic fault injection for tests.

Everything here exists to *prove* the fault-tolerance layer
(:mod:`repro.runtime.faults`) and the resilience layer
(:mod:`repro.serve.replicated`) — inject provider faults, store I/O
faults, scoring-worker deaths and *server-side* faults (kill/restart,
slow replicas, overload refusals) on a fixed seed, then assert the
harness heals around them with bit-identical results.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultyProvider,
    FaultyStore,
    faulty_models,
    kill_pool_workers,
)
from repro.testing.servers import (
    ChaosStoreServer,
    InProcessServer,
    ServerProcess,
)

__all__ = [
    "FaultPlan",
    "FaultyProvider",
    "FaultyStore",
    "faulty_models",
    "kill_pool_workers",
    "ChaosStoreServer",
    "InProcessServer",
    "ServerProcess",
]
