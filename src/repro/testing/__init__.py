"""Chaos-engineering harness: deterministic fault injection for tests.

Everything here exists to *prove* the fault-tolerance layer
(:mod:`repro.runtime.faults`) — inject provider faults, store I/O
faults and scoring-worker deaths on a fixed seed, then assert the
harness heals around them with bit-identical results.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultyProvider,
    FaultyStore,
    faulty_models,
    kill_pool_workers,
)

__all__ = [
    "FaultPlan",
    "FaultyProvider",
    "FaultyStore",
    "faulty_models",
    "kill_pool_workers",
]
