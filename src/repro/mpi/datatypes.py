"""Reduction operators and datatype tags for the simulated MPI."""

from __future__ import annotations

import operator
from dataclasses import dataclass
from enum import Enum
from functools import reduce as _functools_reduce
from typing import Callable, Iterable

import numpy as np


class Datatype(Enum):
    """MPI-style datatype tags (informational; payloads are Python objects)."""

    INT = "int"
    FLOAT = "float"
    DOUBLE = "double"
    BYTE = "byte"
    SIZE_T = "size_t"


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative reduction operator.

    Works elementwise on numpy arrays and directly on scalars; mixed inputs
    follow numpy broadcasting.
    """

    name: str
    fn: Callable

    def combine(self, values: Iterable):
        values = list(values)
        if not values:
            raise ValueError(f"reduce({self.name}) over zero values")
        return _functools_reduce(self.fn, values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"


SUM = ReduceOp("sum", operator.add)
PROD = ReduceOp("prod", operator.mul)
MIN = ReduceOp("min", lambda a, b: np.minimum(a, b) if _arrayish(a, b) else min(a, b))
MAX = ReduceOp("max", lambda a, b: np.maximum(a, b) if _arrayish(a, b) else max(a, b))
LAND = ReduceOp("land", lambda a, b: bool(a) and bool(b))
LOR = ReduceOp("lor", lambda a, b: bool(a) or bool(b))


def _arrayish(*values) -> bool:
    return any(isinstance(v, np.ndarray) for v in values)
