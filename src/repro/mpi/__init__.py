"""Simulated MPI.

A thread-backed, mpi4py-flavoured message passing substrate that the
workflow runtimes execute on.  It provides:

* :class:`~repro.mpi.comm.SimComm` — rank/size, blocking and non-blocking
  point-to-point (``send``/``recv``/``isend``/``irecv``), and the standard
  collectives (``barrier``, ``bcast``, ``scatter``, ``gather``,
  ``allgather``, ``reduce``, ``allreduce``, ``alltoall``), including
  ``split`` for sub-communicators.
* :func:`~repro.mpi.launcher.mpiexec` — SPMD launcher that runs a Python
  function on ``n`` ranks (threads), with exception propagation and
  deadlock timeouts.

The lowercase methods communicate arbitrary picklable Python objects,
mirroring mpi4py's convention; numpy arrays pass through without copies
(ranks share an address space, like an in-situ colocated deployment).
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Request, SimComm, Status, World
from repro.mpi.datatypes import MAX, MIN, PROD, SUM, ReduceOp
from repro.mpi.launcher import LaunchResult, mpiexec

__all__ = [
    "SimComm",
    "World",
    "Status",
    "Request",
    "ANY_SOURCE",
    "ANY_TAG",
    "ReduceOp",
    "SUM",
    "MIN",
    "MAX",
    "PROD",
    "mpiexec",
    "LaunchResult",
]
