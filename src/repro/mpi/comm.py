"""Thread-backed simulated MPI communicator.

Each :class:`World` owns one mailbox per rank; a :class:`SimComm` is a view
of the world bound to a rank (and, for split communicators, a subset of
ranks).  Point-to-point messages carry ``(ctx, source, tag, payload)`` and
are matched by ``(ctx, source, tag)`` with wildcard support on source and
tag; the context id isolates communicators that share the same world, so a
split communicator can never steal a message addressed to its parent.
Collectives are built from point-to-point fan-in/fan-out and therefore
synchronize exactly like their MPI counterparts, including on subgroups.

All blocking receives honour a deadline (default 30 s) and raise
:class:`~repro.errors.CommunicatorError` instead of hanging, which keeps the
test suite robust against bugs in workflow runtimes built on top.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CommunicatorError

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 30.0


@dataclass
class Status:
    """Delivery metadata for a received message."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class _Envelope:
    ctx: str
    source: int
    tag: int
    payload: Any


class _Mailbox:
    """Per-rank message store with (ctx, source, tag) matching."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: list[_Envelope] = []

    def put(self, env: _Envelope) -> None:
        with self._cond:
            self._messages.append(env)
            self._cond.notify_all()

    def _match(self, ctx: str, source: int, tag: int) -> int | None:
        for i, env in enumerate(self._messages):
            if env.ctx != ctx:
                continue
            if source not in (ANY_SOURCE, env.source):
                continue
            if tag not in (ANY_TAG, env.tag):
                continue
            return i
        return None

    def get(self, ctx: str, source: int, tag: int, timeout: float) -> _Envelope:
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                idx = self._match(ctx, source, tag)
                if idx is not None:
                    return self._messages.pop(idx)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CommunicatorError(
                        f"recv(ctx={ctx}, source={source}, tag={tag}) "
                        f"timed out after {timeout:.1f}s"
                    )
                self._cond.wait(remaining)

    def probe(self, ctx: str, source: int, tag: int) -> bool:
        with self._lock:
            return self._match(ctx, source, tag) is not None


class Request:
    """Handle for a non-blocking operation (mpi4py-style ``wait``/``test``)."""

    def __init__(self, resolve, already_done: bool = False, value: Any = None) -> None:
        self._resolve = resolve
        self._done = already_done
        self._value = value

    def wait(self, timeout: float = _DEFAULT_TIMEOUT) -> Any:
        if not self._done:
            self._value = self._resolve(timeout)
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        try:
            self._value = self._resolve(0.001)
        except CommunicatorError:
            return False, None
        self._done = True
        return True, self._value


@dataclass
class World:
    """A set of ranks sharing mailboxes; the root of all communicators."""

    size: int
    timeout: float = _DEFAULT_TIMEOUT
    _mailboxes: list[_Mailbox] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise CommunicatorError(f"world size must be positive, got {self.size}")
        self._mailboxes = [_Mailbox() for _ in range(self.size)]

    def comm(self, rank: int) -> "SimComm":
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"rank {rank} out of range for world of {self.size}")
        return SimComm(self, rank, list(range(self.size)), ctx="world")


class SimComm:
    """Communicator bound to one rank of a :class:`World`.

    ``group`` is the ordered list of world ranks belonging to this
    communicator (order defines the new rank numbering, so split
    communicators honour ``MPI_Comm_split``'s ``key`` argument).
    """

    def __init__(self, world: World, world_rank: int, group: list[int], ctx: str) -> None:
        self._world = world
        self._world_rank = world_rank
        self._group = list(group)
        self._ctx = ctx
        if world_rank not in self._group:
            raise CommunicatorError(
                f"world rank {world_rank} not a member of group {self._group}"
            )

    # -- identity ---------------------------------------------------------

    @property
    def rank(self) -> int:
        """Rank within this communicator's group."""
        return self._group.index(self._world_rank)

    @property
    def size(self) -> int:
        return len(self._group)

    @property
    def ctx(self) -> str:
        """Context id isolating this communicator's message space."""
        return self._ctx

    def Get_rank(self) -> int:  # mpi4py spelling
        return self.rank

    def Get_size(self) -> int:  # mpi4py spelling
        return self.size

    def _world_rank_of(self, group_rank: int) -> int:
        if not 0 <= group_rank < len(self._group):
            raise CommunicatorError(
                f"rank {group_rank} out of range for communicator of size {self.size}"
            )
        return self._group[group_rank]

    # -- point to point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a Python object to ``dest`` (buffered, non-blocking)."""
        target = self._world_rank_of(dest)
        self._world._mailboxes[target].put(_Envelope(self._ctx, self.rank, tag, obj))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Blocking receive matched on ``(source, tag)`` with wildcards."""
        env = self._world._mailboxes[self._world_rank].get(
            self._ctx, source, tag,
            timeout if timeout is not None else self._world.timeout,
        )
        if status is not None:
            status.source, status.tag = env.source, env.tag
        return env.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(resolve=lambda _t: None, already_done=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(resolve=lambda t: self.recv(source, tag, timeout=t))

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self._world._mailboxes[self._world_rank].probe(self._ctx, source, tag)

    # -- collectives (implemented in collectives.py) ------------------------

    def barrier(self) -> None:
        from repro.mpi import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        from repro.mpi import collectives

        return collectives.bcast(self, obj, root)

    def scatter(self, sendobj=None, root: int = 0):
        from repro.mpi import collectives

        return collectives.scatter(self, sendobj, root)

    def gather(self, sendobj, root: int = 0):
        from repro.mpi import collectives

        return collectives.gather(self, sendobj, root)

    def allgather(self, sendobj):
        from repro.mpi import collectives

        return collectives.allgather(self, sendobj)

    def alltoall(self, sendobjs):
        from repro.mpi import collectives

        return collectives.alltoall(self, sendobjs)

    def reduce(self, sendobj, op=None, root: int = 0):
        from repro.mpi import collectives
        from repro.mpi.datatypes import SUM

        return collectives.reduce(self, sendobj, op or SUM, root)

    def allreduce(self, sendobj, op=None):
        from repro.mpi import collectives
        from repro.mpi.datatypes import SUM

        return collectives.allreduce(self, sendobj, op or SUM)

    def split(self, color: int, key: int | None = None) -> "SimComm | None":
        from repro.mpi import collectives

        return collectives.split(self, color, key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimComm(rank={self.rank}, size={self.size}, ctx={self._ctx!r})"
