"""SPMD launcher for the simulated MPI: run a function on N ranks.

:func:`mpiexec` mirrors ``mpiexec -n N python script.py``: it creates a
:class:`~repro.mpi.comm.World`, spawns one thread per rank, calls
``fn(comm, *args, **kwargs)`` on each, joins all threads, and re-raises the
first rank failure (annotated with its rank) so tests see real tracebacks
instead of hangs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CommunicatorError
from repro.mpi.comm import SimComm, World


@dataclass
class LaunchResult:
    """Return values and timing for one SPMD launch."""

    returns: list[Any]
    nprocs: int
    failures: list[tuple[int, BaseException]] = field(default_factory=list)

    def __getitem__(self, rank: int) -> Any:
        return self.returns[rank]


def mpiexec(
    fn: Callable[..., Any],
    nprocs: int,
    *args: Any,
    timeout: float = 60.0,
    comm_timeout: float = 30.0,
    **kwargs: Any,
) -> LaunchResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    Raises the first per-rank exception (chained, with rank context) after
    all threads have been joined; raises :class:`CommunicatorError` if any
    rank is still alive after ``timeout`` seconds (deadlock guard).
    """
    if nprocs <= 0:
        raise CommunicatorError(f"nprocs must be positive, got {nprocs}")
    world = World(nprocs, timeout=comm_timeout)
    returns: list[Any] = [None] * nprocs
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()

    def run_rank(rank: int) -> None:
        comm: SimComm = world.comm(rank)
        try:
            returns[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            with failures_lock:
                failures.append((rank, exc))

    threads = [
        threading.Thread(target=run_rank, args=(rank,), name=f"mpi-rank-{rank}", daemon=True)
        for rank in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        raise CommunicatorError(f"ranks did not terminate within {timeout}s: {alive}")
    if failures:
        failures.sort(key=lambda pair: pair[0])
        rank, exc = failures[0]
        raise CommunicatorError(f"rank {rank} failed: {exc!r}") from exc
    return LaunchResult(returns=returns, nprocs=nprocs)
