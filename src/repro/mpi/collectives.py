"""Collective operations for :class:`~repro.mpi.comm.SimComm`.

Every collective is built from point-to-point messages on reserved tags, so
it synchronizes exactly the participating group (including split
sub-communicators) and composes with user point-to-point traffic without
interference — the reserved tag space starts at ``2**20``.

Sequential collectives on the same communicator are ordered by the FIFO
property of the per-(source, tag) mailbox queues, matching MPI semantics
for non-overlapping collective calls.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import CommunicatorError
from repro.mpi.datatypes import ReduceOp

_TAG_BASE = 1 << 20
TAG_BCAST = _TAG_BASE + 0
TAG_SCATTER = _TAG_BASE + 1
TAG_GATHER = _TAG_BASE + 2
TAG_REDUCE = _TAG_BASE + 3
TAG_ALLTOALL = _TAG_BASE + 4
TAG_SPLIT = _TAG_BASE + 5
TAG_BARRIER_IN = _TAG_BASE + 6
TAG_BARRIER_OUT = _TAG_BASE + 7


def barrier(comm) -> None:
    """Group barrier: fan-in to rank 0, then fan-out release."""
    if comm.size == 1:
        return
    if comm.rank == 0:
        for src in range(1, comm.size):
            comm.recv(source=src, tag=TAG_BARRIER_IN)
        for dst in range(1, comm.size):
            comm.send(None, dest=dst, tag=TAG_BARRIER_OUT)
    else:
        comm.send(None, dest=0, tag=TAG_BARRIER_IN)
        comm.recv(source=0, tag=TAG_BARRIER_OUT)


def bcast(comm, obj: Any, root: int = 0) -> Any:
    """Broadcast ``obj`` from ``root``; every rank returns the value."""
    if comm.size == 1:
        return obj
    if comm.rank == root:
        for dst in range(comm.size):
            if dst != root:
                comm.send(obj, dest=dst, tag=TAG_BCAST)
        return obj
    return comm.recv(source=root, tag=TAG_BCAST)


def scatter(comm, sendobj: Sequence | None, root: int = 0):
    """Scatter one element of ``sendobj`` to each rank."""
    if comm.rank == root:
        if sendobj is None or len(sendobj) != comm.size:
            raise CommunicatorError(
                f"scatter at root needs exactly {comm.size} elements, "
                f"got {None if sendobj is None else len(sendobj)}"
            )
        for dst in range(comm.size):
            if dst != root:
                comm.send(sendobj[dst], dest=dst, tag=TAG_SCATTER)
        return sendobj[root]
    return comm.recv(source=root, tag=TAG_SCATTER)


def gather(comm, sendobj, root: int = 0):
    """Gather one element from each rank at ``root`` (None elsewhere)."""
    if comm.rank == root:
        out = [None] * comm.size
        out[root] = sendobj
        for src in range(comm.size):
            if src != root:
                out[src] = comm.recv(source=src, tag=TAG_GATHER)
        return out
    comm.send(sendobj, dest=root, tag=TAG_GATHER)
    return None


def allgather(comm, sendobj):
    """Gather at rank 0, then broadcast the full list to everyone."""
    gathered = gather(comm, sendobj, root=0)
    return bcast(comm, gathered, root=0)


def alltoall(comm, sendobjs: Sequence):
    """Each rank sends ``sendobjs[j]`` to rank ``j`` and receives one per peer."""
    if len(sendobjs) != comm.size:
        raise CommunicatorError(
            f"alltoall needs exactly {comm.size} elements, got {len(sendobjs)}"
        )
    for dst in range(comm.size):
        if dst != comm.rank:
            comm.send(sendobjs[dst], dest=dst, tag=TAG_ALLTOALL)
    out = [None] * comm.size
    out[comm.rank] = sendobjs[comm.rank]
    for src in range(comm.size):
        if src != comm.rank:
            out[src] = comm.recv(source=src, tag=TAG_ALLTOALL)
    return out


def reduce(comm, sendobj, op: ReduceOp, root: int = 0):
    """Reduce values from all ranks at ``root`` with ``op`` (None elsewhere).

    The combination order is rank order, making results deterministic even
    for non-commutative float addition.
    """
    gathered = gather(comm, sendobj, root=root)
    if comm.rank == root:
        return op.combine(gathered)
    return None


def allreduce(comm, sendobj, op: ReduceOp):
    """Reduce at rank 0 then broadcast the result."""
    reduced = reduce(comm, sendobj, op, root=0)
    return bcast(comm, reduced, root=0)


def split(comm, color: int, key: int | None = None):
    """Partition the communicator by ``color`` (``MPI_Comm_split``).

    Ranks passing a negative color receive ``None`` (``MPI_UNDEFINED``).
    ``key`` orders ranks within the new group; ties and the default fall
    back to the old rank order.
    """
    from repro.mpi.comm import SimComm

    me = (color, key if key is not None else comm.rank, comm.rank, comm._world_rank)
    everyone = allgather(comm, me)
    if color < 0:
        return None
    members = sorted(
        (k, old_rank, world_rank)
        for c, k, old_rank, world_rank in everyone
        if c == color
    )
    group = [world_rank for _k, _old, world_rank in members]
    ctx = f"{comm.ctx}/split:{color}:{'.'.join(str(g) for g in group)}"
    return SimComm(comm._world, comm._world_rank, group, ctx=ctx)
