"""Pure data: every number published in the paper's evaluation section.

Used in two places:

* the simulated-LLM profiles (:mod:`repro.llm.profiles`) calibrate their
  corruption intensity against these targets (see DESIGN.md §2 for the
  honesty note about what that does and does not establish);
* the reporting layer prints paper-vs-measured comparisons in
  EXPERIMENTS.md and the benchmark logs.
"""

from repro.data.paper_numbers import (
    CONFIG_SYSTEMS,
    ANNOTATION_SYSTEMS,
    TRANSLATION_DIRECTIONS,
    FEWSHOT_SYSTEM_OFFSETS,
    FIGURE1A,
    FIGURE1B,
    FIGURE1C,
    MODELS,
    MODEL_LABELS,
    PROMPT_VARIANTS,
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE5,
    Cell4,
)

__all__ = [
    "MODELS",
    "MODEL_LABELS",
    "PROMPT_VARIANTS",
    "CONFIG_SYSTEMS",
    "ANNOTATION_SYSTEMS",
    "TRANSLATION_DIRECTIONS",
    "FEWSHOT_SYSTEM_OFFSETS",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE5",
    "FIGURE1A",
    "FIGURE1B",
    "FIGURE1C",
    "Cell4",
]
