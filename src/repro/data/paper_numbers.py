"""Published evaluation numbers from Yildiz & Peterka, SC-W'25.

Transcribed from Tables 1, 2, 3, 5 and the Figure 1 heatmaps of
arXiv:2412.10606v3.  Cell values are ``(bleu, bleu_se, chrf, chrf_se)``
(means and standard errors over 5 trials, scores in 0..100).  Figure 1
holds single BLEU values per (system, prompt variant, model) cell.
"""

from __future__ import annotations

from typing import NamedTuple


class Cell4(NamedTuple):
    """mean/stderr pairs for BLEU and ChrF."""

    bleu: float
    bleu_se: float
    chrf: float
    chrf_se: float


MODELS = ("o3", "gemini-2.5-pro", "claude-sonnet-4", "llama-3.3-70b")

MODEL_LABELS = {
    "o3": "o3",
    "gemini-2.5-pro": "Gemini-2.5-Pro",
    "claude-sonnet-4": "Claude-Sonnet-4",
    "llama-3.3-70b": "LLaMA-3.3-70B",
}

PROMPT_VARIANTS = ("original", "detailed", "different-style", "paraphrased", "reordered")

CONFIG_SYSTEMS = ("adios2", "henson", "wilkins")
ANNOTATION_SYSTEMS = ("adios2", "henson", "pycompss", "parsl")
TRANSLATION_DIRECTIONS = (
    ("henson", "adios2"),
    ("adios2", "henson"),
    ("parsl", "pycompss"),
    ("pycompss", "parsl"),
)

# ---------------------------------------------------------------------------
# Table 1: workflow configuration
# ---------------------------------------------------------------------------
TABLE1: dict[tuple[str, str], Cell4] = {
    ("adios2", "o3"): Cell4(59.1, 2.3, 60.5, 1.7),
    ("adios2", "gemini-2.5-pro"): Cell4(73.0, 1.8, 72.1, 1.3),
    ("adios2", "claude-sonnet-4"): Cell4(72.1, 0.0, 69.3, 0.0),
    ("adios2", "llama-3.3-70b"): Cell4(35.9, 0.7, 48.6, 1.0),
    ("henson", "o3"): Cell4(20.2, 2.3, 22.4, 1.9),
    ("henson", "gemini-2.5-pro"): Cell4(26.9, 1.9, 28.2, 0.8),
    ("henson", "claude-sonnet-4"): Cell4(25.0, 0.0, 25.5, 0.0),
    ("henson", "llama-3.3-70b"): Cell4(27.7, 1.0, 26.2, 0.8),
    ("wilkins", "o3"): Cell4(30.0, 1.5, 29.1, 1.0),
    ("wilkins", "gemini-2.5-pro"): Cell4(31.6, 3.4, 33.2, 1.1),
    ("wilkins", "claude-sonnet-4"): Cell4(36.8, 0.8, 34.8, 0.8),
    ("wilkins", "llama-3.3-70b"): Cell4(39.0, 0.0, 34.7, 0.3),
}

# ---------------------------------------------------------------------------
# Table 2: task code annotation
# ---------------------------------------------------------------------------
TABLE2: dict[tuple[str, str], Cell4] = {
    ("adios2", "o3"): Cell4(60.3, 2.1, 59.0, 1.7),
    ("adios2", "gemini-2.5-pro"): Cell4(51.9, 0.7, 54.7, 1.5),
    ("adios2", "claude-sonnet-4"): Cell4(37.7, 0.3, 34.1, 0.1),
    ("adios2", "llama-3.3-70b"): Cell4(53.4, 3.0, 55.9, 2.0),
    ("henson", "o3"): Cell4(38.1, 5.0, 36.1, 4.2),
    ("henson", "gemini-2.5-pro"): Cell4(42.7, 9.4, 47.1, 8.7),
    ("henson", "claude-sonnet-4"): Cell4(39.7, 0.0, 49.7, 0.9),
    ("henson", "llama-3.3-70b"): Cell4(16.3, 1.6, 19.6, 1.5),
    ("pycompss", "o3"): Cell4(72.4, 1.8, 78.3, 2.1),
    ("pycompss", "gemini-2.5-pro"): Cell4(89.3, 3.1, 88.6, 2.9),
    ("pycompss", "claude-sonnet-4"): Cell4(49.7, 0.0, 62.5, 0.0),
    ("pycompss", "llama-3.3-70b"): Cell4(9.9, 4.0, 23.3, 1.3),
    ("parsl", "o3"): Cell4(39.3, 6.0, 57.1, 2.4),
    ("parsl", "gemini-2.5-pro"): Cell4(35.6, 6.3, 55.2, 4.2),
    ("parsl", "claude-sonnet-4"): Cell4(35.8, 0.0, 49.7, 0.0),
    ("parsl", "llama-3.3-70b"): Cell4(41.2, 1.2, 57.2, 0.1),
}

# ---------------------------------------------------------------------------
# Table 3: task code translation (keys are (source, target))
# ---------------------------------------------------------------------------
TABLE3: dict[tuple[tuple[str, str], str], Cell4] = {
    (("henson", "adios2"), "o3"): Cell4(56.2, 2.1, 54.8, 1.4),
    (("henson", "adios2"), "gemini-2.5-pro"): Cell4(52.2, 1.9, 49.3, 1.7),
    (("henson", "adios2"), "claude-sonnet-4"): Cell4(34.6, 1.2, 33.1, 1.2),
    (("henson", "adios2"), "llama-3.3-70b"): Cell4(42.8, 0.5, 45.9, 0.7),
    (("adios2", "henson"), "o3"): Cell4(24.9, 2.0, 39.6, 1.8),
    (("adios2", "henson"), "gemini-2.5-pro"): Cell4(35.4, 1.6, 50.2, 1.6),
    (("adios2", "henson"), "claude-sonnet-4"): Cell4(32.5, 0.0, 40.6, 0.1),
    (("adios2", "henson"), "llama-3.3-70b"): Cell4(19.3, 0.2, 30.2, 0.3),
    (("parsl", "pycompss"), "o3"): Cell4(48.4, 1.7, 70.6, 2.1),
    (("parsl", "pycompss"), "gemini-2.5-pro"): Cell4(78.4, 7.5, 82.3, 5.4),
    (("parsl", "pycompss"), "claude-sonnet-4"): Cell4(49.7, 0.0, 62.5, 0.0),
    (("parsl", "pycompss"), "llama-3.3-70b"): Cell4(29.4, 0.6, 42.1, 1.5),
    (("pycompss", "parsl"), "o3"): Cell4(23.6, 2.6, 48.5, 2.5),
    (("pycompss", "parsl"), "gemini-2.5-pro"): Cell4(39.7, 3.3, 60.2, 1.7),
    (("pycompss", "parsl"), "claude-sonnet-4"): Cell4(23.7, 0.0, 57.1, 0.0),
    (("pycompss", "parsl"), "llama-3.3-70b"): Cell4(23.3, 0.2, 44.4, 0.1),
}

# ---------------------------------------------------------------------------
# Table 5: few-shot vs zero-shot for configuration (averaged over systems)
# ---------------------------------------------------------------------------
TABLE5: dict[str, dict[str, Cell4]] = {
    "o3": {
        "zero-shot": Cell4(36.5, 4.5, 37.3, 4.5),
        "few-shot": Cell4(89.3, 2.7, 89.7, 2.6),
    },
    "gemini-2.5-pro": {
        "zero-shot": Cell4(43.8, 5.7, 44.5, 5.3),
        "few-shot": Cell4(86.7, 2.3, 87.6, 2.1),
    },
    "claude-sonnet-4": {
        "zero-shot": Cell4(44.6, 5.3, 43.2, 5.0),
        "few-shot": Cell4(91.5, 3.0, 95.9, 2.4),
    },
    "llama-3.3-70b": {
        "zero-shot": Cell4(34.2, 1.3, 36.5, 2.5),
        "few-shot": Cell4(84.1, 2.1, 85.0, 2.4),
    },
}

# The paper reports few-shot only averaged over the three config systems.
# Per-system calibration targets are derived as average + offset, offsets
# chosen to preserve the paper's per-system difficulty ordering and to sum
# to zero (documented substitution; see DESIGN.md).
FEWSHOT_SYSTEM_OFFSETS = {"adios2": 4.0, "henson": -3.0, "wilkins": -1.0}

# ---------------------------------------------------------------------------
# Figure 1: prompt-sensitivity BLEU heatmaps.
# FIGURE1x[system][variant] = (o3, gemini, claude, llama), model order as MODELS.
# ---------------------------------------------------------------------------
FIGURE1A: dict[str, dict[str, tuple[float, float, float, float]]] = {
    "adios2": {
        "original": (61.8, 76.0, 72.1, 34.8),
        "detailed": (66.2, 74.8, 64.4, 26.4),
        "different-style": (54.5, 66.0, 52.5, 13.0),
        "paraphrased": (58.1, 71.8, 60.8, 32.3),
        "reordered": (51.7, 72.0, 73.6, 9.4),
    },
    "henson": {
        "original": (25.3, 20.6, 25.0, 27.1),
        "detailed": (28.3, 28.3, 30.8, 34.5),
        "different-style": (21.4, 26.4, 29.2, 17.7),
        "paraphrased": (27.6, 17.5, 22.7, 23.4),
        "reordered": (21.6, 24.1, 21.3, 17.5),
    },
    "wilkins": {
        "original": (31.7, 33.3, 37.6, 39.0),
        "detailed": (41.2, 47.2, 43.0, 53.4),
        "different-style": (30.7, 20.6, 36.8, 38.9),
        "paraphrased": (28.2, 22.5, 38.5, 36.3),
        "reordered": (30.9, 37.5, 36.8, 39.7),
    },
}

FIGURE1B: dict[str, dict[str, tuple[float, float, float, float]]] = {
    "adios2": {
        "original": (59.5, 54.1, 37.8, 47.0),
        "detailed": (55.5, 53.3, 36.4, 38.8),
        "different-style": (61.7, 51.9, 36.7, 51.7),
        "paraphrased": (51.2, 56.3, 38.2, 50.2),
        "reordered": (57.0, 53.4, 38.8, 48.3),
    },
    "henson": {
        "original": (25.6, 39.4, 39.2, 18.0),
        "detailed": (43.1, 41.0, 22.2, 46.2),
        "different-style": (42.5, 47.6, 35.9, 19.8),
        "paraphrased": (34.3, 48.8, 39.6, 9.2),
        "reordered": (38.6, 38.5, 39.1, 15.2),
    },
    "pycompss": {
        "original": (69.9, 80.1, 49.7, 13.8),
        "detailed": (87.4, 96.3, 100.0, 38.9),
        "different-style": (54.1, 76.6, 49.7, 48.9),
        "paraphrased": (65.6, 86.1, 49.7, 16.5),
        "reordered": (51.8, 84.5, 49.7, 45.9),
    },
    "parsl": {
        "original": (47.2, 37.4, 35.8, 43.0),
        "detailed": (47.9, 41.9, 65.1, 34.1),
        "different-style": (20.5, 21.5, 71.7, 33.4),
        "paraphrased": (51.7, 28.0, 15.2, 39.9),
        "reordered": (36.0, 42.2, 10.1, 36.3),
    },
}

FIGURE1C: dict[tuple[str, str], dict[str, tuple[float, float, float, float]]] = {
    ("henson", "adios2"): {
        "original": (55.1, 51.1, 34.4, 41.9),
        "detailed": (52.5, 47.9, 29.6, 41.4),
        "different-style": (57.2, 48.0, 29.3, 46.5),
        "paraphrased": (52.7, 48.5, 29.6, 43.6),
        "reordered": (58.1, 44.6, 29.6, 39.3),
    },
    ("adios2", "henson"): {
        "original": (22.4, 41.5, 33.2, 19.2),
        "detailed": (34.1, 33.9, 34.5, 31.7),
        "different-style": (26.6, 33.4, 34.0, 19.5),
        "paraphrased": (26.2, 31.5, 33.9, 20.4),
        "reordered": (25.8, 34.8, 34.3, 18.6),
    },
    ("parsl", "pycompss"): {
        "original": (40.1, 83.0, 49.7, 34.3),
        "detailed": (61.6, 100.0, 97.5, 66.4),
        "different-style": (50.5, 87.7, 82.7, 38.2),
        "paraphrased": (67.7, 90.8, 49.7, 43.5),
        "reordered": (49.8, 75.3, 49.7, 54.0),
    },
    ("pycompss", "parsl"): {
        "original": (22.1, 41.6, 23.7, 23.2),
        "detailed": (25.7, 34.5, 32.4, 26.4),
        "different-style": (16.6, 20.9, 23.2, 26.0),
        "paraphrased": (20.2, 35.7, 23.7, 26.8),
        "reordered": (19.1, 35.3, 23.5, 23.8),
    },
}
