"""User-prompt templates for the three experiments and five variants.

The *annotation* variants are verbatim from the paper (§4.4); the
configuration and translation variants follow the same style taxonomy
(original / detailed / different-style / paraphrased / reordered).  Each
template carries a distinctive ``marker`` substring that the simulated
models use to recognize which phrasing they were given (a real model
reacts to wording; the simulator must too, and it may only use the prompt
text itself).

Templates take ``system`` (display name) for configuration/annotation and
``source``/``target`` for translation; ``{code}`` is replaced with the
task code for annotation/translation prompts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HarnessError

WORKFLOW_DESCRIPTION = (
    "a 3-node workflow consisting of one producer and two consumer tasks, "
    "where producer generates grid and particles datasets, consumer1 reads "
    "grid and consumer2 reads particles datasets. Producer requires 3 "
    "processes, and each consumer runs on a single process"
)


@dataclass(frozen=True)
class PromptTemplate:
    """One prompt phrasing: experiment, variant, body, detection marker."""

    experiment: str
    variant: str
    body: str
    marker: str


CONFIGURATION_TEMPLATES = {
    "original": PromptTemplate(
        "configuration",
        "original",
        "I would like to have " + WORKFLOW_DESCRIPTION + ". "
        "Please provide the workflow configuration file for the {system} "
        "workflow system.",
        "I would like to have a 3-node workflow",
    ),
    "detailed": PromptTemplate(
        "configuration",
        "detailed",
        "Write the workflow configuration file for the {system} workflow "
        "system describing " + WORKFLOW_DESCRIPTION + ". "
        "Use the correct configuration fields of {system}{field_hints} and "
        "output only the configuration file.",
        "Use the correct configuration fields",
    ),
    "different-style": PromptTemplate(
        "configuration",
        "different-style",
        "Developer, please write the {system} workflow configuration file "
        "for the following setup: " + WORKFLOW_DESCRIPTION + ". Ensure the "
        "data and process requirements of every task are captured.",
        "Developer, please write the",
    ),
    "paraphrased": PromptTemplate(
        "configuration",
        "paraphrased",
        "I have a workflow made of three tasks: " + WORKFLOW_DESCRIPTION + ". "
        "Could you please write the configuration file that the {system} "
        "workflow system expects for it?",
        "Could you please write the configuration file",
    ),
    "reordered": PromptTemplate(
        "configuration",
        "reordered",
        "Please provide the workflow configuration file for the {system} "
        "workflow system for the following workflow: " + WORKFLOW_DESCRIPTION + ".",
        "for the following workflow:",
    ),
}

# Annotation variants are quoted from the paper (§4.4), parameterized on the
# system name.
ANNOTATION_TEMPLATES = {
    "original": PromptTemplate(
        "annotation",
        "original",
        "You are assisting in the development of a simple producer-consumer "
        "workflow using the {system} system. The producer task code is "
        "provided below. Annotate this task code in order to use it with "
        "the {system} system.\n\n{code}",
        "You are assisting in the development",
    ),
    "different-style": PromptTemplate(
        "annotation",
        "different-style",
        "Developer, please take the following producer task code and "
        "annotate it for compatibility with the {system} system in a "
        "producer-consumer workflow. Ensure all necessary {system} "
        "functions for data handling are included.\n\n{code}",
        "Developer, please take the following",
    ),
    "paraphrased": PromptTemplate(
        "annotation",
        "paraphrased",
        "I have some code for a producer task that I want to integrate into "
        "a producer-consumer workflow using {system}. Could you please go "
        "through the code provided below and add the necessary {system} "
        "annotations?\n\n{code}",
        "Could you please go through the code provided below",
    ),
    "reordered": PromptTemplate(
        "annotation",
        "reordered",
        "Below is the producer task code for a simple producer-consumer "
        "workflow. Using the {system} system, please annotate this code to "
        "enable its use within the workflow.\n\n{code}",
        "Below is the producer task code",
    ),
    "detailed": PromptTemplate(
        "annotation",
        "detailed",
        "Annotate the producer task code below with {system} calls "
        "({api_hints}) to enable it to run as part of a {system} "
        "workflow.\n\n{code}",
        "Annotate the producer task code below with",
    ),
}

TRANSLATION_TEMPLATES = {
    "original": PromptTemplate(
        "translation",
        "original",
        "Task codes are provided below for the {source} workflow system for "
        "a 2-node workflow. Your task is to translate these codes to use "
        "the {target} system.\n\n{code}",
        "Task codes are provided below for the",
    ),
    "detailed": PromptTemplate(
        "translation",
        "detailed",
        "Translate the {source} task code below into code for the {target} "
        "workflow system. Make sure to use the correct {target} API calls "
        "({api_hints}) and preserve the simulation logic.\n\n{code}",
        "Make sure to use the correct",
    ),
    "different-style": PromptTemplate(
        "translation",
        "different-style",
        "Developer, please convert the following {source} task code so that "
        "it runs under the {target} workflow system, keeping the data "
        "exchange semantics equivalent.\n\n{code}",
        "Developer, please convert",
    ),
    "paraphrased": PromptTemplate(
        "translation",
        "paraphrased",
        "I wrote this task code for the {source} workflow system. Could you "
        "please rewrite it to work with the {target} system instead?\n\n{code}",
        "Could you please rewrite it",
    ),
    "reordered": PromptTemplate(
        "translation",
        "reordered",
        "Translate the task codes below to use the {target} system. They "
        "are currently written for the {source} workflow system.\n\n{code}",
        "Translate the task codes below",
    ),
}

FEWSHOT_SUFFIX = (
    "\n\nHere is an example configuration file for a simple 2-node workflow "
    "for the {system} workflow system:\n\n```\n{example}\n```"
)

# API/field hints interpolated into the "detailed" variants, per system.
DETAILED_HINTS = {
    "adios2": "like DefineVariable, Put, BeginStep, EndStep",
    "henson": "like henson_save_array, henson_save_int, henson_yield",
    "parsl": "like @python_app, File, inputs, outputs",
    "pycompss": "like @task, FILE_OUT, compss_wait_on, compss_wait_on_file",
    "wilkins": "like tasks, func, nprocs, inports, outports, dsets",
}

TEMPLATES_BY_EXPERIMENT = {
    "configuration": CONFIGURATION_TEMPLATES,
    "annotation": ANNOTATION_TEMPLATES,
    "translation": TRANSLATION_TEMPLATES,
}


def get_template(experiment: str, variant: str) -> PromptTemplate:
    """Look up a template; raises :class:`HarnessError` for unknown keys."""
    try:
        by_variant = TEMPLATES_BY_EXPERIMENT[experiment]
    except KeyError:
        raise HarnessError(
            f"unknown experiment {experiment!r} "
            f"(have {sorted(TEMPLATES_BY_EXPERIMENT)})"
        ) from None
    try:
        return by_variant[variant]
    except KeyError:
        raise HarnessError(
            f"unknown prompt variant {variant!r} (have {sorted(by_variant)})"
        ) from None
