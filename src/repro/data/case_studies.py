"""Verbatim case-study listings from the paper (Tables 4 and 6).

These are the *published model outputs* the paper analyses qualitatively:

* Table 4 — the ADIOS2→Henson translations produced by LLaMA-3.3-70B
  (left: Henson API invented in ADIOS2's image) and Gemini-2.5-Pro
  (right: correct exchange calls, hallucinated init/data-handle calls);
* Table 6 — o3's Wilkins configuration with few-shot prompting (left,
  correct — identical to our ground truth) and zero-shot (right, invented
  ``workflow/command/processes/inputs/outputs/dependencies`` fields).

They feed two deterministic benches: the validators must flag exactly the
symbols the paper marks in red, and the case-study reports print the
listings next to our simulator's generations.
"""

from __future__ import annotations

from repro.utils.text import dedent_strip

# Table 4, left: LLaMA-3.3-70B — ADIOS2-shaped Henson API (all henson_*
# calls below except the loop structure are nonexistent).
TABLE4_LLAMA = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <unistd.h>
    #include <time.h>
    #include <mpi.h>
    #include "henson.h"

    int main(int argc, char** argv) {
        MPI_Init(&argc, &argv);
        int rank, size;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &size);

        size_t n = 50;
        if (argc > 1) n = atoi(argv[1]);
        if (rank == 0) printf("Using %zu random numbers\\n", n);

        int iterations = 3;
        if (argc > 2) iterations = atoi(argv[2]);

        int sleep_interval = 0;
        if (argc > 3) sleep_interval = atoi(argv[3]);

        srand(time(NULL) + rank);

        henson_t h = henson_init(MPI_COMM_WORLD);
        henson_stage_t stage = henson_declare_stage(h, "SimulationOutput");

        henson_var_t varArray = henson_declare_var(stage, "array", HENSON_FLOAT, 2,
            (size_t[]){size, n}, (size_t[]){rank, 0}, (size_t[]){1, n});
        henson_var_t varT = henson_declare_var(stage, "t", HENSON_INT, 0,
            NULL, NULL, NULL);

        henson_output_t output = henson_open_output(stage, "output.bp",
            HENSON_WRITE);

        int t;
        for (t = 0; t < iterations; ++t) {
            if (sleep_interval) sleep(sleep_interval);

            float* array = malloc(n * sizeof(float));
            size_t i;
            for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

            float sum = 0;
            for (i = 0; i < n; ++i) sum += array[i];
            printf("[%d] Simulation [t=%d]: sum = %f\\n", rank, t, sum);

            float total_sum;
            MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
            if (rank == 0)
                printf("[%d] Simulation [t=%d]: total_sum = %f\\n", rank, t, total_sum);

            henson_begin_step(output);
            henson_put_var(output, varArray, array);
            henson_put_var(output, varT, &t);
            henson_end_step(output);

            free(array);
        }

        henson_close_output(output);
        henson_finalize(h);

        MPI_Finalize();
        return 0;
    }
    """
)

# Table 4, right: Gemini-2.5-Pro — correct henson_save/henson_yield usage,
# hallucinated init/rank/size, data-handle types, and finalize.
TABLE4_GEMINI = dedent_strip(
    """
    #include <stdio.h>
    #include <stdlib.h>
    #include <unistd.h>
    #include <time.h>
    #include <mpi.h>
    #include <henson/henson.h>

    int main(int argc, char** argv)
    {
        henson_init(argc, argv, MPI_COMM_WORLD);
        int rank = henson_rank();
        int size = henson_size();

        size_t n = 50;
        if (argc > 1) n = atoi(argv[1]);
        if (rank == 0) printf("Using %zu random numbers\\n", n);

        int sleep_interval = 0;
        if (argc > 2) sleep_interval = atoi(argv[2]);

        srand(time(NULL) + rank);

        int t = 0;
        while (henson_active())
        {
            if (sleep_interval) sleep(sleep_interval);

            float* array = (float*) malloc(n * sizeof(float));
            size_t i;
            for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

            float sum = 0;
            for (i = 0; i < n; ++i) sum += array[i];
            printf("[%d] Simulation [t=%d]: sum = %f\\n", rank, t, sum);

            float total_sum;
            MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
            if (rank == 0)
                printf("[%d] Simulation [t=%d]: total_sum = %f\\n", rank, t, total_sum);

            henson_data_t array_hd;
            henson_data_init(&array_hd, HENSON_FLOAT, n, array);
            henson_save("array", &array_hd);

            henson_data_t t_hd;
            henson_data_init_scalar(&t_hd, HENSON_INT, &t);
            henson_save("t", &t_hd);

            henson_yield();

            free(array);
            t++;
        }

        henson_finalize();
        return 0;
    }
    """
)

# Symbols the paper marks in red for each Table 4 listing (the invented
# handle/type names the calls rely on are included: they are part of the
# same nonexistent API).
TABLE4_LLAMA_FLAGGED = (
    "henson_init",
    "henson_declare_stage",
    "henson_declare_var",
    "henson_open_output",
    "henson_begin_step",
    "henson_put_var",
    "henson_end_step",
    "henson_close_output",
    "henson_finalize",
    "henson_t",
    "henson_stage_t",
    "henson_var_t",
    "henson_output_t",
)

TABLE4_GEMINI_FLAGGED = (
    "henson_init",
    "henson_rank",
    "henson_size",
    "henson_data_init",
    "henson_save",
    "henson_data_init_scalar",
    "henson_finalize",
    "henson_data_t",
)

# Table 6, right: o3 zero-shot Wilkins configuration (hallucinated schema).
TABLE6_ZEROSHOT = dedent_strip(
    """
    #wilkins_workflow.yaml

    workflow:
      name: simple_3node_workflow
      datasets:
        grid: {}
        particles: {}
      tasks:
        producer:
          command: ./producer
          processes: 3
          outputs:
          - grid
          - particles
        consumer1:
          command: ./consumer_grid
          processes: 1
          inputs:
          - grid
        consumer2:
          command: ./consumer_particles
          processes: 1
          inputs:
          - particles
      dependencies:
      - from: producer
        to: consumer1
        datasets:
        - grid
      - from: producer
        to: consumer2
        datasets:
        - particles
    """
)

# Fields the paper calls out as nonexistent in the zero-shot output.
TABLE6_FLAGGED_FIELDS = (
    "workflow",
    "datasets",
    "command",
    "processes",
    "inputs",
    "outputs",
    "dependencies",
    "from",
    "to",
)

# Table 6, left, is identical to the ground-truth 3-node Wilkins YAML
# (few-shot o3 produced the correct configuration).
