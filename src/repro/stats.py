"""The unified stats schema: one dict shape for every introspection surface.

Three stats surfaces grew up independently — ``ResultCache.stats()``
dicts, the persist layer's :class:`~repro.persist.store.StoreStats`
dataclass, and the runtime's :class:`~repro.runtime.runner.RunStats`
dataclass — each with its own key conventions.  Operators and tools
(manifests, ``python -m repro.perf report``, the remote store server's
``stats`` op) want one schema they can consume without knowing which
surface produced it.

Every unified payload is a plain JSON-ready dict carrying two marker
keys next to its counters:

* ``"schema"`` — always :data:`STATS_SCHEMA` (versioned, so a consumer
  can detect payloads from a future incompatible revision);
* ``"kind"`` — which surface produced it: ``"run"`` (one executed
  plan), ``"store"`` (one store directory / endpoint), ``"result_cache"``
  or ``"score_cache"`` (one cache backend).

Counter key names are *stable*: they match the historical field names
(``total_units``, ``cache_hits``, ``read_lru_hits``, …), so pre-schema
manifests rehydrate unchanged and existing consumers keep working —
:func:`strip_markers` peels the two marker keys off for code that wants
only the counters.
"""

from __future__ import annotations

from typing import Any

# /2 added observability fields: run stats may carry a ``trace_id`` and
# manifests may carry ``trace`` / ``metrics`` payloads.  Consumers stay
# tolerant of /1 (and pre-schema) payloads — the new keys are optional,
# never required, so old manifests rehydrate unchanged.
STATS_SCHEMA = "repro.stats/2"

STATS_KINDS = ("run", "store", "result_cache", "score_cache")


def stats_dict(kind: str, **fields: Any) -> dict[str, Any]:
    """One unified stats payload: schema + kind markers, then counters."""
    if kind not in STATS_KINDS:
        raise ValueError(f"unknown stats kind {kind!r}; choose from {STATS_KINDS}")
    return {"schema": STATS_SCHEMA, "kind": kind, **fields}


def strip_markers(payload: dict[str, Any]) -> dict[str, Any]:
    """The counters of one stats payload, without the schema/kind markers.

    Tolerant of pre-schema payloads (no markers to strip), so consumers
    can feed it both old manifests and fresh unified dicts.
    """
    return {
        key: value
        for key, value in payload.items()
        if key not in ("schema", "kind")
    }
