"""Reporting: render every table and figure of the paper from measured data."""

from repro.reporting.hallucinations import HallucinationReport, audit_eval
from repro.reporting.heatmap import render_figure1, render_heatmap
from repro.reporting.tables import (
    compare_with_paper,
    render_fewshot_table,
    render_grid_table,
    reproduce_table,
)

__all__ = [
    "render_grid_table",
    "render_fewshot_table",
    "reproduce_table",
    "compare_with_paper",
    "render_heatmap",
    "render_figure1",
    "HallucinationReport",
    "audit_eval",
]
