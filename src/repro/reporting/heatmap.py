"""ASCII heatmaps for the Figure 1 prompt-sensitivity results."""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.data import MODEL_LABELS, PROMPT_VARIANTS
from repro.utils.tables import render_matrix

_SHORT_LABELS = {
    "o3": "o3",
    "gemini-2.5-pro": "Gemini",
    "claude-sonnet-4": "Claude",
    "llama-3.3-70b": "LLaMA",
}


def render_heatmap(
    title: str,
    data: Mapping[str, Mapping[str, float]],
    *,
    variants: Sequence[str] = PROMPT_VARIANTS,
    models: Sequence[str] | None = None,
) -> str:
    """Render one heatmap: rows = prompt variants, columns = models."""
    if models is None:
        first = next(iter(data.values()))
        models = list(first)
    present = [v for v in variants if v in data] or list(data)
    values = [[data[v][m] for m in models] for v in present]
    variants = present
    cols = [_SHORT_LABELS.get(m, MODEL_LABELS.get(m, m)) for m in models]
    return render_matrix(title, list(variants), cols, values)


def render_figure1(
    results: Mapping[Hashable, Mapping[str, Mapping[str, float]]],
    figure_title: str,
) -> str:
    """Render all conditions of one Figure 1 sub-figure."""
    blocks = [figure_title, "=" * len(figure_title)]
    for condition, data in results.items():
        if isinstance(condition, tuple):
            from repro.workflows import get_system

            label = (
                f"{get_system(condition[0]).display_name} to "
                f"{get_system(condition[1]).display_name}"
            )
        else:
            from repro.workflows import get_system

            label = get_system(condition).display_name
        blocks.append("")
        blocks.append(render_heatmap(label, data))
    return "\n".join(blocks)
