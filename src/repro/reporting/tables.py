"""Table renderers matching the paper's layout (Tables 1, 2, 3, 5).

Each renderer takes measured results and emits monospace text with
``BLEU / ChrF`` column pairs per model, an Overall row and column, and
bold markers (``*...*``) on the best model and best condition — the same
conventions the paper uses.  :func:`reproduce_table` is the one-call
entry point: it runs the underlying sweep through the parallel runtime
(``executor``/``cache`` knobs included) and renders the result.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.experiments.annotation import run_annotation
from repro.core.experiments.base import CellResult, ExperimentGrid
from repro.core.experiments.configuration import run_configuration
from repro.core.experiments.fewshot import FewshotComparison, run_fewshot
from repro.core.experiments.translation import run_translation
from repro.core.task import DEFAULT_EPOCHS
from repro.data import MODEL_LABELS, Cell4
from repro.errors import HarnessError
from repro.utils.tables import TextTable


def _row_label(key: Hashable) -> str:
    if isinstance(key, tuple):
        from repro.workflows import get_system

        return f"{get_system(key[0]).display_name} to {get_system(key[1]).display_name}"
    from repro.workflows import get_system

    return get_system(key).display_name


def render_grid_table(grid: ExperimentGrid, title: str) -> str:
    """Render an experiment grid in the paper's table layout."""
    columns: list[str] = []
    for model in grid.models:
        label = MODEL_LABELS.get(model, model)
        columns += [f"{label} BLEU", f"{label} ChrF"]
    columns += ["Overall BLEU", "Overall ChrF"]

    table = TextTable(title=title, columns=columns)
    best_model = grid.best_model("bleu")
    best_row = grid.best_row("bleu")
    by_row = grid.overall_by_row()

    for row in grid.row_keys:
        cells = []
        for model in grid.models:
            cell = grid.cell(row, model)
            cells += [cell.bleu.render(), cell.chrf.render()]
        overall = by_row[row]
        bold = row == best_row
        overall_bleu = overall.bleu.render()
        overall_chrf = overall.chrf.render()
        if bold:
            overall_bleu = f"*{overall_bleu}*"
            overall_chrf = f"*{overall_chrf}*"
        cells += [overall_bleu, overall_chrf]
        table.add_row(_row_label(row), cells)

    by_model = grid.overall_by_model()
    overall_cells = []
    for model in grid.models:
        cell = by_model[model]
        bleu = cell.bleu.render()
        chrf = cell.chrf.render()
        if model == best_model:
            bleu, chrf = f"*{bleu}*", f"*{chrf}*"
        overall_cells += [bleu, chrf]
    grand = grid.grand_overall()
    overall_cells += [grand.bleu.render(), grand.chrf.render()]
    table.add_row("Overall", overall_cells)
    return table.render()


def render_fewshot_table(comparison: FewshotComparison, title: str) -> str:
    """Render the Table 5 layout: zero-shot vs few-shot per model."""
    columns: list[str] = []
    for model in comparison.models:
        label = MODEL_LABELS.get(model, model)
        columns += [f"{label} BLEU", f"{label} ChrF"]
    table = TextTable(title=title, columns=columns)
    for approach, data in (
        ("Original (zero-shot)", comparison.zero_shot),
        ("Few-shot prompting", comparison.few_shot),
    ):
        cells = []
        for model in comparison.models:
            cell = data[model]
            cells += [cell.bleu.render(), cell.chrf.render()]
        table.add_row(approach, cells)
    return table.render()


_TABLE_RUNNERS = {
    "table1": (run_configuration, "Table 1: workflow configuration"),
    "table2": (run_annotation, "Table 2: task code annotation"),
    "table3": (run_translation, "Table 3: task code translation"),
    "table5": (run_fewshot, "Table 5: few-shot vs zero-shot (configuration)"),
}


def reproduce_table(
    which: str,
    *,
    epochs: int = DEFAULT_EPOCHS,
    config=None,
    executor=None,
    cache=None,
    scheduler=None,
    store=None,
    scoring=None,
    faults=None,
) -> str:
    """Run one of the paper's tables through the runtime and render it.

    ``which`` is one of ``table1``/``table2``/``table3``/``table5``;
    ``config`` is a :class:`~repro.runtime.config.RunConfig` bundling the
    runtime knobs (build one with ``RunConfig.from_url(...)`` to point
    the table at a networked store).  The individual knobs remain as a
    deprecation shim forwarded to :func:`repro.runtime.run` via the
    experiment runner — pass a :class:`~repro.persist.RunStore` to make
    the table durable and resumable across processes.
    """
    try:
        runner, title = _TABLE_RUNNERS[which]
    except KeyError:
        raise HarnessError(
            f"unknown table {which!r}; available: {sorted(_TABLE_RUNNERS)}"
        ) from None
    result = runner(epochs=epochs, config=config, executor=executor, cache=cache,
                    scheduler=scheduler, store=store, scoring=scoring,
                    faults=faults)
    if isinstance(result, FewshotComparison):
        return render_fewshot_table(result, title)
    return render_grid_table(result, title)


def compare_with_paper(
    measured: CellResult, paper: Cell4, label: str
) -> str:
    """One-line paper-vs-measured comparison for EXPERIMENTS.md."""
    d_bleu = measured.bleu.mean - paper.bleu
    d_chrf = measured.chrf.mean - paper.chrf
    return (
        f"{label}: paper BLEU {paper.bleu:.1f}±{paper.bleu_se:.1f} / "
        f"measured {measured.bleu.render()} (Δ{d_bleu:+.1f}); "
        f"paper ChrF {paper.chrf:.1f}±{paper.chrf_se:.1f} / "
        f"measured {measured.chrf.render()} (Δ{d_chrf:+.1f})"
    )
