"""Hallucination auditing: aggregate validator findings over evaluations.

The paper analyses hallucinated API calls qualitatively (Tables 4 and 6);
this module quantifies them: for every completion of an evaluation run,
the target system's validator is applied and the nonexistent symbols are
tallied into a :class:`HallucinationReport` (rate per trial, most common
invented names, clean-trial fraction).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.task import EvalResult
from repro.errors import HarnessError
from repro.workflows import WorkflowSystem, get_system


@dataclass
class HallucinationReport:
    """Aggregated audit over every trial of an evaluation."""

    system: str
    artifact_kind: str
    trials: int
    clean_trials: int
    total_hallucinations: int
    by_symbol: Counter = field(default_factory=Counter)

    @property
    def rate_per_trial(self) -> float:
        return self.total_hallucinations / self.trials if self.trials else 0.0

    @property
    def clean_fraction(self) -> float:
        return self.clean_trials / self.trials if self.trials else 0.0

    def most_common(self, n: int = 5) -> list[tuple[str, int]]:
        return self.by_symbol.most_common(n)

    def render(self) -> str:
        top = ", ".join(f"{s} x{c}" for s, c in self.most_common())
        return (
            f"{self.system} {self.artifact_kind}: "
            f"{self.total_hallucinations} hallucination(s) over {self.trials} "
            f"trial(s) ({self.rate_per_trial:.1f}/trial, "
            f"{self.clean_fraction:.0%} clean); top: {top or 'none'}"
        )


def audit_eval(
    result: EvalResult,
    system: str | WorkflowSystem,
    *,
    artifact_kind: str = "config",
) -> HallucinationReport:
    """Audit every scored completion of ``result`` with a system validator."""
    descriptor = get_system(system) if isinstance(system, str) else system
    if artifact_kind == "config":
        validator = descriptor.validate_config
    elif artifact_kind == "task-code":
        validator = descriptor.validate_task_code
    else:
        raise HarnessError(f"unknown artifact kind {artifact_kind!r}")
    if validator is None:
        raise HarnessError(
            f"{descriptor.display_name} has no {artifact_kind} validator"
        )

    report = HallucinationReport(
        system=descriptor.display_name,
        artifact_kind=artifact_kind,
        trials=0,
        clean_trials=0,
        total_hallucinations=0,
    )
    for sample in result.samples:
        for score in sample.scores:
            validation = validator(score.answer)
            hallucinated = validation.hallucinations()
            report.trials += 1
            if not hallucinated:
                report.clean_trials += 1
            report.total_hallucinations += len(hallucinated)
            report.by_symbol.update(
                d.symbol for d in hallucinated if d.symbol
            )
    return report
