"""Work units: the atoms of the parallel evaluation runtime.

A :class:`WorkUnit` is one independent model call — one (task, sample,
model, epoch) cell of a sweep, fully resolved at plan time: the prompt is
already rendered (solvers ran during planning), the decoding config
carries the epoch as its seed, and the scorer travels with the unit.
Because every source of randomness is derived from the unit's own content
(model name, prompt, seed), units may execute in any order, on any
executor, and produce bit-identical results.

The :func:`generation_key` of a unit is a content address over exactly
the inputs that determine a generation — (prompt, model, generate
config, seed) — and is what the result cache and the in-run deduplication
key on.  Scoring is *not* part of the key: a cached generation is
re-scored against each unit's own target, so the cache can be shared
across experiments that happen to issue the same prompt.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.core.samples import Sample
from repro.core.scorers import Score
from repro.llm.types import GenerateConfig, ModelUsage


def generation_key(prompt: str, model: str, config: GenerateConfig) -> str:
    """Content address of one generation: (prompt hash, model, config, seed).

    Stable across processes and platforms (SHA-256 over explicit fields,
    never Python's salted ``hash``), so a filesystem-backed cache written
    by one run is valid for any later run.
    """
    payload = "\x1f".join(
        (
            hashlib.sha256(prompt.encode("utf-8")).hexdigest(),
            model,
            f"t={config.temperature!r}",
            f"p={config.top_p!r}",
            f"m={config.max_tokens!r}",
            f"s={config.seed!r}",
        )
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True, eq=False)
class WorkUnit:
    """One independent generation+scoring call of a sweep.

    ``uid`` is unique within a plan (it includes the plan-assigned ordinal
    so the same cell added twice stays distinguishable); ``key`` is the
    content address shared by identical generations.
    """

    uid: str
    task_name: str
    sample: Sample  # solved: ``input`` is the final prompt
    model: str
    config: GenerateConfig  # seed == epoch index
    scorer: Callable[[str, str], Score]
    key: str = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "key", generation_key(self.sample.input, self.model, self.config)
        )

    @property
    def prompt(self) -> str:
        return self.sample.input

    @property
    def target(self) -> str:
        return self.sample.target

    @property
    def epoch(self) -> int:
        return self.config.seed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkUnit({self.uid!r}, model={self.model!r}, seed={self.config.seed})"


@dataclass(frozen=True)
class Generation:
    """The cacheable outcome of one model call (no scoring).

    ``elapsed_s`` is the wall-clock cost of the provider call that
    produced this generation (amortized over the group for batched
    calls); the adaptive scheduler's
    :class:`~repro.runtime.schedule.ExpectedCostModel` learns from it.
    It is informational and never part of the content address.
    """

    key: str
    model: str
    completion: str
    usage: ModelUsage
    cached: bool = False
    elapsed_s: float = 0.0

    def as_cached(self) -> "Generation":
        """The same record, flagged as having come from a cache."""
        if self.cached:
            return self
        return Generation(
            key=self.key, model=self.model, completion=self.completion,
            usage=self.usage, cached=True, elapsed_s=self.elapsed_s,
        )


@dataclass(frozen=True)
class UnitResult:
    """One executed unit: the generation plus its score against the target."""

    uid: str
    generation: Generation
    score: Score

    @property
    def completion(self) -> str:
        return self.generation.completion
