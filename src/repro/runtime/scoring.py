"""Pipelined scoring: overlap metric work with generation.

Scoring BLEU/ChrF is CPU-bound Python — it never overlaps anything
under the GIL, so even when an executor keeps many provider calls in
flight, every completed unit used to queue up behind a serial scoring
loop on the run thread.  :class:`ScoringPool` turns scoring into a
stage: the runner submits each (scorer, completion, target) triple as
soon as its generation exists, the pool computes it in a worker
*process* (real parallelism for the compiled BLEU/ChrF path), and the
runner collects the scores at assembly time — by which point most of
them finished while later generations were still being produced.

Determinism: a score is a pure function of (scorer, completion,
target); the compiled metrics engine is floating-point deterministic on
one platform, so pool-computed grids are bit-identical to inline ones —
``tests/test_scoring.py`` pins this across every executor.

Fallbacks keep the pool safe to enable anywhere:

* a scorer with no cross-process identity (a lambda extractor, a
  closure) cannot be pickled — detected once per scorer and computed
  inline instead, transparently;
* a broken pool (worker killed, pickling surprise at call time) retries
  the affected scores inline rather than failing the run.

The pool is lazy and persistent: workers start on the first submit and
are reused across runs (``close()`` or the context manager releases
them), so multi-sweep scripts pay process start-up once.

Two batching layers ride on top:

* :meth:`ScoringPool.submit_many` ships a whole unit-group —
  many completions against one target — as a few chunked worker calls
  instead of one IPC round trip per score.  The worker scores the group
  through :func:`repro.metrics.kernels.score_batch`, compiling the
  target and interning its kernel vocabularies once per chunk;
* :class:`AdaptiveScoringPool` chooses the worker count *per run* from
  :class:`~repro.runtime.schedule.ExpectedCostModel` EMAs of observed
  per-unit score cost vs generation cost — including zero workers
  (inline scoring) when the expected metric work is too small to pay
  for process round trips.  Cold start is inline: the first run
  measures, later runs offload.
"""

from __future__ import annotations

import concurrent.futures
import math
import multiprocessing
import pickle
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.core.scorers import Score
from repro.errors import HarnessError
from repro.metrics.kernels import score_batch
from repro.obs import fold_remote_spans, make_span_dict, propagation_context, span
from repro.runtime.schedule import ExpectedCostModel

# ExpectedCostModel channel keys for the adaptive pool's two EMAs
SCORE_COST_KEY = "score-unit"
GENERATION_COST_KEY = "generation-unit"


def _score_task(scorer: Callable, completion: str, target: str) -> Score:
    """Worker-side body: one score, pure function of its arguments."""
    return scorer(completion, target)


def _score_batch_task(
    scorer: Callable, completions: Sequence[str], target: str
) -> list[Score]:
    """Worker-side body: one unit-group, compiled/interned once per call."""
    return score_batch(completions, target, scorer)


def _score_task_traced(
    scorer: Callable, completion: str, target: str, parent_id: str | None
) -> tuple[Score, dict]:
    """Traced worker body: the score plus a span dict for the parent.

    The span is timed on the worker's own wall clock and stamped with
    the worker pid; ``parent_id`` (the submitting thread's current span)
    links it into the run's trace when the handle folds it back.
    """
    start_unix = time.time()
    t0 = time.perf_counter()
    score = scorer(completion, target)
    return score, make_span_dict(
        "score-worker",
        parent_id=parent_id,
        start_unix=start_unix,
        duration_s=time.perf_counter() - t0,
    )


def _score_batch_task_traced(
    scorer: Callable, completions: Sequence[str], target: str, parent_id: str | None
) -> tuple[list[Score], dict]:
    """Traced worker body for one chunk: scores plus one chunk span."""
    start_unix = time.time()
    t0 = time.perf_counter()
    scores = score_batch(completions, target, scorer)
    return scores, make_span_dict(
        f"score-worker-batch[{len(completions)}]",
        parent_id=parent_id,
        start_unix=start_unix,
        duration_s=time.perf_counter() - t0,
    )


def _chunk_folder() -> Callable[[dict], None]:
    """A fold-once callable: many handles share one chunk's span."""
    folded = []

    def fold(span_dict: dict) -> None:
        if not folded:
            folded.append(True)
            fold_remote_spans([span_dict])

    return fold


class ScoreHandle:
    """The pending result of one submitted score (duck-typed Future).

    ``result()`` blocks until the score is available; pool failures
    (a broken worker, an argument that would not pickle after all) are
    healed by recomputing inline, so a handle always resolves unless the
    scorer itself raises.
    """

    __slots__ = ("_future", "_value", "_recompute", "_fold")

    def __init__(
        self,
        future: concurrent.futures.Future | None,
        value: Score | None,
        recompute: Callable[[], Score],
        fold: Callable[[dict], None] | None = None,
    ) -> None:
        self._future = future
        self._value = value
        self._recompute = recompute
        self._fold = fold  # set iff the worker task returns (score, span)

    def result(self) -> Score:
        if self._future is not None:
            try:
                resolved = self._future.result()
                if self._fold is not None:
                    resolved, span_dict = resolved
                    self._fold(span_dict)
                self._value = resolved
            except (
                BrokenProcessPool,
                pickle.PicklingError,
                # unpicklable arguments surfacing at call time (a stale
                # picklability verdict, an object that lies about its
                # picklability): TypeError is what pickle raises for
                # locks/sockets/etc.  A scorer legitimately raising one
                # of these recomputes inline and raises there instead.
                AttributeError,
                TypeError,
            ):
                self._value = self._recompute()
            self._future = None
        return self._value


class BatchScoreHandle:
    """One score inside a submitted batch (same ``result()`` protocol).

    The batch future resolves to the whole chunk's score list; each
    handle indexes its own entry.  Pool failures heal per score by
    recomputing inline, exactly like :class:`ScoreHandle`.
    """

    __slots__ = ("_future", "_index", "_value", "_recompute", "_fold")

    def __init__(
        self,
        future: concurrent.futures.Future,
        index: int,
        recompute: Callable[[], Score],
        fold: Callable[[dict], None] | None = None,
    ) -> None:
        self._future = future
        self._index = index
        self._value: Score | None = None
        self._recompute = recompute
        self._fold = fold  # shared fold-once: one span per chunk

    def result(self) -> Score:
        if self._future is not None:
            try:
                resolved = self._future.result()
                if self._fold is not None:
                    resolved, span_dict = resolved
                    self._fold(span_dict)
                self._value = resolved[self._index]
            except (
                BrokenProcessPool,
                pickle.PicklingError,
                AttributeError,
                TypeError,
            ):
                self._value = self._recompute()
            self._future = None
        return self._value


class ScoringPool:
    """Process-pool scorer with a transparent inline fallback.

    ``max_workers`` bounds the worker processes; ``mp_context`` names
    the :mod:`multiprocessing` start method (``spawn`` by default: safe
    alongside the runtime's thread pools).  Pass one pool to any number
    of :func:`repro.runtime.run` calls via ``scoring=``.
    """

    def __init__(self, max_workers: int = 4, *, mp_context: str = "spawn") -> None:
        if max_workers <= 0:
            raise HarnessError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self.mp_context = mp_context
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._closed = False
        self._mu = threading.Lock()
        # scorer id -> picklable?  scorers are long-lived task attributes;
        # a stale hit is harmless (submit falls back inline on error)
        self._picklable: dict[int, bool] = {}

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._mu:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context(self.mp_context),
                )
                self._closed = False
            return self._pool

    def _scorer_picklable(self, scorer: Callable) -> bool:
        cached = self._picklable.get(id(scorer))
        if cached is not None:
            return cached
        try:
            pickle.dumps(scorer)
            ok = True
        except Exception:
            ok = False
        self._picklable[id(scorer)] = ok
        return ok

    def submit(
        self, scorer: Callable[[str, str], Score], completion: str, target: str
    ) -> ScoreHandle:
        """Queue one score; returns a handle whose ``result()`` blocks.

        Unpicklable scorers are computed inline *now* (the handle is
        already resolved) so callers never need to special-case them.
        """

        def recompute() -> Score:
            with span("score-inline"):
                return scorer(completion, target)

        if not self._scorer_picklable(scorer):
            return ScoreHandle(None, recompute(), recompute)
        # with a trace open, the worker times itself and ships a span
        # back alongside the score (folded at result() time)
        ctx = propagation_context()
        try:
            if ctx is not None:
                future = self._ensure_pool().submit(
                    _score_task_traced, scorer, completion, target,
                    ctx.get("parent"),
                )
            else:
                future = self._ensure_pool().submit(
                    _score_task, scorer, completion, target
                )
        except (
            BrokenProcessPool,
            pickle.PicklingError,
            RuntimeError,  # pool shut down concurrently
        ):
            return ScoreHandle(None, recompute(), recompute)
        fold = (lambda s: fold_remote_spans([s])) if ctx is not None else None
        return ScoreHandle(future, None, recompute, fold=fold)

    def submit_many(
        self,
        scorer: Callable[[str, str], Score],
        completions: Sequence[str],
        target: str,
        *,
        parallelism: int | None = None,
    ) -> list[ScoreHandle | BatchScoreHandle]:
        """Queue one unit-group: many completions against one target.

        The group is chunked across ``parallelism`` workers (default:
        all of them) and each chunk is a single worker call through
        :func:`repro.metrics.kernels.score_batch` — one pickle of the
        scorer + target per chunk instead of per score.  Returns one
        handle per completion, in order; results are element-wise
        identical to per-completion :meth:`submit`.
        """
        completions = list(completions)
        if not completions:
            return []

        def inline_chunk(chunk: list[str]) -> list[ScoreHandle]:
            with span("score-inline"):
                values = score_batch(chunk, target, scorer)
            return [
                ScoreHandle(None, value, lambda value=value: value)
                for value in values
            ]

        if not self._scorer_picklable(scorer):
            return inline_chunk(completions)
        workers = max(1, parallelism if parallelism is not None else self.max_workers)
        chunk_size = math.ceil(len(completions) / workers)
        ctx = propagation_context()
        handles: list[ScoreHandle | BatchScoreHandle] = []
        for start in range(0, len(completions), chunk_size):
            chunk = completions[start : start + chunk_size]
            try:
                if ctx is not None:
                    future = self._ensure_pool().submit(
                        _score_batch_task_traced, scorer, chunk, target,
                        ctx.get("parent"),
                    )
                else:
                    future = self._ensure_pool().submit(
                        _score_batch_task, scorer, chunk, target
                    )
            except (
                BrokenProcessPool,
                pickle.PicklingError,
                RuntimeError,  # pool shut down concurrently
            ):
                handles.extend(inline_chunk(chunk))
                continue
            # the chunk's handles share one fold-once so its worker span
            # is recorded a single time however many results are read
            fold = _chunk_folder() if ctx is not None else None
            for index, completion in enumerate(chunk):

                def recompute(completion: str = completion) -> Score:
                    with span("score-inline"):
                        return scorer(completion, target)

                handles.append(BatchScoreHandle(future, index, recompute, fold=fold))
        return handles

    def warm(self) -> None:
        """Start the workers now (otherwise they start on first submit).

        Useful before timing: process start-up (~spawn + import) is paid
        here instead of inside the measured region.
        """
        pool = self._ensure_pool()
        done = [
            pool.submit(_score_task, _noop_scorer, "", "")
            for _ in range(self.max_workers)
        ]
        concurrent.futures.wait(done)

    def close(self) -> None:
        """Shut the workers down and join them (idempotent).

        Same lifecycle as :class:`~repro.runtime.executors.ThreadedExecutor`:
        a plain ``submit`` after ``close()`` transparently re-creates the
        worker pool (the caller owns it and must close again), while
        *re-entering* a closed pool as a context manager raises — the
        ``with`` block would otherwise silently resurrect workers the
        caller just paid to tear down.
        """
        with self._mu:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ScoringPool":
        with self._mu:
            if self._closed:
                raise HarnessError(
                    "ScoringPool was closed; create a new pool instead of "
                    "re-entering the closed one as a context manager"
                )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoringPool(max_workers={self.max_workers}, "
            f"mp_context={self.mp_context!r})"
        )


def _noop_scorer(completion: str, target: str) -> Score:
    """Warm-up body: exercises the worker round trip, scores nothing."""
    return Score(values={}, answer="")


class _SizedPool:
    """A per-run view of one ScoringPool at a chosen parallelism.

    The inner pool keeps its processes (start-up is paid once); the
    view only narrows how many chunks a batch is split into, so the
    adaptive choice never tears workers down mid-sweep.
    """

    __slots__ = ("_pool", "max_workers")

    def __init__(self, pool: ScoringPool, workers: int) -> None:
        self._pool = pool
        self.max_workers = workers

    def submit(
        self, scorer: Callable[[str, str], Score], completion: str, target: str
    ) -> ScoreHandle:
        return self._pool.submit(scorer, completion, target)

    def submit_many(
        self,
        scorer: Callable[[str, str], Score],
        completions: Sequence[str],
        target: str,
    ) -> list[ScoreHandle | BatchScoreHandle]:
        return self._pool.submit_many(
            scorer, completions, target, parallelism=self.max_workers
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_SizedPool(workers={self.max_workers})"


class AdaptiveScoringPool:
    """A ScoringPool whose worker count is chosen per run by a cost model.

    Two :class:`~repro.runtime.schedule.ExpectedCostModel` EMA channels
    — observed per-unit score cost (``score-unit``) and per-unit
    generation cost (``generation-unit``) — decide at ``run()`` time how
    many workers the run's scoring should use:

    * **no score observations yet** → 0 workers (inline): the cold run
      measures the real per-unit cost instead of guessing;
    * **expected total metric work below** ``min_offload_seconds`` →
      0 workers: the whole batch is cheaper than pool round trips;
    * otherwise ``ceil(score_cost / generation_cost)`` workers (capped
      at ``max_workers``): just enough scoring parallelism to keep pace
      with the executor's generation throughput — all ``max_workers``
      when generation cost is unknown or zero (warm-cache runs are pure
      scoring).

    The runner feeds the model back via :meth:`observe_run` after every
    run, so the choice adapts online; grids stay bit-identical at any
    worker count.  Pass one instance to any number of ``run()`` calls
    via ``scoring=`` exactly like a plain pool.
    """

    def __init__(
        self,
        max_workers: int = 4,
        *,
        cost_model: ExpectedCostModel | None = None,
        mp_context: str = "spawn",
        min_offload_seconds: float = 0.02,
    ) -> None:
        if max_workers <= 0:
            raise HarnessError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self.cost_model = (
            cost_model if cost_model is not None else ExpectedCostModel()
        )
        self.min_offload_seconds = min_offload_seconds
        self._pool = ScoringPool(max_workers, mp_context=mp_context)
        self.last_workers = 0  # what the most recent for_run() chose

    def choose_workers(self, n_scores: int) -> int:
        """Worker count for a run expecting ``n_scores`` score computes."""
        estimates = self.cost_model.snapshot()
        score_cost = estimates.get(SCORE_COST_KEY)
        if score_cost is None or n_scores <= 0:
            return 0
        if score_cost * n_scores < self.min_offload_seconds:
            return 0
        generation_cost = estimates.get(GENERATION_COST_KEY)
        if generation_cost is not None and generation_cost > 0:
            workers = math.ceil(score_cost / generation_cost)
        else:
            workers = self.max_workers
        return max(1, min(self.max_workers, workers))

    def for_run(self, n_scores: int) -> _SizedPool | None:
        """The scoring backend one run should use (``None`` = inline)."""
        workers = self.choose_workers(n_scores)
        self.last_workers = workers
        return _SizedPool(self._pool, workers) if workers > 0 else None

    def observe_run(
        self,
        *,
        scores_computed: int = 0,
        score_seconds: float = 0.0,
        generated: int = 0,
        generation_seconds: float = 0.0,
    ) -> None:
        """Fold one run's measured per-unit costs into the EMAs.

        The runner reports inline scoring time only (pooled scores
        overlap generation, so their wall time is not a per-unit cost),
        and generation time for every freshly executed unit.
        """
        if scores_computed > 0 and score_seconds > 0:
            self.cost_model.observe(
                SCORE_COST_KEY, score_seconds / scores_computed
            )
        if generated > 0 and generation_seconds > 0:
            self.cost_model.observe(
                GENERATION_COST_KEY, generation_seconds / generated
            )

    def warm(self) -> None:
        self._pool.warm()

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "AdaptiveScoringPool":
        self._pool.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._pool.__exit__(*exc_info)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveScoringPool(max_workers={self.max_workers}, "
            f"last_workers={self.last_workers})"
        )
