"""Pipelined scoring: overlap metric work with generation.

Scoring BLEU/ChrF is CPU-bound Python — it never overlaps anything
under the GIL, so even when an executor keeps many provider calls in
flight, every completed unit used to queue up behind a serial scoring
loop on the run thread.  :class:`ScoringPool` turns scoring into a
stage: the runner submits each (scorer, completion, target) triple as
soon as its generation exists, the pool computes it in a worker
*process* (real parallelism for the compiled BLEU/ChrF path), and the
runner collects the scores at assembly time — by which point most of
them finished while later generations were still being produced.

Determinism: a score is a pure function of (scorer, completion,
target); the compiled metrics engine is floating-point deterministic on
one platform, so pool-computed grids are bit-identical to inline ones —
``tests/test_scoring.py`` pins this across every executor.

Fallbacks keep the pool safe to enable anywhere:

* a scorer with no cross-process identity (a lambda extractor, a
  closure) cannot be pickled — detected once per scorer and computed
  inline instead, transparently;
* a broken pool (worker killed, pickling surprise at call time) retries
  the affected scores inline rather than failing the run.

The pool is lazy and persistent: workers start on the first submit and
are reused across runs (``close()`` or the context manager releases
them), so multi-sweep scripts pay process start-up once.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import pickle
import threading
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.core.scorers import Score
from repro.errors import HarnessError
from repro.perf import span


def _score_task(scorer: Callable, completion: str, target: str) -> Score:
    """Worker-side body: one score, pure function of its arguments."""
    return scorer(completion, target)


class ScoreHandle:
    """The pending result of one submitted score (duck-typed Future).

    ``result()`` blocks until the score is available; pool failures
    (a broken worker, an argument that would not pickle after all) are
    healed by recomputing inline, so a handle always resolves unless the
    scorer itself raises.
    """

    __slots__ = ("_future", "_value", "_recompute")

    def __init__(
        self,
        future: concurrent.futures.Future | None,
        value: Score | None,
        recompute: Callable[[], Score],
    ) -> None:
        self._future = future
        self._value = value
        self._recompute = recompute

    def result(self) -> Score:
        if self._future is not None:
            try:
                self._value = self._future.result()
            except (
                BrokenProcessPool,
                pickle.PicklingError,
                # unpicklable arguments surfacing at call time (a stale
                # picklability verdict, an object that lies about its
                # picklability): TypeError is what pickle raises for
                # locks/sockets/etc.  A scorer legitimately raising one
                # of these recomputes inline and raises there instead.
                AttributeError,
                TypeError,
            ):
                self._value = self._recompute()
            self._future = None
        return self._value


class ScoringPool:
    """Process-pool scorer with a transparent inline fallback.

    ``max_workers`` bounds the worker processes; ``mp_context`` names
    the :mod:`multiprocessing` start method (``spawn`` by default: safe
    alongside the runtime's thread pools).  Pass one pool to any number
    of :func:`repro.runtime.run` calls via ``scoring=``.
    """

    def __init__(self, max_workers: int = 4, *, mp_context: str = "spawn") -> None:
        if max_workers <= 0:
            raise HarnessError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self.mp_context = mp_context
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._closed = False
        self._mu = threading.Lock()
        # scorer id -> picklable?  scorers are long-lived task attributes;
        # a stale hit is harmless (submit falls back inline on error)
        self._picklable: dict[int, bool] = {}

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._mu:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context(self.mp_context),
                )
                self._closed = False
            return self._pool

    def _scorer_picklable(self, scorer: Callable) -> bool:
        cached = self._picklable.get(id(scorer))
        if cached is not None:
            return cached
        try:
            pickle.dumps(scorer)
            ok = True
        except Exception:
            ok = False
        self._picklable[id(scorer)] = ok
        return ok

    def submit(
        self, scorer: Callable[[str, str], Score], completion: str, target: str
    ) -> ScoreHandle:
        """Queue one score; returns a handle whose ``result()`` blocks.

        Unpicklable scorers are computed inline *now* (the handle is
        already resolved) so callers never need to special-case them.
        """

        def recompute() -> Score:
            with span("score-inline"):
                return scorer(completion, target)

        if not self._scorer_picklable(scorer):
            return ScoreHandle(None, recompute(), recompute)
        try:
            future = self._ensure_pool().submit(
                _score_task, scorer, completion, target
            )
        except (
            BrokenProcessPool,
            pickle.PicklingError,
            RuntimeError,  # pool shut down concurrently
        ):
            return ScoreHandle(None, recompute(), recompute)
        return ScoreHandle(future, None, recompute)

    def warm(self) -> None:
        """Start the workers now (otherwise they start on first submit).

        Useful before timing: process start-up (~spawn + import) is paid
        here instead of inside the measured region.
        """
        pool = self._ensure_pool()
        done = [
            pool.submit(_score_task, _noop_scorer, "", "")
            for _ in range(self.max_workers)
        ]
        concurrent.futures.wait(done)

    def close(self) -> None:
        """Shut the workers down and join them (idempotent).

        Same lifecycle as :class:`~repro.runtime.executors.ThreadedExecutor`:
        a plain ``submit`` after ``close()`` transparently re-creates the
        worker pool (the caller owns it and must close again), while
        *re-entering* a closed pool as a context manager raises — the
        ``with`` block would otherwise silently resurrect workers the
        caller just paid to tear down.
        """
        with self._mu:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ScoringPool":
        with self._mu:
            if self._closed:
                raise HarnessError(
                    "ScoringPool was closed; create a new pool instead of "
                    "re-entering the closed one as a context manager"
                )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoringPool(max_workers={self.max_workers}, "
            f"mp_context={self.mp_context!r})"
        )


def _noop_scorer(completion: str, target: str) -> Score:
    """Warm-up body: exercises the worker round trip, scores nothing."""
    return Score(values={}, answer="")
