"""Batched generation: group work units by model, one call per group.

Real API backends expose batch endpoints precisely because the dominant
cost of a large sweep is per-call overhead (round-trips, auth, queueing),
not tokens.  :func:`group_units_by_model` performs the grouping, and
:class:`BatchingExecutor` drives one
batched call per model group through
:meth:`~repro.llm.api.Model.generate_batch`, which falls back to
per-request ``generate`` for providers that never implemented the batch
entry point — so a plan mixing batch-capable and plain providers still
executes in one run.

:class:`~repro.llm.simulated.SimulatedModel` implements
``generate_batch`` natively (intent analysis shared per distinct prompt,
calibration shared per distinct cell), so the batched path is exercised
end-to-end offline and is asserted bit-identical to serial execution.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from typing import Sequence

from repro.errors import HarnessError, ModelError
from repro.llm.api import get_model

from repro.runtime.executors import generate_unit
from repro.runtime.faults import FailedGeneration
from repro.runtime.units import Generation, WorkUnit


def group_units_by_model(
    units: Sequence[WorkUnit],
) -> dict[str, list[WorkUnit]]:
    """Units keyed by model name, preserving plan order within a group."""
    groups: dict[str, list[WorkUnit]] = {}
    for unit in units:
        groups.setdefault(unit.model, []).append(unit)
    return groups


class BatchingExecutor:
    """One ``generate_batch`` provider call per model group.

    ``group_concurrency`` bounds how many model groups are in flight at
    once (each group is still a single provider call): with four paper
    models and the default of 4, all four batched calls overlap, which
    is exactly how a multi-provider deployment hides per-provider batch
    latency.  Set it to 1 for strictly sequential groups.
    """

    def __init__(self, group_concurrency: int = 4) -> None:
        if group_concurrency <= 0:
            raise HarnessError(
                f"group_concurrency must be positive, got {group_concurrency}"
            )
        self.group_concurrency = group_concurrency
        # survivors of failed generate_batch groups, keyed by generation
        # key: when one poisoned prompt fails a whole batched call, the
        # siblings that then succeeded individually are remembered here
        # so a retry of the group never re-generates them
        self._salvaged: dict[str, Generation] = {}
        self._salvage_mu = threading.Lock()

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        if not units:
            return {}
        groups = list(group_units_by_model(units).items())
        if len(groups) == 1 or self.group_concurrency == 1:
            shards = [self._execute_group(model, g) for model, g in groups]
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(self.group_concurrency, len(groups)),
                thread_name_prefix="repro-batch",
            ) as pool:
                shards = list(
                    pool.map(lambda item: self._execute_group(*item), groups)
                )
        merged: dict[str, Generation] = {}
        for shard in shards:
            merged.update(shard)
        return merged

    def _execute_group(
        self, model: str, units: list[WorkUnit]
    ) -> dict[str, Generation]:
        # units salvaged from an earlier failed attempt at this group are
        # served from memory — only the genuinely unresolved ones reach
        # the provider again
        with self._salvage_mu:
            done = {
                unit.key: self._salvaged[unit.key]
                for unit in units
                if unit.key in self._salvaged
            }
        todo = [unit for unit in units if unit.key not in done]
        if not todo:
            with self._salvage_mu:
                for key in done:
                    self._salvaged.pop(key, None)
            return done
        # Model.generate_batch owns the dispatch: one provider round-trip
        # when the provider implements generate_batch (output count
        # validated there), graceful per-request generate otherwise
        started = time.perf_counter()
        try:
            outputs = get_model(model).generate_batch(
                [(unit.prompt, unit.config) for unit in todo]
            )
        except ModelError:
            done.update(self._fallback_per_unit(todo))
            with self._salvage_mu:
                for key in done:
                    self._salvaged.pop(key, None)
            return done
        elapsed = time.perf_counter() - started
        per_unit = elapsed / len(todo)  # amortized batch cost
        done.update(
            {
                unit.key: Generation(
                    key=unit.key,
                    model=unit.model,
                    completion=output.completion,
                    usage=output.usage,
                    elapsed_s=per_unit,
                )
                for unit, output in zip(todo, outputs)
            }
        )
        with self._salvage_mu:
            for key in done:
                self._salvaged.pop(key, None)
        return done

    def _fallback_per_unit(
        self, units: list[WorkUnit]
    ) -> dict[str, Generation]:
        """Drive a failed group's units individually, salvaging survivors.

        Every unit is attempted (under the active
        :class:`~repro.runtime.faults.FaultPolicy` when one is
        installed, so each gets its own retry/deadline/isolation).  With
        no policy — or with ``on_failure="raise"`` — the first failure
        is re-raised only *after* all siblings ran, and the successes
        are kept in the salvage memo: a retried group re-generates the
        poisoned unit alone.
        """
        produced: dict[str, Generation] = {}
        first_error: BaseException | None = None
        for unit in units:
            try:
                gen = generate_unit(unit)
            except Exception as exc:  # raise-mode: finish siblings first
                if first_error is None:
                    first_error = exc
                continue
            produced[unit.key] = gen
            if not isinstance(gen, FailedGeneration):
                with self._salvage_mu:
                    self._salvaged[unit.key] = gen
        if first_error is not None:
            raise first_error
        with self._salvage_mu:
            for key in produced:
                self._salvaged.pop(key, None)
        return produced

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchingExecutor(group_concurrency={self.group_concurrency})"
