"""Batched generation: group work units by model, one call per group.

Real API backends expose batch endpoints precisely because the dominant
cost of a large sweep is per-call overhead (round-trips, auth, queueing),
not tokens.  :func:`group_units_by_model` performs the grouping, and
:class:`BatchingExecutor` drives one
batched call per model group through
:meth:`~repro.llm.api.Model.generate_batch`, which falls back to
per-request ``generate`` for providers that never implemented the batch
entry point — so a plan mixing batch-capable and plain providers still
executes in one run.

:class:`~repro.llm.simulated.SimulatedModel` implements
``generate_batch`` natively (intent analysis shared per distinct prompt,
calibration shared per distinct cell), so the batched path is exercised
end-to-end offline and is asserted bit-identical to serial execution.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Sequence

from repro.errors import HarnessError
from repro.llm.api import get_model

from repro.runtime.units import Generation, WorkUnit


def group_units_by_model(
    units: Sequence[WorkUnit],
) -> dict[str, list[WorkUnit]]:
    """Units keyed by model name, preserving plan order within a group."""
    groups: dict[str, list[WorkUnit]] = {}
    for unit in units:
        groups.setdefault(unit.model, []).append(unit)
    return groups


class BatchingExecutor:
    """One ``generate_batch`` provider call per model group.

    ``group_concurrency`` bounds how many model groups are in flight at
    once (each group is still a single provider call): with four paper
    models and the default of 4, all four batched calls overlap, which
    is exactly how a multi-provider deployment hides per-provider batch
    latency.  Set it to 1 for strictly sequential groups.
    """

    def __init__(self, group_concurrency: int = 4) -> None:
        if group_concurrency <= 0:
            raise HarnessError(
                f"group_concurrency must be positive, got {group_concurrency}"
            )
        self.group_concurrency = group_concurrency

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        if not units:
            return {}
        groups = list(group_units_by_model(units).items())
        if len(groups) == 1 or self.group_concurrency == 1:
            shards = [self._execute_group(model, g) for model, g in groups]
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(self.group_concurrency, len(groups)),
                thread_name_prefix="repro-batch",
            ) as pool:
                shards = list(
                    pool.map(lambda item: self._execute_group(*item), groups)
                )
        merged: dict[str, Generation] = {}
        for shard in shards:
            merged.update(shard)
        return merged

    def _execute_group(
        self, model: str, units: list[WorkUnit]
    ) -> dict[str, Generation]:
        # Model.generate_batch owns the dispatch: one provider round-trip
        # when the provider implements generate_batch (output count
        # validated there), graceful per-request generate otherwise
        started = time.perf_counter()
        outputs = get_model(model).generate_batch(
            [(unit.prompt, unit.config) for unit in units]
        )
        elapsed = time.perf_counter() - started
        per_unit = elapsed / len(units)  # amortized batch cost
        return {
            unit.key: Generation(
                key=unit.key,
                model=unit.model,
                completion=output.completion,
                usage=output.usage,
                elapsed_s=per_unit,
            )
            for unit, output in zip(units, outputs)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchingExecutor(group_concurrency={self.group_concurrency})"
