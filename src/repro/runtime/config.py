"""One frozen config object for the whole runtime surface.

Seven PRs grew :func:`repro.runtime.run` eight orthogonal keyword knobs
(``executor``, ``cache``, ``score_cache``, ``scheduler``, ``store``,
``scoring``, ``faults``, ``resume_from``); the networked store added a
ninth (a store *URL*).  :class:`RunConfig` bundles them into one
immutable value that travels through every entry point —
``run(plan, config=...)``, :func:`repro.core.task.evaluate`, all five
experiment runners, :func:`repro.reporting.reproduce_table` and
``examples/reproduce_tables.py`` — so a sweep's execution policy is one
object you build once, ``replace()`` to vary, and pass everywhere.

The historical keyword arguments remain as a *deprecation shim*: they
merge into the config, and supplying the same knob both ways raises
:class:`~repro.errors.HarnessError` (silently preferring one would make
the other a lie).  See ``CHANGES.md`` for the removal policy.

Quickstart::

    from repro.runtime import RunConfig, ThreadedExecutor, run

    config = RunConfig.from_url(
        "tcp://cache-host:9045",            # shared networked RunStore
        executor=ThreadedExecutor(8),
    )
    result = run(plan, config=config)
    rerun = run(plan, config=config.replace(executor=None))  # serial, same cache
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import HarnessError

if TYPE_CHECKING:  # imported for annotations only — no import cycles at runtime
    from repro.runtime.cache import ResultCache, ScoreCache
    from repro.runtime.executors import Executor
    from repro.runtime.faults import FaultPolicy
    from repro.runtime.schedule import Scheduler
    from repro.runtime.scoring import ScoringPool

#: the knobs a config carries, in the order ``run()`` historically took them
RUN_KNOBS = (
    "executor",
    "cache",
    "score_cache",
    "scheduler",
    "store",
    "scoring",
    "faults",
    "resume_from",
)


@dataclass(frozen=True)
class RunConfig:
    """Every execution knob of one run, in one immutable object.

    All fields default to ``None`` — "use the runtime's default" — so an
    empty ``RunConfig()`` is exactly a bare ``run(plan)``.  ``store``
    accepts anything with the :class:`~repro.persist.RunStore` surface,
    including a :class:`~repro.serve.RemoteRunStore`; ``store_url``
    records the endpoint a store was opened from (set by
    :meth:`from_url`) purely as provenance — the resolved ``store``
    object is what the runtime uses.
    """

    executor: "Executor | None" = None
    cache: "ResultCache | None" = None
    score_cache: "ScoreCache | None" = None
    scheduler: "Scheduler | None" = None
    store: Any = None
    scoring: "ScoringPool | None" = None
    faults: "FaultPolicy | None" = None
    resume_from: str | None = None
    store_url: str | None = None

    @classmethod
    def from_url(cls, url: str, **knobs: Any) -> "RunConfig":
        """A config whose store is opened from ``url``.

        ``url`` is anything :func:`repro.serve.open_store` accepts: a
        plain directory path (local :class:`~repro.persist.RunStore`),
        ``tcp://host:port``, or ``unix:///path/sock`` /
        ``repro+unix://...`` (a :class:`~repro.serve.RemoteRunStore`
        client).  The opened store is owned by the returned config's
        caller — close it (``config.store.close()``) when done.
        """
        if "store" in knobs:
            raise HarnessError(
                "RunConfig.from_url opens the store from the URL; "
                "passing store= too is ambiguous"
            )
        from repro.serve import open_store  # lazy: serve builds on runtime

        return cls(store=open_store(url), store_url=url, **knobs)

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields replaced (``None`` clears a knob)."""
        return dataclasses.replace(self, **changes)

    def merged_with_kwargs(self, **kwargs: Any) -> "RunConfig":
        """Fold legacy keyword knobs into this config (the shim).

        A kwarg left at ``None`` defers to the config.  A kwarg that is
        set while the config sets the same knob raises
        :class:`~repro.errors.HarnessError` — even when the two values
        are equal, because "which one wins" must never be a question.
        """
        changes = {}
        for name, value in kwargs.items():
            if name not in RUN_KNOBS:
                raise HarnessError(f"unknown run knob {name!r}")
            if value is None:
                continue
            if getattr(self, name) is not None:
                raise HarnessError(
                    f"run knob {name!r} was supplied both on the RunConfig "
                    f"and as a keyword argument; set it in exactly one place"
                )
            changes[name] = value
        return self.replace(**changes) if changes else self

    def describe(self) -> str:
        """The non-default knobs, one compact line (logs, CLI banners)."""
        parts = [
            f"{name}={getattr(self, name)!r}"
            for name in (*RUN_KNOBS, "store_url")
            if getattr(self, name) is not None
        ]
        return f"RunConfig({', '.join(parts)})" if parts else "RunConfig(defaults)"
