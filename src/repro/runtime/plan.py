"""Plans: flatten a sweep into work units before anything executes.

Experiments do not loop over ``model.generate`` themselves any more; they
describe their sweep to a :class:`Plan` — one :meth:`Plan.add_eval` call
per (task, model) cell — and hand the plan to
:func:`repro.runtime.run`.  Planning is cheap and deterministic: solver
chains run here (prompt rendering), epochs expand into per-seed
:class:`~repro.runtime.units.WorkUnit`\\ s, and each ``add_eval`` returns
an :class:`EvalSpec` handle with which the caller retrieves its
reassembled :class:`~repro.core.task.EvalResult` after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.samples import Sample
from repro.core.solvers import SolverChain
from repro.core.task import (
    DEFAULT_EPOCHS,
    PAPER_GENERATE_CONFIG,
    EvalResult,
    SampleResult,
    Task,
)
from repro.errors import HarnessError, UnitFailedError
from repro.llm.api import Model, get_model, register_instance
from repro.llm.types import GenerateConfig

from repro.runtime.units import UnitResult, WorkUnit


@dataclass(frozen=True)
class EvalSpec:
    """Handle for one (task, model) evaluation inside a plan.

    ``sample_units`` maps each solved sample to the uids of its per-epoch
    units, in epoch order — everything needed to reassemble an
    :class:`~repro.core.task.EvalResult` from unit results.
    """

    task_name: str
    model_name: str
    epochs: int
    sample_units: tuple[tuple[Sample, tuple[str, ...]], ...]

    def assemble(
        self,
        results: Mapping[str, UnitResult],
        *,
        failures: "Mapping[str, object] | None" = None,
        skip_failed: bool = False,
    ) -> EvalResult:
        """Rebuild the eval result this spec describes from unit results.

        ``failures`` maps quarantined uids to their
        :class:`~repro.runtime.faults.UnitFailure` records (runs under a
        ``FaultPolicy`` with ``on_failure != "raise"``).  A spec touched
        by failures raises :class:`~repro.errors.UnitFailedError`
        carrying those records — unless ``skip_failed`` is set, in which
        case failed epochs are dropped (and samples with no surviving
        epoch dropped entirely), assembling a partial result.
        """
        failures = failures or {}
        failed_here: list[object] = []
        samples: list[SampleResult] = []
        for sample, uids in self.sample_units:
            per_epoch: list[UnitResult] = []
            for uid in uids:
                unit_result = results.get(uid)
                if unit_result is not None:
                    per_epoch.append(unit_result)
                    continue
                failure = failures.get(uid)
                if failure is None:
                    raise HarnessError(
                        f"run is missing unit {uid!r} for task "
                        f"{self.task_name!r}; was the plan executed by "
                        "repro.runtime.run?"
                    )
                failed_here.append(failure)
            if per_epoch or not uids:
                samples.append(
                    SampleResult(
                        sample=sample,
                        prompt=sample.input,
                        scores=[r.score for r in per_epoch],
                        completions=[r.completion for r in per_epoch],
                    )
                )
        if failed_here and not skip_failed:
            raise UnitFailedError(
                f"{len(failed_here)} unit(s) of task {self.task_name!r} × "
                f"{self.model_name!r} were quarantined by the fault policy; "
                "re-run the plan against the same store to heal them, or "
                'assemble with on_failure="skip" for partial results',
                failures=tuple(failed_here),
            )
        if failed_here and not samples:
            raise UnitFailedError(
                f"every unit of task {self.task_name!r} × "
                f"{self.model_name!r} failed; nothing to assemble",
                failures=tuple(failed_here),
            )
        return EvalResult(
            task_name=self.task_name,
            model_name=self.model_name,
            epochs=self.epochs,
            samples=samples,
        )


@dataclass
class Plan:
    """An immutable-once-run collection of work units plus their sweeps."""

    name: str
    _units: list[WorkUnit] = field(default_factory=list, repr=False)
    _specs: list[EvalSpec] = field(default_factory=list, repr=False)

    def add_eval(
        self,
        task: Task,
        model: Model | str,
        *,
        epochs: int = DEFAULT_EPOCHS,
        config: GenerateConfig | None = None,
    ) -> EvalSpec:
        """Expand ``task × model × epochs`` into work units; return a handle."""
        if epochs <= 0:
            raise HarnessError(f"epochs must be positive, got {epochs}")
        if isinstance(model, str):
            model = get_model(model)
        else:
            # units reference models by name, so a caller-supplied instance
            # must be reachable through the registry at execution time
            register_instance(model.provider)
        base = config or PAPER_GENERATE_CONFIG
        chain = SolverChain(list(task.solvers))

        sample_units: list[tuple[Sample, tuple[str, ...]]] = []
        for sample in task.dataset:
            solved = chain(sample)
            uids: list[str] = []
            for epoch in range(epochs):
                epoch_config = GenerateConfig(
                    temperature=base.temperature,
                    top_p=base.top_p,
                    max_tokens=base.max_tokens,
                    seed=epoch,
                )
                uid = f"u{len(self._units)}:{task.name}:{solved.id}:{model.name}:{epoch}"
                self._units.append(
                    WorkUnit(
                        uid=uid,
                        task_name=task.name,
                        sample=solved,
                        model=model.name,
                        config=epoch_config,
                        scorer=task.scorer,
                    )
                )
                uids.append(uid)
            sample_units.append((solved, tuple(uids)))

        spec = EvalSpec(
            task_name=task.name,
            model_name=model.name,
            epochs=epochs,
            sample_units=tuple(sample_units),
        )
        self._specs.append(spec)
        return spec

    @property
    def units(self) -> Sequence[WorkUnit]:
        return tuple(self._units)

    @property
    def specs(self) -> Sequence[EvalSpec]:
        return tuple(self._specs)

    def __len__(self) -> int:
        return len(self._units)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Plan({self.name!r}, units={len(self._units)}, evals={len(self._specs)})"
