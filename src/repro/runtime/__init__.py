"""Parallel evaluation runtime: plan → schedule → execute → cache.

The runtime decouples *what* a sweep evaluates from *how* the model
calls run.  Experiments build a :class:`~repro.runtime.plan.Plan` of
immutable :class:`~repro.runtime.units.WorkUnit`\\ s (one per task ×
sample × model × epoch, seed included), and :func:`~repro.runtime.runner.run`
executes it on a pluggable :class:`~repro.runtime.executors.Executor`
with an optional content-addressed
:class:`~repro.runtime.cache.ResultCache` in front of the model layer
and a pluggable :class:`~repro.runtime.schedule.Scheduler` picking the
dispatch order.

Every executor and scheduler yields bit-identical results because all
randomness is derived from unit content, never from execution order.

Quickstart::

    from repro.core.experiments import run_configuration
    from repro.runtime import AdaptiveScheduler, AsyncExecutor, InMemoryResultCache

    cache = InMemoryResultCache()
    scheduler = AdaptiveScheduler()  # learns per-model cost online
    grid = run_configuration(
        executor=AsyncExecutor(16), cache=cache, scheduler=scheduler
    )
    rerun = run_configuration(
        executor=AsyncExecutor(16), cache=cache, scheduler=scheduler
    )
    # rerun performed zero model generations and is bit-identical
"""

from repro.runtime.batching import BatchingExecutor, group_units_by_model
from repro.runtime.config import RunConfig
from repro.runtime.cache import (
    FilesystemResultCache,
    InMemoryResultCache,
    ResultCache,
    ScoreCache,
)
from repro.runtime.executors import (
    AsyncExecutor,
    Executor,
    MpiShardExecutor,
    SerialExecutor,
    ThreadedExecutor,
    generate_unit,
)
from repro.runtime.faults import (
    FailedGeneration,
    FaultPolicy,
    FaultState,
    RetryPolicy,
    UnitFailure,
    active_faults,
    fault_scope,
)
from repro.runtime.health import (
    BreakerRegistry,
    HealthTracker,
    HealthTrackedProvider,
)
from repro.runtime.plan import EvalSpec, Plan
from repro.runtime.runner import RunResult, RunStats, run, score_key
from repro.runtime.scoring import (
    AdaptiveScoringPool,
    BatchScoreHandle,
    ScoreHandle,
    ScoringPool,
)
from repro.runtime.schedule import (
    AdaptiveScheduler,
    ExpectedCostModel,
    PlanOrderScheduler,
    Scheduler,
)
from repro.runtime.units import Generation, UnitResult, WorkUnit, generation_key

__all__ = [
    "Plan",
    "EvalSpec",
    "WorkUnit",
    "Generation",
    "UnitResult",
    "generation_key",
    "generate_unit",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "MpiShardExecutor",
    "AsyncExecutor",
    "RetryPolicy",
    "FaultPolicy",
    "FaultState",
    "UnitFailure",
    "FailedGeneration",
    "fault_scope",
    "active_faults",
    "HealthTracker",
    "BreakerRegistry",
    "HealthTrackedProvider",
    "BatchingExecutor",
    "group_units_by_model",
    "Scheduler",
    "PlanOrderScheduler",
    "AdaptiveScheduler",
    "ExpectedCostModel",
    "ResultCache",
    "InMemoryResultCache",
    "FilesystemResultCache",
    "ScoreCache",
    "ScoringPool",
    "AdaptiveScoringPool",
    "ScoreHandle",
    "BatchScoreHandle",
    "score_key",
    "run",
    "RunConfig",
    "RunResult",
    "RunStats",
]
