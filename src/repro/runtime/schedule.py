"""Schedulers: the order in which pending units reach the executor.

Results never depend on execution order (seeds travel inside units), so
scheduling is purely a *latency* lever: under any bounded-concurrency
executor, dispatching the longest-expected units first minimizes the
makespan tail — the classic longest-processing-time heuristic.

* :class:`PlanOrderScheduler` — the bit-identical default: units reach
  the executor exactly as the plan emitted them (what every run did
  before schedulers existed);
* :class:`AdaptiveScheduler` — longest-expected-unit-first, fed by an
  :class:`ExpectedCostModel` that :func:`repro.runtime.runner.run`
  trains online from the per-unit timings each run's generations carry
  (the same numbers :class:`~repro.runtime.runner.RunStats` aggregates
  as ``generation_seconds``).  Share one scheduler (or one cost model)
  across runs and every sweep after the first is ordered by observed
  per-model cost.
"""

from __future__ import annotations

import threading
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import HarnessError

from repro.runtime.units import WorkUnit


@runtime_checkable
class Scheduler(Protocol):
    """What a scheduling policy must implement.

    ``order`` returns a permutation of ``units``; implementations may
    additionally expose ``observe(unit, elapsed_s)``, which the runner
    calls once per freshly executed unit so the policy can learn.
    """

    def order(
        self, units: Sequence[WorkUnit]
    ) -> list[WorkUnit]:  # pragma: no cover - protocol
        ...


class PlanOrderScheduler:
    """Dispatch units exactly in plan order (the determinism baseline)."""

    def order(self, units: Sequence[WorkUnit]) -> list[WorkUnit]:
        return list(units)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PlanOrderScheduler()"


class ExpectedCostModel:
    """Online per-model estimate of one generation's wall-clock cost.

    An exponential moving average per model name, updated from observed
    call durations.  A model never seen before is estimated at the mean
    of the models already observed (any real number beats assuming
    zero), and with no observations at all every unit costs the same —
    the scheduler then degrades to plan order.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise HarnessError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._ema: dict[str, float] = {}
        self._observations = 0

    def observe(self, model: str, elapsed_s: float) -> None:
        """Fold one measured call duration into the model's estimate."""
        if elapsed_s <= 0:
            return  # cached/zero-cost records carry no signal
        with self._lock:
            previous = self._ema.get(model)
            if previous is None:
                self._ema[model] = elapsed_s
            else:
                self._ema[model] = (
                    self.alpha * elapsed_s + (1 - self.alpha) * previous
                )
            self._observations += 1

    def expected(self, unit: WorkUnit) -> float:
        """Expected cost (seconds) of executing ``unit`` now."""
        with self._lock:
            estimate = self._ema.get(unit.model)
            if estimate is not None:
                return estimate
            if self._ema:
                return sum(self._ema.values()) / len(self._ema)
        return 0.0

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def snapshot(self) -> dict[str, float]:
        """Current per-model estimates (for diagnostics and tests)."""
        with self._lock:
            return dict(self._ema)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExpectedCostModel(alpha={self.alpha}, "
            f"models={sorted(self.snapshot())})"
        )


class AdaptiveScheduler:
    """Longest-expected-unit-first ordering, optionally health-aware.

    The sort is stable, so units with equal estimates keep plan order —
    a cold cost model makes this scheduler behave exactly like
    :class:`PlanOrderScheduler`.

    When a :class:`~repro.runtime.health.BreakerRegistry` is attached
    (share the one on the run's
    :class:`~repro.runtime.faults.FaultPolicy`), units whose model's
    breaker is currently **open** sort behind every healthy unit: the
    run makes progress on working providers first, and by the time the
    deprioritized units are dispatched, the failing provider has had
    its cooldown — the cheapest possible form of fault-aware
    scheduling, with no effect on results (order never changes
    content).  Probe-ready breakers (cooldown elapsed) do not
    deprioritize: those units *are* the probes.
    """

    def __init__(
        self,
        cost_model: ExpectedCostModel | None = None,
        health=None,
    ) -> None:
        self.cost_model = (
            cost_model if cost_model is not None else ExpectedCostModel()
        )
        self.health = health

    def _deprioritized(self, unit: WorkUnit) -> bool:
        if self.health is None:
            return False
        tracker = self.health.peek(unit.model)
        return tracker is not None and tracker.is_open

    def order(self, units: Sequence[WorkUnit]) -> list[WorkUnit]:
        return sorted(
            units,
            key=lambda unit: (
                self._deprioritized(unit),
                -self.cost_model.expected(unit),
            ),
        )

    def observe(self, unit: WorkUnit, elapsed_s: float) -> None:
        self.cost_model.observe(unit.model, elapsed_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdaptiveScheduler(cost_model={self.cost_model!r})"
