"""The runtime entry point: plan → (cache, dedup) → executor → results.

:func:`run` is the single funnel every evaluation in the repository goes
through.  It looks each work unit up in the result cache, deduplicates
identical generations within the run, hands only the genuinely new units
to the executor, re-scores every unit against its own target, and
reassembles the plan's evaluation results.  :class:`RunStats` records
how much work the model layer actually did, which is what the cache and
scaling tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.task import EvalResult
from repro.errors import HarnessError

from repro.runtime.cache import ResultCache
from repro.runtime.executors import Executor, SerialExecutor
from repro.runtime.plan import EvalSpec, Plan
from repro.runtime.units import Generation, UnitResult


@dataclass(frozen=True)
class RunStats:
    """How one run's units were satisfied."""

    total_units: int
    generated: int  # units that reached the executor (new model calls)
    cache_hits: int  # units satisfied from the result cache
    deduplicated: int  # units coalesced onto an identical in-run generation

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_units if self.total_units else 0.0


@dataclass
class RunResult:
    """Executed plan: per-unit results plus reassembly helpers."""

    plan: Plan
    results: Mapping[str, UnitResult]
    stats: RunStats

    def eval_result(self, spec: EvalSpec) -> EvalResult:
        """The :class:`EvalResult` for one ``add_eval`` handle."""
        return spec.assemble(self.results)

    def __getitem__(self, uid: str) -> UnitResult:
        return self.results[uid]


def run(
    plan: Plan,
    *,
    executor: Executor | None = None,
    cache: ResultCache | None = None,
) -> RunResult:
    """Execute every unit of ``plan`` and score it against its target.

    Results are independent of the executor choice: seeds live inside
    the units, and generations are keyed by content, so serial, threaded
    and MPI-shard execution (and any mix of cold/warm cache) produce
    bit-identical output.
    """
    executor = executor or SerialExecutor()
    units = plan.units

    generations: dict[str, Generation] = {}
    pending = []  # first unit per generation key that missed the cache
    cache_hits = 0
    for unit in units:
        if unit.key in generations:
            continue
        hit = cache.get(unit.key) if cache is not None else None
        if hit is not None:
            generations[unit.key] = hit
            cache_hits += 1
        else:
            generations[unit.key] = None  # claimed; filled after execution
            pending.append(unit)

    if pending:
        produced = executor.execute(pending)
        missing = [u.uid for u in pending if u.key not in produced]
        if missing:
            raise HarnessError(
                f"executor {executor!r} returned no generation for units {missing}"
            )
        generations.update(produced)
        if cache is not None:
            for unit in pending:
                cache.put(produced[unit.key])

    results: dict[str, UnitResult] = {}
    for unit in units:
        gen = generations[unit.key]
        score = unit.scorer(gen.completion, unit.target)
        results[unit.uid] = UnitResult(uid=unit.uid, generation=gen, score=score)

    unique_keys = len(generations)
    stats = RunStats(
        total_units=len(units),
        generated=len(pending),
        cache_hits=cache_hits,
        deduplicated=len(units) - unique_keys,
    )
    return RunResult(plan=plan, results=results, stats=stats)
