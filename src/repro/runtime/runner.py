"""The runtime entry point: plan → (cache, dedup) → schedule → execute → score.

:func:`run` is the single funnel every evaluation in the repository goes
through.  It looks each work unit up in the result cache (one batched
``get_many`` when the backend supports it), deduplicates identical
generations within the run, hands only the genuinely new units — in the
dispatch order the scheduler picks — to the executor, scores every unit
against its own target behind a :class:`~repro.runtime.cache.ScoreCache`
(identical (generation, target, scorer) triples are scored once), and
reassembles the plan's evaluation results.

Scoring can be *pipelined*: pass a
:class:`~repro.runtime.scoring.ScoringPool` as ``scoring`` and each
unit's metric work is submitted to a worker process the moment its
generation exists — for streaming executors (serial, threaded) that is
while later units are still generating — and collected at assembly
time.  Results are bit-identical to inline scoring; only the wall time
changes.

:class:`RunStats` records how much work the model layer *and* the
metric layer actually did, which is what the cache and scaling tests
assert on.  When a :mod:`repro.perf` profiler is active the run's phase
breakdown (cache-get / generate / cache-put / score, with nested
store-io spans) is attached as :attr:`RunStats.profile`.
"""

from __future__ import annotations

import contextlib
import hashlib
import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Hashable, Mapping

from repro.core.task import EvalResult
from repro.errors import HarnessError
from repro.obs import (
    PhaseProfile,
    active_profiler,
    active_registry,
    active_tracer,
    span,
)
from repro.stats import stats_dict, strip_markers

if TYPE_CHECKING:  # repro.persist builds on repro.runtime, not vice versa
    from repro.persist import RunManifest, RunStore

from repro.runtime.cache import ResultCache, ScoreCache
from repro.runtime.config import RunConfig
from repro.runtime.executors import Executor, SerialExecutor
from repro.runtime.faults import (
    FailedGeneration,
    FaultPolicy,
    FaultState,
    UnitFailure,
    fault_scope,
)
from repro.runtime.plan import EvalSpec, Plan
from repro.runtime.schedule import PlanOrderScheduler, Scheduler
from repro.runtime.scoring import ScoreHandle, ScoringPool
from repro.runtime.units import Generation, UnitResult, WorkUnit


def score_key(unit: WorkUnit, target_hash: str) -> Hashable:
    """Memoization key for one unit's score.

    (generation key, target hash, scorer fingerprint): the generation
    key pins the completion, the target hash pins what it is compared
    against, and the scorer fingerprint pins *how* — two tasks sharing
    a prompt and target but scoring differently never collide.  Scorers
    may expose a ``fingerprint`` attribute; otherwise the scorer object
    itself is the fingerprint (the key's reference keeps it alive, so
    its identity cannot be recycled while cached).  Unhashable
    fingerprint-less scorers fall back to ``id()`` — such a scorer must
    outlive any :class:`~repro.runtime.cache.ScoreCache` shared across
    runs.
    """
    scorer: Callable = unit.scorer
    fingerprint = getattr(scorer, "fingerprint", None)
    if fingerprint is not None:
        try:
            hash(fingerprint)
        except TypeError:
            fingerprint = None  # unusable fingerprint: key on the scorer itself
    if fingerprint is None:
        try:
            hash(scorer)
            fingerprint = scorer
        except TypeError:
            fingerprint = id(scorer)
    return (unit.key, target_hash, fingerprint)


@dataclass(frozen=True)
class RunStats:
    """How one run's units were satisfied."""

    total_units: int
    generated: int  # units that reached the executor (new model calls)
    cache_hits: int  # units satisfied from the result cache
    deduplicated: int  # units coalesced onto an identical in-run generation
    scores_computed: int = 0  # scorer invocations (score-cache misses)
    score_hits: int = 0  # units whose score came from the score cache
    generation_seconds: float = 0.0  # summed provider wall-clock of new calls
    profile: PhaseProfile | None = None  # phase breakdown (when profiling)
    score_workers: int = 0  # scoring worker processes this run used (0 = inline)
    read_lru_hits: int = 0  # store read-LRU hits during this run (disk cache)
    read_lru_misses: int = 0  # store read-LRU misses during this run
    bytes_read: int = 0  # record bytes read from store segments this run
    units_failed: int = 0  # units quarantined by the fault policy
    units_retried: int = 0  # units that needed at least one retry
    retry_seconds: float = 0.0  # failed-attempt time + backoff sleeps
    trace_id: str | None = None  # distributed-trace id (when tracing was on)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_units if self.total_units else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Unified stats payload (``repro.stats`` schema, kind ``"run"``).

        Key names match the dataclass fields — the shape manifests have
        always persisted — plus the schema/kind markers; the profile
        nests as its own dict.
        """
        payload = stats_dict("run")
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        payload["profile"] = (
            self.profile.as_dict() if self.profile is not None else None
        )
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunStats":
        """Rehydrate from :meth:`as_dict` output *or* a pre-schema payload.

        Tolerant in both directions: marker keys and unknown future keys
        are ignored, and fields absent from old payloads keep their
        dataclass defaults.
        """
        body = strip_markers(dict(payload))
        profile = body.pop("profile", None)
        known = {spec.name for spec in fields(cls)}
        kwargs = {key: value for key, value in body.items() if key in known}
        try:
            return cls(
                **kwargs,
                profile=PhaseProfile.from_dict(profile)
                if profile is not None
                else None,
            )
        except TypeError as exc:
            raise HarnessError(f"malformed run-stats payload: {exc}") from None


@dataclass
class RunResult:
    """Executed plan: per-unit results plus reassembly helpers."""

    plan: Plan
    results: Mapping[str, UnitResult]
    stats: RunStats
    manifest: "RunManifest | None" = None  # recorded when a store was used
    failures: Mapping[str, UnitFailure] = None  # uid -> quarantined failure
    on_failure: str = "raise"  # the run's FaultPolicy disposition

    def __post_init__(self) -> None:
        if self.failures is None:
            self.failures = {}

    def eval_result(self, spec: EvalSpec) -> EvalResult:
        """The :class:`EvalResult` for one ``add_eval`` handle.

        An eval whose units were quarantined by the fault policy raises
        :class:`~repro.errors.UnitFailedError` here (``isolate`` mode)
        or silently drops the failed epochs/samples (``skip`` mode).
        """
        return spec.assemble(
            self.results,
            failures=self.failures,
            skip_failed=self.on_failure == "skip",
        )

    def __getitem__(self, uid: str) -> UnitResult:
        return self.results[uid]


def run(
    plan: Plan,
    *,
    config: "RunConfig | None" = None,
    executor: Executor | None = None,
    cache: ResultCache | None = None,
    score_cache: ScoreCache | None = None,
    scheduler: Scheduler | None = None,
    store: "RunStore | None" = None,
    scoring: ScoringPool | None = None,
    faults: FaultPolicy | None = None,
    resume_from: str | None = None,
) -> RunResult:
    """Execute every unit of ``plan`` and score it against its target.

    See :func:`_run_impl` for the execution pipeline itself; this
    wrapper owns the run's **distributed trace**: when a
    :func:`repro.obs.tracing` tracer is active, the run opens its own
    trace (``run:<plan name>``), every span inside — including spans
    folded back from scoring-pool workers and the remote store server —
    is recorded with ids/parents/wall-clock placement, and the finished
    trace lands on the run's manifest (and its id on
    :attr:`RunStats.trace_id`).  A run started while another trace is
    already open simply folds its spans into the outer trace.  Telemetry
    never changes results: grids are bit-identical with tracing on or
    off.
    """
    tracer = active_tracer()
    handle = tracer.begin_trace(f"run:{plan.name}") if tracer is not None else None
    kwargs = dict(
        config=config,
        executor=executor,
        cache=cache,
        score_cache=score_cache,
        scheduler=scheduler,
        store=store,
        scoring=scoring,
        faults=faults,
        resume_from=resume_from,
    )
    if handle is None:
        return _run_impl(plan, **kwargs)
    finished: list = []

    def finish_trace():
        trace = tracer.end_trace(handle)
        finished.append(trace)
        return trace

    try:
        return _run_impl(plan, _finish_trace=finish_trace, **kwargs)
    finally:
        if not finished:  # the run raised before its trace was sealed
            tracer.end_trace(handle)


def _publish_run_metrics(registry, plan: Plan, stats: RunStats) -> None:
    """Fold one run's counters into the ambient metrics registry."""
    labels = {"plan": plan.name}
    registry.counter("repro_runs_total", "runs executed", ("plan",)).inc(**labels)
    units = registry.counter(
        "repro_run_units_total",
        "units by how they were satisfied",
        ("plan", "outcome"),
    )
    for outcome, count in (
        ("generated", stats.generated),
        ("cache_hit", stats.cache_hits),
        ("deduplicated", stats.deduplicated),
        ("failed", stats.units_failed),
    ):
        if count:
            units.inc(count, outcome=outcome, **labels)
    for name, help_text, value in (
        ("repro_scores_computed_total", "scorer invocations", stats.scores_computed),
        ("repro_score_hits_total", "score-cache hits", stats.score_hits),
        ("repro_units_retried_total", "units needing retries", stats.units_retried),
        ("repro_read_lru_hits_total", "store read-LRU hits", stats.read_lru_hits),
        ("repro_read_lru_misses_total", "store read-LRU misses", stats.read_lru_misses),
        ("repro_store_bytes_read_total", "segment bytes read", stats.bytes_read),
    ):
        if value:
            registry.counter(name, help_text, ("plan",)).inc(value, **labels)
    registry.histogram(
        "repro_generation_seconds",
        "summed provider wall-clock per run",
        ("plan",),
    ).observe(stats.generation_seconds, **labels)


def _run_impl(
    plan: Plan,
    *,
    config: "RunConfig | None" = None,
    executor: Executor | None = None,
    cache: ResultCache | None = None,
    score_cache: ScoreCache | None = None,
    scheduler: Scheduler | None = None,
    store: "RunStore | None" = None,
    scoring: ScoringPool | None = None,
    faults: FaultPolicy | None = None,
    resume_from: str | None = None,
    _finish_trace: Callable[[], Any] | None = None,
) -> RunResult:
    """The execution pipeline behind :func:`run`.

    Results are independent of the executor *and* scheduler choice:
    seeds live inside the units, and generations are keyed by content,
    so serial, threaded, MPI-shard, async and batched execution (in any
    dispatch order, with any mix of cold/warm cache) produce
    bit-identical output.

    ``scheduler`` picks the dispatch order of the units that miss the
    cache (default: plan order); a scheduler exposing ``observe`` — the
    :class:`~repro.runtime.schedule.AdaptiveScheduler` — is fed each
    fresh generation's measured duration, so sharing one across runs
    trains its cost model online.  ``score_cache`` memoizes scores
    across runs; when omitted, a fresh per-run cache still collapses the
    metric work of deduplicated units.

    ``store`` plugs in a durable :class:`~repro.persist.RunStore`: unless
    overridden by an explicit ``cache``/``score_cache``, generations and
    scores are read from and written through to disk (shared with every
    process pointed at the same directory), and the run is recorded as a
    :class:`~repro.persist.RunManifest` — so an interrupted or repeated
    sweep re-generates only the units the store has never seen, and
    ``RunResult.manifest`` documents exactly how each run was satisfied.

    ``scoring`` plugs in a :class:`~repro.runtime.scoring.ScoringPool`:
    score-cache misses are computed in worker processes, overlapping
    generation when the executor streams (serial, threaded) and each
    other always; grids stay bit-identical to inline scoring.  Units
    sharing a scorer and target are submitted as one batched group
    (one worker call per chunk instead of one per score).  An
    :class:`~repro.runtime.scoring.AdaptiveScoringPool` additionally
    chooses its worker count here, per run, from its cost model — and
    is fed this run's measured per-unit costs afterwards.

    ``faults`` installs a :class:`~repro.runtime.faults.FaultPolicy` for
    the execution phase: every executor gains the same deterministic
    retry/backoff, per-unit deadlines and a run-shared retry budget, and
    — with ``on_failure="isolate"``/``"skip"`` — units that exhaust
    their chances are quarantined as per-uid
    :class:`~repro.runtime.faults.UnitFailure` records instead of
    aborting the sweep.  Failures are never cached, so re-running the
    same plan against the same store re-executes exactly the quarantined
    units; ``resume_from`` makes that linkage explicit by validating the
    prior run's manifest (same plan fingerprint) and recording it as
    this run's predecessor.

    ``config`` is the documented way to set all of the above at once: a
    :class:`~repro.runtime.config.RunConfig` carrying the same eight
    knobs as one immutable value.  The individual keyword arguments
    remain as a deprecation shim and merge into the config; supplying a
    knob both ways raises :class:`~repro.errors.HarnessError`.
    """
    merged = (config if config is not None else RunConfig()).merged_with_kwargs(
        executor=executor,
        cache=cache,
        score_cache=score_cache,
        scheduler=scheduler,
        store=store,
        scoring=scoring,
        faults=faults,
        resume_from=resume_from,
    )
    executor, cache, score_cache, scheduler = (
        merged.executor, merged.cache, merged.score_cache, merged.scheduler,
    )
    store, scoring, faults, resume_from = (
        merged.store, merged.scoring, merged.faults, merged.resume_from,
    )
    started_unix = time.time()
    started = time.perf_counter()
    if resume_from is not None:
        if store is None:
            raise HarnessError(
                "resume_from requires a store (the failure set to resume "
                "lives in the prior run's manifest)"
            )
        from repro.persist.manifest import plan_fingerprint

        prior = store.manifest(resume_from)
        if prior is None:
            raise HarnessError(
                f"store at {store.root} has no recorded run {resume_from!r}"
            )
        if prior.plan_fingerprint != plan_fingerprint(plan):
            raise HarnessError(
                f"run {resume_from!r} executed a different plan "
                f"(fingerprint {prior.plan_fingerprint[:12]}…); resume "
                "must replay the same plan against the same store"
            )
    fault_state = FaultState(faults) if faults is not None else None
    profiler = active_profiler()
    profile_before = profiler.snapshot() if profiler is not None else None
    if store is not None:
        if cache is None:
            cache = store.result_cache
        if score_cache is None:
            score_cache = store.score_cache()
    executor = executor or SerialExecutor()
    scheduler = scheduler if scheduler is not None else PlanOrderScheduler()
    score_cache = score_cache if score_cache is not None else ScoreCache()
    units = plan.units

    # a disk-backed cache exposes cheap read-LRU counters; the deltas
    # over this run land in RunStats (and therefore in the manifest)
    read_stats_fn = getattr(cache, "read_stats", None) if cache is not None else None
    reads_before = read_stats_fn() if read_stats_fn is not None else None

    # -- result-cache lookup + in-run dedup ----------------------------------
    generations: dict[str, Generation | None] = {}
    pending = []  # first unit per generation key that missed the cache
    cache_hits = 0
    with span("cache-get"):
        lookup_units = []  # first unit per distinct generation key
        for unit in units:
            if unit.key not in generations:
                generations[unit.key] = None  # claimed; filled below
                lookup_units.append(unit)
        hits: dict[str, Generation] = {}
        if cache is not None:
            get_many = getattr(cache, "get_many", None)
            if get_many is not None:
                # one batched lookup for the whole plan (the disk backend
                # sorts the reads by segment offset); semantics identical
                hits = get_many([unit.key for unit in lookup_units])
            else:
                for unit in lookup_units:
                    hit = cache.get(unit.key)
                    if hit is not None:
                        hits[unit.key] = hit
        for unit in lookup_units:
            hit = hits.get(unit.key)
            if hit is not None:
                generations[unit.key] = hit
                cache_hits += 1
            else:
                pending.append(unit)

    # -- score planning ------------------------------------------------------
    # A unit's score key needs only the generation key, the target and
    # the scorer — all known before execution — so score-cache hits are
    # resolved and pool submissions planned up front.
    target_hashes: dict[str, str] = {}  # per-run memo of target digests
    unit_skeys: dict[str, Hashable] = {}  # uid -> score key
    skey_units: dict[Hashable, WorkUnit] = {}  # first unit per score key
    for unit in units:
        target_hash = target_hashes.get(unit.target)
        if target_hash is None:
            target_hash = target_hashes[unit.target] = hashlib.sha256(
                unit.target.encode("utf-8")
            ).hexdigest()
        skey = score_key(unit, target_hash)
        unit_skeys[unit.uid] = skey
        if skey not in skey_units:
            skey_units[skey] = unit

    cached_scores: dict[Hashable, object] = {}
    to_compute: dict[str, list[Hashable]] = {}  # generation key -> score keys
    with span("score"):  # cache consultation is part of the scoring phase
        for skey, unit in skey_units.items():
            hit = score_cache.get(skey)
            if hit is not None:
                cached_scores[skey] = hit
            else:
                to_compute.setdefault(unit.key, []).append(skey)

    # -- scoring backend resolution ------------------------------------------
    # an adaptive pool picks its worker count now, from the number of
    # score computes this run actually needs (0 = score inline)
    adaptive = scoring if hasattr(scoring, "for_run") else None
    score_backend = scoring
    if adaptive is not None:
        score_backend = adaptive.for_run(
            sum(len(skeys) for skeys in to_compute.values())
        )

    pool_jobs: dict[Hashable, ScoreHandle] = {}

    def submit_scores(resolved: list[tuple[str, Generation]]) -> None:
        """Queue every score waiting on the given resolved generations.

        Scores sharing a (scorer, target) pair are submitted as one
        batched group — one worker call per chunk — when the backend
        supports it; results are identical to per-score submission.
        """
        groups: dict[tuple, list[tuple[Hashable, str]]] = {}
        for gen_key, gen in resolved:
            for skey in to_compute.get(gen_key, ()):
                unit = skey_units[skey]
                groups.setdefault((id(unit.scorer), unit.target), []).append(
                    (skey, gen.completion)
                )
        submit_many = getattr(score_backend, "submit_many", None)
        for (_scorer_id, target), entries in groups.items():
            scorer = skey_units[entries[0][0]].scorer
            if submit_many is not None and len(entries) > 1:
                handles = submit_many(
                    scorer, [completion for _skey, completion in entries], target
                )
                for (skey, _completion), handle in zip(entries, handles):
                    pool_jobs[skey] = handle
            else:
                for skey, completion in entries:
                    pool_jobs[skey] = score_backend.submit(
                        scorer, completion, target
                    )

    if score_backend is not None:
        # generations already satisfied from the cache can score now,
        # overlapping the execution phase below
        submit_scores(
            [(gen_key, gen) for gen_key, gen in generations.items() if gen is not None]
        )

    # -- execution -----------------------------------------------------------
    generation_seconds = 0.0
    failed: dict[str, FailedGeneration] = {}  # generation key -> failure
    ok_units: list = []  # executed units that actually produced a generation
    if pending:
        ordered = scheduler.order(pending)
        if len(ordered) != len(pending) or {u.uid for u in ordered} != {
            u.uid for u in pending
        }:
            raise HarnessError(
                f"scheduler {scheduler!r} must return a permutation of the "
                f"pending units ({len(pending)} in, {len(ordered)} out)"
            )
        execute_iter = (
            getattr(executor, "execute_iter", None)
            if score_backend is not None
            else None
        )
        produced: dict[str, Generation] = {}
        scope = (
            fault_scope(fault_state)
            if fault_state is not None
            else contextlib.nullcontext()
        )
        with scope, span("generate"):
            if execute_iter is not None:
                # streaming: completed units flow into the scoring pool
                # while later units are still generating
                for gen in execute_iter(ordered):
                    produced[gen.key] = gen
                    if not isinstance(gen, FailedGeneration):
                        submit_scores([(gen.key, gen)])
            else:
                produced = executor.execute(ordered)
        failed = {
            key: gen
            for key, gen in produced.items()
            if isinstance(gen, FailedGeneration)
        }
        missing = [u.uid for u in pending if u.key not in produced]
        if missing:
            raise HarnessError(
                f"executor {executor!r} returned no generation for units {missing}"
            )
        generations.update(produced)
        ok_units = (
            [unit for unit in pending if unit.key not in failed]
            if failed
            else list(pending)
        )
        if score_backend is not None and execute_iter is None:
            submit_scores([(unit.key, produced[unit.key]) for unit in ok_units])
        observe = getattr(scheduler, "observe", None)
        for unit in ok_units:
            gen = produced[unit.key]
            generation_seconds += gen.elapsed_s
            if observe is not None:
                observe(unit, gen.elapsed_s)
        if cache is not None and ok_units:
            # quarantined failures never enter the cache: the next run
            # against the same cache/store re-executes exactly them
            with span("cache-put"):
                put_many = getattr(cache, "put_many", None)
                if put_many is not None:
                    # one lock acquisition / append batch for backends that
                    # support it (in-memory, disk); semantics identical
                    put_many([produced[unit.key] for unit in ok_units])
                else:
                    for unit in ok_units:
                        cache.put(produced[unit.key])

    # -- scoring + assembly --------------------------------------------------
    # failures become per-uid records (deduplicated units sharing a
    # failed generation key all fail together) and are excluded from
    # scoring; EvalSpec.assemble surfaces them per evaluation
    failures: dict[str, UnitFailure] = {}
    if failed:
        for unit in units:
            failure = failed.get(unit.key)
            if failure is not None:
                failures[unit.uid] = failure.unit_failure(unit.uid)
    results: dict[str, UnitResult] = {}
    computed_scores: dict[Hashable, object] = {}
    scores_computed = score_hits = 0
    inline_scores = 0
    inline_score_seconds = 0.0
    with span("score"):
        for unit in units:
            gen = generations[unit.key]
            if isinstance(gen, FailedGeneration):
                continue
            skey = unit_skeys[unit.uid]
            score = cached_scores.get(skey)
            if score is not None:
                score_hits += 1
            else:
                score = computed_scores.get(skey)
                if score is None:
                    handle = pool_jobs.get(skey)
                    if handle is not None:
                        score = handle.result()
                    else:
                        score_started = time.perf_counter()
                        score = unit.scorer(gen.completion, unit.target)
                        inline_score_seconds += time.perf_counter() - score_started
                        inline_scores += 1
                    score_cache.put(skey, score)
                    computed_scores[skey] = score
                    scores_computed += 1
                else:
                    score_hits += 1
            results[unit.uid] = UnitResult(uid=unit.uid, generation=gen, score=score)

    if adaptive is not None:
        # feed the cost model: inline scoring wall time (pooled scores
        # overlap generation, so only inline computes carry a clean
        # per-unit cost) plus this run's per-unit generation cost
        adaptive.observe_run(
            scores_computed=inline_scores,
            score_seconds=inline_score_seconds,
            generated=len(ok_units),
            generation_seconds=generation_seconds,
        )

    read_lru_hits = read_lru_misses = bytes_read = 0
    if reads_before is not None:
        reads_after = read_stats_fn()
        read_lru_hits = reads_after["read_lru_hits"] - reads_before["read_lru_hits"]
        read_lru_misses = (
            reads_after["read_lru_misses"] - reads_before["read_lru_misses"]
        )
        bytes_read = reads_after["bytes_read"] - reads_before["bytes_read"]

    if score_backend is not None:
        score_workers = getattr(score_backend, "max_workers", 0)
    elif adaptive is not None:
        score_workers = adaptive.last_workers  # 0: the run scored inline
    else:
        score_workers = 0

    unique_keys = len(generations)
    profile = None
    if profiler is not None:
        profile = profiler.snapshot().subtract(profile_before)
    # seal the run's distributed trace (if any) before stats are frozen,
    # so the trace id travels with the stats and the span set is complete
    trace = _finish_trace() if _finish_trace is not None else None
    wall_seconds = time.perf_counter() - started
    stats = RunStats(
        total_units=len(units),
        generated=len(ok_units),
        cache_hits=cache_hits,
        deduplicated=len(units) - unique_keys,
        scores_computed=scores_computed,
        score_hits=score_hits,
        generation_seconds=generation_seconds,
        profile=profile,
        score_workers=score_workers,
        read_lru_hits=read_lru_hits,
        read_lru_misses=read_lru_misses,
        bytes_read=bytes_read,
        units_failed=len(failures),
        units_retried=fault_state.units_retried if fault_state is not None else 0,
        retry_seconds=fault_state.retry_seconds if fault_state is not None else 0.0,
        trace_id=trace.trace_id if trace is not None else None,
    )
    registry = active_registry()
    if registry is not None:
        _publish_run_metrics(registry, plan, stats)
    manifest = None
    if store is not None:
        manifest = store.record_run(
            plan=plan,
            stats=stats,
            executor=executor,
            scheduler=scheduler,
            cache=cache,
            started_unix=started_unix,
            wall_seconds=wall_seconds,
            failures=tuple(failures.values()),
            resumed_from=resume_from,
            trace=trace.as_dict() if trace is not None else None,
            metrics=registry.snapshot() if registry is not None else None,
        )
    return RunResult(
        plan=plan,
        results=results,
        stats=stats,
        manifest=manifest,
        failures=failures,
        on_failure=faults.on_failure if faults is not None else "raise",
    )
