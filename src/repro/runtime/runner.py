"""The runtime entry point: plan → (cache, dedup) → schedule → execute.

:func:`run` is the single funnel every evaluation in the repository goes
through.  It looks each work unit up in the result cache, deduplicates
identical generations within the run, hands only the genuinely new units
— in the dispatch order the scheduler picks — to the executor, scores every unit against its own target behind a
:class:`~repro.runtime.cache.ScoreCache` (identical (generation, target,
scorer) triples are scored once), and reassembles the plan's evaluation
results.  :class:`RunStats` records how much work the model layer *and*
the metric layer actually did, which is what the cache and scaling tests
assert on.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Mapping

from repro.core.task import EvalResult
from repro.errors import HarnessError

if TYPE_CHECKING:  # repro.persist builds on repro.runtime, not vice versa
    from repro.persist import RunManifest, RunStore

from repro.runtime.cache import ResultCache, ScoreCache
from repro.runtime.executors import Executor, SerialExecutor
from repro.runtime.plan import EvalSpec, Plan
from repro.runtime.schedule import PlanOrderScheduler, Scheduler
from repro.runtime.units import Generation, UnitResult, WorkUnit


def score_key(unit: WorkUnit, target_hash: str) -> Hashable:
    """Memoization key for one unit's score.

    (generation key, target hash, scorer fingerprint): the generation
    key pins the completion, the target hash pins what it is compared
    against, and the scorer fingerprint pins *how* — two tasks sharing
    a prompt and target but scoring differently never collide.  Scorers
    may expose a ``fingerprint`` attribute; otherwise the scorer object
    itself is the fingerprint (the key's reference keeps it alive, so
    its identity cannot be recycled while cached).  Unhashable
    fingerprint-less scorers fall back to ``id()`` — such a scorer must
    outlive any :class:`~repro.runtime.cache.ScoreCache` shared across
    runs.
    """
    scorer: Callable = unit.scorer
    fingerprint = getattr(scorer, "fingerprint", None)
    if fingerprint is not None:
        try:
            hash(fingerprint)
        except TypeError:
            fingerprint = None  # unusable fingerprint: key on the scorer itself
    if fingerprint is None:
        try:
            hash(scorer)
            fingerprint = scorer
        except TypeError:
            fingerprint = id(scorer)
    return (unit.key, target_hash, fingerprint)


@dataclass(frozen=True)
class RunStats:
    """How one run's units were satisfied."""

    total_units: int
    generated: int  # units that reached the executor (new model calls)
    cache_hits: int  # units satisfied from the result cache
    deduplicated: int  # units coalesced onto an identical in-run generation
    scores_computed: int = 0  # scorer invocations (score-cache misses)
    score_hits: int = 0  # units whose score came from the score cache
    generation_seconds: float = 0.0  # summed provider wall-clock of new calls

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_units if self.total_units else 0.0


@dataclass
class RunResult:
    """Executed plan: per-unit results plus reassembly helpers."""

    plan: Plan
    results: Mapping[str, UnitResult]
    stats: RunStats
    manifest: "RunManifest | None" = None  # recorded when a store was used

    def eval_result(self, spec: EvalSpec) -> EvalResult:
        """The :class:`EvalResult` for one ``add_eval`` handle."""
        return spec.assemble(self.results)

    def __getitem__(self, uid: str) -> UnitResult:
        return self.results[uid]


def run(
    plan: Plan,
    *,
    executor: Executor | None = None,
    cache: ResultCache | None = None,
    score_cache: ScoreCache | None = None,
    scheduler: Scheduler | None = None,
    store: "RunStore | None" = None,
) -> RunResult:
    """Execute every unit of ``plan`` and score it against its target.

    Results are independent of the executor *and* scheduler choice:
    seeds live inside the units, and generations are keyed by content,
    so serial, threaded, MPI-shard, async and batched execution (in any
    dispatch order, with any mix of cold/warm cache) produce
    bit-identical output.

    ``scheduler`` picks the dispatch order of the units that miss the
    cache (default: plan order); a scheduler exposing ``observe`` — the
    :class:`~repro.runtime.schedule.AdaptiveScheduler` — is fed each
    fresh generation's measured duration, so sharing one across runs
    trains its cost model online.  ``score_cache`` memoizes scores
    across runs; when omitted, a fresh per-run cache still collapses the
    metric work of deduplicated units.

    ``store`` plugs in a durable :class:`~repro.persist.RunStore`: unless
    overridden by an explicit ``cache``/``score_cache``, generations and
    scores are read from and written through to disk (shared with every
    process pointed at the same directory), and the run is recorded as a
    :class:`~repro.persist.RunManifest` — so an interrupted or repeated
    sweep re-generates only the units the store has never seen, and
    ``RunResult.manifest`` documents exactly how each run was satisfied.
    """
    started_unix = time.time()
    started = time.perf_counter()
    if store is not None:
        if cache is None:
            cache = store.result_cache
        if score_cache is None:
            score_cache = store.score_cache()
    executor = executor or SerialExecutor()
    scheduler = scheduler if scheduler is not None else PlanOrderScheduler()
    score_cache = score_cache if score_cache is not None else ScoreCache()
    units = plan.units

    generations: dict[str, Generation] = {}
    pending = []  # first unit per generation key that missed the cache
    cache_hits = 0
    for unit in units:
        if unit.key in generations:
            continue
        hit = cache.get(unit.key) if cache is not None else None
        if hit is not None:
            generations[unit.key] = hit
            cache_hits += 1
        else:
            generations[unit.key] = None  # claimed; filled after execution
            pending.append(unit)

    generation_seconds = 0.0
    if pending:
        ordered = scheduler.order(pending)
        if len(ordered) != len(pending) or {u.uid for u in ordered} != {
            u.uid for u in pending
        }:
            raise HarnessError(
                f"scheduler {scheduler!r} must return a permutation of the "
                f"pending units ({len(pending)} in, {len(ordered)} out)"
            )
        produced = executor.execute(ordered)
        missing = [u.uid for u in pending if u.key not in produced]
        if missing:
            raise HarnessError(
                f"executor {executor!r} returned no generation for units {missing}"
            )
        generations.update(produced)
        observe = getattr(scheduler, "observe", None)
        for unit in pending:
            gen = produced[unit.key]
            generation_seconds += gen.elapsed_s
            if observe is not None:
                observe(unit, gen.elapsed_s)
        if cache is not None:
            put_many = getattr(cache, "put_many", None)
            if put_many is not None:
                # one lock acquisition / append batch for backends that
                # support it (in-memory, disk); semantics identical
                put_many([produced[unit.key] for unit in pending])
            else:
                for unit in pending:
                    cache.put(produced[unit.key])

    results: dict[str, UnitResult] = {}
    target_hashes: dict[str, str] = {}  # per-run memo of target digests
    scores_computed = score_hits = 0
    for unit in units:
        gen = generations[unit.key]
        target_hash = target_hashes.get(unit.target)
        if target_hash is None:
            target_hash = target_hashes[unit.target] = hashlib.sha256(
                unit.target.encode("utf-8")
            ).hexdigest()
        skey = score_key(unit, target_hash)
        score = score_cache.get(skey)
        if score is None:
            score = unit.scorer(gen.completion, unit.target)
            score_cache.put(skey, score)
            scores_computed += 1
        else:
            score_hits += 1
        results[unit.uid] = UnitResult(uid=unit.uid, generation=gen, score=score)

    unique_keys = len(generations)
    stats = RunStats(
        total_units=len(units),
        generated=len(pending),
        cache_hits=cache_hits,
        deduplicated=len(units) - unique_keys,
        scores_computed=scores_computed,
        score_hits=score_hits,
        generation_seconds=generation_seconds,
    )
    manifest = None
    if store is not None:
        manifest = store.record_run(
            plan=plan,
            stats=stats,
            executor=executor,
            scheduler=scheduler,
            cache=cache,
            started_unix=started_unix,
            wall_seconds=time.perf_counter() - started,
        )
    return RunResult(plan=plan, results=results, stats=stats, manifest=manifest)
