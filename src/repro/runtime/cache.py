"""Content-addressed result cache for generations.

Keys come from :func:`repro.runtime.units.generation_key` — (prompt hash,
model, generate config, seed) — so a hit is guaranteed to be the exact
completion the model would have produced, and repeated sweeps (the
Overall rows, the sensitivity figures re-running the ``original``
variant, warm benchmark reruns) skip the model layer entirely.

Two backends:

* :class:`InMemoryResultCache` — a thread-safe dict, scoped to the
  process; the default choice inside one script run;
* :class:`FilesystemResultCache` — stores each generation as one entry
  of a :class:`repro.store.filesystem.SimFilesystem` namespace, so a
  cache can share the simulated storage substrate with workflow runs
  (and several experiments can share one namespace).

:class:`ScoreCache` sits on the other side of the executor: it memoizes
*scores* by (generation key, target hash, scorer fingerprint) so cache
hits and deduplicated units skip the metric work too.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable, Protocol, runtime_checkable

from repro.errors import HarnessError
from repro.store.filesystem import SimFilesystem

from repro.runtime.units import Generation


@runtime_checkable
class ResultCache(Protocol):
    """What a cache backend must implement."""

    def get(self, key: str) -> Generation | None:  # pragma: no cover - protocol
        ...

    def put(self, generation: Generation) -> None:  # pragma: no cover - protocol
        ...


class InMemoryResultCache:
    """Thread-safe process-local cache."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, Generation] = {}

    def get(self, key: str) -> Generation | None:
        with self._lock:
            gen = self._entries.get(key)
        return gen.as_cached() if gen is not None else None

    def put(self, generation: Generation) -> None:
        with self._lock:
            self._entries[generation.key] = generation

    def put_many(self, generations: Iterable[Generation]) -> None:
        with self._lock:
            for gen in generations:
                self._entries[gen.key] = gen

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemoryResultCache(entries={len(self)})"


class FilesystemResultCache:
    """Cache backed by a simulated filesystem namespace.

    Each generation is stored as one "file" under ``prefix/<key>``; the
    namespace's own locking makes lookups and inserts atomic.  Pass a
    private :class:`SimFilesystem` for isolation, or share one with
    other components (the default process-wide namespace via
    :func:`repro.store.filesystem.default_filesystem`).
    """

    def __init__(
        self, fs: SimFilesystem | None = None, *, prefix: str = "resultcache"
    ) -> None:
        self._fs = fs if fs is not None else SimFilesystem()
        self._prefix = prefix

    @property
    def fs(self) -> SimFilesystem:
        return self._fs

    def _path(self, key: str) -> str:
        return f"{self._prefix}/{key}"

    def get(self, key: str) -> Generation | None:
        path = self._path(key)
        if not self._fs.exists(path):
            return None
        gen: Generation = self._fs.open(path)
        return gen.as_cached()

    def put(self, generation: Generation) -> None:
        self._fs.create(self._path(generation.key), generation)

    def __len__(self) -> int:
        return sum(1 for name in self._fs if name.startswith(f"{self._prefix}/"))

    def __contains__(self, key: str) -> bool:
        return self._fs.exists(self._path(key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FilesystemResultCache(prefix={self._prefix!r}, entries={len(self)})"


class ScoreCache:
    """Bounded LRU memo of unit scores.

    Keyed by (generation key, target hash, scorer fingerprint) — see
    :func:`repro.runtime.runner.score_key` — so deduplicated units and
    warm-result-cache reruns never re-score an identical
    (completion, target) pair.  A fresh per-run instance is created by
    :func:`repro.runtime.runner.run` when none is passed; hand one cache
    to several runs to keep scores warm across a multi-plan sweep.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise HarnessError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def get(self, key: Hashable) -> object | None:
        with self._lock:
            score = self._entries.get(key)
            if score is not None:
                self._entries.move_to_end(key)
        return score

    def put(self, key: Hashable, score: object) -> None:
        with self._lock:
            self._entries[key] = score
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScoreCache(entries={len(self)}, maxsize={self.maxsize})"
