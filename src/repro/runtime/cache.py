"""Content-addressed result cache for generations.

Keys come from :func:`repro.runtime.units.generation_key` — (prompt hash,
model, generate config, seed) — so a hit is guaranteed to be the exact
completion the model would have produced, and repeated sweeps (the
Overall rows, the sensitivity figures re-running the ``original``
variant, warm benchmark reruns) skip the model layer entirely.

Three backends:

* :class:`InMemoryResultCache` — a thread-safe dict, scoped to the
  process; the default choice inside one script run;
* :class:`FilesystemResultCache` — stores each generation as one entry
  of a :class:`repro.store.filesystem.SimFilesystem` namespace, so a
  cache can share the simulated storage substrate with workflow runs
  (and several experiments can share one namespace);
* :class:`repro.persist.DiskResultCache` — the durable backend: entries
  live in an on-disk :class:`~repro.persist.RunStore` shared between
  processes (see :mod:`repro.persist`).

All three expose the same introspection surface (``__len__`` and
``stats()``; see :class:`ResultCache`), so harness code and tests can
treat any backend interchangeably.

:class:`ScoreCache` sits on the other side of the executor: it memoizes
*scores* by (generation key, target hash, scorer fingerprint) so cache
hits and deduplicated units skip the metric work too.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable, Protocol, runtime_checkable

from repro.errors import HarnessError
from repro.stats import stats_dict
from repro.store.filesystem import SimFilesystem

from repro.runtime.units import Generation


@runtime_checkable
class ResultCache(Protocol):
    """What a cache backend must implement.

    The contract, shared by all three shipped backends (in-memory,
    sim-filesystem, on-disk):

    * ``get(key)`` — the cached :class:`Generation` for one content key
      (from :func:`repro.runtime.units.generation_key`), flagged via
      :meth:`Generation.as_cached`, or ``None`` on a miss.  A ``get``
      must never invent entries: a hit is always the exact completion
      the model would have produced for that key.
    * ``put(generation)`` — store one generation under its own key;
      last-writer-wins on duplicates (all writers hold identical
      content for a given key, so the race is benign).
    * ``__len__()`` — number of distinct keys currently cached.
    * ``stats()`` — introspection dict in the unified ``repro.stats``
      schema (``schema``/``kind`` markers, kind ``"result_cache"``) with
      at least ``backend`` (str),
      ``entries``, ``hits``, ``misses`` and ``puts`` counters, plus the
      read-path counters ``read_lru_hits``, ``read_lru_misses`` and
      ``bytes_read`` (how many record reads the backing storage served
      from its decoded-payload LRU vs. from disk, and how many record
      bytes were read; identically zero for backends with no backing
      storage), so tests and operators can ask any backend how it has
      been used.

    Backends may additionally provide ``put_many(generations)`` — the
    runner batches its post-execution writes through it when present
    (one lock acquisition / one disk append instead of N) — and
    ``get_many(keys)`` returning ``{key: Generation}`` for the present
    subset, which the runner uses to resolve a whole plan's lookups in
    one batch (the disk backend sorts the reads by file offset).
    """

    def get(self, key: str) -> Generation | None:  # pragma: no cover - protocol
        ...

    def put(self, generation: Generation) -> None:  # pragma: no cover - protocol
        ...

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...

    def stats(self) -> dict[str, int | str]:  # pragma: no cover - protocol
        ...


class InMemoryResultCache:
    """Thread-safe process-local cache."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, Generation] = {}
        self._hits = 0
        self._misses = 0
        self._puts = 0

    def get(self, key: str) -> Generation | None:
        with self._lock:
            gen = self._entries.get(key)
            if gen is None:
                self._misses += 1
            else:
                self._hits += 1
        return gen.as_cached() if gen is not None else None

    def get_many(self, keys: Iterable[str]) -> dict[str, Generation]:
        """Batched lookup: one lock acquisition for a whole plan."""
        out: dict[str, Generation] = {}
        with self._lock:
            for key in keys:
                gen = self._entries.get(key)
                if gen is None:
                    self._misses += 1
                else:
                    self._hits += 1
                    out[key] = gen
        return {key: gen.as_cached() for key, gen in out.items()}

    def put(self, generation: Generation) -> None:
        with self._lock:
            self._entries[generation.key] = generation
            self._puts += 1

    def put_many(self, generations: Iterable[Generation]) -> None:
        with self._lock:
            for gen in generations:
                self._entries[gen.key] = gen
                self._puts += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int | str]:
        with self._lock:
            return stats_dict(
                "result_cache",
                backend="memory",
                entries=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                # no backing storage: the read path never leaves the dict
                read_lru_hits=0,
                read_lru_misses=0,
                bytes_read=0,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemoryResultCache(entries={len(self)})"


class FilesystemResultCache:
    """Cache backed by a simulated filesystem namespace.

    Each generation is stored as one "file" under ``prefix/<key>``; the
    namespace's own locking makes lookups and inserts atomic.  Pass a
    private :class:`SimFilesystem` for isolation, or share one with
    other components (the default process-wide namespace via
    :func:`repro.store.filesystem.default_filesystem`).
    """

    def __init__(
        self, fs: SimFilesystem | None = None, *, prefix: str = "resultcache"
    ) -> None:
        self._fs = fs if fs is not None else SimFilesystem()
        self._prefix = prefix
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0

    @property
    def fs(self) -> SimFilesystem:
        return self._fs

    def _path(self, key: str) -> str:
        return f"{self._prefix}/{key}"

    def get(self, key: str) -> Generation | None:
        path = self._path(key)
        if not self._fs.exists(path):
            with self._lock:
                self._misses += 1
            return None
        gen: Generation = self._fs.open(path)
        with self._lock:
            self._hits += 1
        return gen.as_cached()

    def put(self, generation: Generation) -> None:
        self._fs.create(self._path(generation.key), generation)
        with self._lock:
            self._puts += 1

    def __len__(self) -> int:
        return sum(1 for name in self._fs if name.startswith(f"{self._prefix}/"))

    def __contains__(self, key: str) -> bool:
        return self._fs.exists(self._path(key))

    def stats(self) -> dict[str, int | str]:
        with self._lock:
            hits, misses, puts = self._hits, self._misses, self._puts
        return stats_dict(
            "result_cache",
            backend="sim-fs",
            entries=len(self),
            hits=hits,
            misses=misses,
            puts=puts,
            # simulated filesystem: entries are held as objects, no byte I/O
            read_lru_hits=0,
            read_lru_misses=0,
            bytes_read=0,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FilesystemResultCache(prefix={self._prefix!r}, entries={len(self)})"


class ScoreCache:
    """Bounded LRU memo of unit scores.

    Keyed by (generation key, target hash, scorer fingerprint) — see
    :func:`repro.runtime.runner.score_key` — so deduplicated units and
    warm-result-cache reruns never re-score an identical
    (completion, target) pair.  A fresh per-run instance is created by
    :func:`repro.runtime.runner.run` when none is passed; hand one cache
    to several runs to keep scores warm across a multi-plan sweep.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise HarnessError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def get(self, key: Hashable) -> object | None:
        with self._lock:
            score = self._entries.get(key)
            if score is not None:
                self._entries.move_to_end(key)
        return score

    def put(self, key: Hashable, score: object) -> None:
        with self._lock:
            self._entries[key] = score
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScoreCache(entries={len(self)}, maxsize={self.maxsize})"
