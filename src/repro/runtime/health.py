"""Circuit breakers: per-target health tracking with typed state metrics.

A :class:`HealthTracker` is one target's (a store replica's, a model
provider's) circuit breaker.  It watches a rolling window of recent
call outcomes and moves through the classic three states:

* **closed** — healthy; every call is allowed.  Outcomes feed the
  rolling window, and when the windowed error rate crosses
  ``failure_threshold`` (with at least ``min_samples`` observations)
  the breaker trips open.
* **open** — failing; calls are refused without being attempted
  (callers see :class:`~repro.errors.BreakerOpenError` or route around
  the target).  After ``open_for_s`` of cooldown the next
  :meth:`allow` transitions to half-open.
* **half-open** — probing; up to ``half_open_probes`` calls are let
  through.  A success closes the breaker (the target *rejoined*); a
  failure re-opens it for another cooldown.

Timing comes from an injectable ``clock`` so tests drive transitions
deterministically, and every transition is mirrored into the ambient
:class:`~repro.obs.MetricsRegistry` (when one is installed) as a typed
state gauge plus a transition counter — the breaker fleet is visible on
the same Prometheus surface as every other runtime metric.

:class:`BreakerRegistry` is the fleet: a lazily populated name →
tracker map with shared defaults, handed to
:class:`~repro.serve.replicated.ReplicatedStoreClient` (one tracker per
replica), to :class:`~repro.runtime.faults.FaultPolicy` (one tracker
per model), and to
:class:`~repro.runtime.schedule.AdaptiveScheduler` (deprioritize units
whose model's breaker is open).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

from repro.errors import BreakerOpenError, HarnessError

#: Breaker states, in the order of the typed state gauge's values.
BREAKER_STATES = ("closed", "open", "half-open")

#: ``repro_breaker_state`` gauge value per state.
STATE_VALUES = {state: value for value, state in enumerate(BREAKER_STATES)}


def _emit_state(target: str, state: str) -> None:
    """Mirror one transition into the ambient metrics registry, if any."""
    from repro.obs import active_registry

    registry = active_registry()
    if registry is None:
        return
    registry.gauge(
        "repro_breaker_state",
        "circuit-breaker state per target (0=closed 1=open 2=half-open)",
        ("target",),
    ).set(STATE_VALUES[state], target=target)
    registry.counter(
        "repro_breaker_transitions_total",
        "circuit-breaker transitions per target and destination state",
        ("target", "state"),
    ).inc(target=target, state=state)


class HealthTracker:
    """One target's circuit breaker over a rolling outcome window.

    Thread-safe; all methods may be called from arbitrary worker
    threads.  ``clock`` defaults to ``time.monotonic`` and is the only
    time source, so tests inject a fake clock and step through
    open → half-open → closed without sleeping.
    """

    def __init__(
        self,
        target: str,
        *,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_samples: int = 3,
        open_for_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window < 1:
            raise HarnessError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise HarnessError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_samples < 1:
            raise HarnessError(f"min_samples must be >= 1, got {min_samples}")
        if open_for_s < 0:
            raise HarnessError(f"open_for_s must be >= 0, got {open_for_s}")
        if half_open_probes < 1:
            raise HarnessError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.target = target
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.open_for_s = open_for_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._mu = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = "closed"
        self._opened_at = 0.0
        self._probes_left = 0
        self.opened_total = 0  # times the breaker tripped open
        self.rejoined_total = 0  # times a half-open probe closed it

    # -- state inspection ----------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, with the time-based open → half-open edge applied."""
        with self._mu:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.open_for_s
        ):
            self._transition("half-open")
            self._probes_left = self.half_open_probes
        return self._state

    @property
    def is_open(self) -> bool:
        """True while calls are being refused (open, cooldown not elapsed)."""
        return self.state == "open"

    def error_rate(self) -> float:
        with self._mu:
            if not self._outcomes:
                return 0.0
            return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def describe(self) -> dict[str, Any]:
        with self._mu:
            state = self._state_locked()
            outcomes = list(self._outcomes)
        failures = sum(1 for ok in outcomes if not ok)
        return {
            "target": self.target,
            "state": state,
            "window": len(outcomes),
            "error_rate": failures / len(outcomes) if outcomes else 0.0,
            "opened_total": self.opened_total,
            "rejoined_total": self.rejoined_total,
        }

    # -- the breaker protocol ------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open grants probe slots."""
        with self._mu:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probes_left > 0:
                self._probes_left -= 1
                return True
            return False

    def check(self) -> None:
        """:meth:`allow` as an exception: raise when the call is refused."""
        if not self.allow():
            raise BreakerOpenError(
                f"breaker for {self.target!r} is {self.state}; call refused"
            )

    def record_success(self) -> None:
        with self._mu:
            state = self._state_locked()
            if state == "half-open":
                # the target rejoined: forget the bad history entirely
                self._outcomes.clear()
                self.rejoined_total += 1
                self._transition("closed")
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._mu:
            state = self._state_locked()
            if state == "half-open":
                # the probe failed: back to cooldown
                self._open_locked()
                return
            self._outcomes.append(False)
            failures = sum(1 for ok in self._outcomes if not ok)
            if (
                len(self._outcomes) >= self.min_samples
                and failures / len(self._outcomes) >= self.failure_threshold
            ):
                self._open_locked()

    def force_open(self) -> None:
        """Trip the breaker regardless of the window (tests, operators)."""
        with self._mu:
            if self._state != "open":
                self._open_locked()
            else:
                self._opened_at = self._clock()

    def reset(self) -> None:
        """Back to a pristine closed breaker."""
        with self._mu:
            self._outcomes.clear()
            self._probes_left = 0
            if self._state != "closed":
                self._transition("closed")

    # -- internals -----------------------------------------------------------

    def _open_locked(self) -> None:
        self._opened_at = self._clock()
        self._probes_left = 0
        self.opened_total += 1
        self._transition("open")

    def _transition(self, state: str) -> None:
        self._state = state
        _emit_state(self.target, state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HealthTracker({self.target!r}, state={self.state!r})"


class BreakerRegistry:
    """A fleet of breakers sharing construction defaults.

    ``get(name)`` lazily creates (and thereafter returns) the named
    tracker, so call sites never coordinate creation.  Thread-safe.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic,
                 **defaults: Any) -> None:
        self._defaults = defaults
        self._clock = clock
        self._mu = threading.Lock()
        self._trackers: dict[str, HealthTracker] = {}

    def get(self, name: str) -> HealthTracker:
        with self._mu:
            tracker = self._trackers.get(name)
            if tracker is None:
                tracker = self._trackers[name] = HealthTracker(
                    name, clock=self._clock, **self._defaults
                )
            return tracker

    def peek(self, name: str) -> HealthTracker | None:
        """The named tracker if it exists, without creating it."""
        with self._mu:
            return self._trackers.get(name)

    def states(self) -> dict[str, str]:
        with self._mu:
            trackers = list(self._trackers.values())
        return {tracker.target: tracker.state for tracker in trackers}

    def snapshot(self) -> list[dict[str, Any]]:
        with self._mu:
            trackers = list(self._trackers.values())
        return [t.describe() for t in sorted(trackers, key=lambda t: t.target)]

    def __len__(self) -> int:
        with self._mu:
            return len(self._trackers)


class HealthTrackedProvider:
    """Wrap one model provider's calls behind a :class:`HealthTracker`.

    Implements the sync :class:`~repro.llm.api.ModelAPI` surface:
    ``generate`` (and ``generate_batch`` when the wrapped provider has
    one) is refused with :class:`~repro.errors.BreakerOpenError` while
    the breaker is open, and every real attempt's outcome feeds the
    window.  ``BreakerOpenError`` is retryable, so a
    :class:`~repro.runtime.faults.FaultPolicy`-armed run backs off and
    re-probes instead of aborting.
    """

    def __init__(self, provider: Any, tracker: HealthTracker) -> None:
        self.provider = provider
        self.tracker = tracker

    @property
    def name(self) -> str:
        return getattr(self.provider, "name", self.tracker.target)

    def _call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        self.tracker.check()
        try:
            result = fn(*args, **kwargs)
        except Exception as exc:
            if _counts_against_breaker(exc):
                self.tracker.record_failure()
            raise
        self.tracker.record_success()
        return result

    def generate(self, *args: Any, **kwargs: Any) -> Any:
        return self._call(self.provider.generate, *args, **kwargs)

    def generate_batch(self, *args: Any, **kwargs: Any) -> Any:
        return self._call(self.provider.generate_batch, *args, **kwargs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.provider, name)


def _counts_against_breaker(exc: BaseException) -> bool:
    """Only transient-shaped failures should trip a breaker.

    Deterministic failures (an unknown model name, a generation bug)
    would fail against a perfectly healthy endpoint; opening the
    breaker for them just blocks healthy traffic.  Mirrors
    :meth:`~repro.runtime.faults.RetryPolicy.is_retryable` plus plain
    ``OSError`` (socket-level faults), minus ``BreakerOpenError``
    itself (a refused call is not an observed failure).
    """
    from repro.runtime.faults import RetryPolicy

    if isinstance(exc, BreakerOpenError):
        return False
    return RetryPolicy().is_retryable(exc) or isinstance(exc, OSError)
