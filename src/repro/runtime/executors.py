"""Pluggable executors: how a batch of work units reaches the model layer.

All executors consume units whose seeds travel *inside* the unit
(``WorkUnit.config.seed``), so execution order is irrelevant and every
executor produces bit-identical generations:

* :class:`SerialExecutor` — the reference implementation, one call at a
  time in plan order (exactly what the hand-rolled loops used to do);
* :class:`ThreadedExecutor` — a ``concurrent.futures`` thread pool; the
  win is large for latency-bound providers (real API endpoints), modest
  for the CPU-bound offline simulator under the GIL;
* :class:`MpiShardExecutor` — shards units round-robin across simulated
  :mod:`repro.mpi` ranks and gathers generations at the root, the same
  SPMD decomposition a real-MPI deployment would use;
* :class:`AsyncExecutor` — an asyncio event loop multiplexing
  :class:`~repro.llm.api.AsyncModelAPI` calls under a bounded-concurrency
  semaphore, with deterministic retry/backoff for transient
  :class:`~repro.errors.ModelError`\\ s; sync providers are adapted via
  :func:`repro.llm.api.as_async` (thread offload), async-native ones run
  on the loop directly — the shape a real API backend wants;
* :class:`~repro.runtime.batching.BatchingExecutor` (see
  :mod:`repro.runtime.batching`) — groups units by model and issues one
  ``generate_batch`` call per group.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import re
import threading
import time
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import DeadlineExceededError, HarnessError, ModelError
from repro.llm.api import as_async, get_model
from repro.llm.types import ChatMessage
from repro.obs import active_tracer, span
from repro.runtime.faults import (
    FailedGeneration,
    RetryPolicy,
    active_faults,
)
from repro.runtime.units import Generation, WorkUnit

__all__ = [
    "generate_unit",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "MpiShardExecutor",
    "AsyncExecutor",
    "RetryPolicy",  # moved to repro.runtime.faults; re-exported for imports
]


def _generate_once(unit: WorkUnit) -> Generation:
    """One raw model call for one unit; no retry, no policy."""
    started = time.perf_counter()
    output = get_model(unit.model).generate(unit.prompt, unit.config)
    return Generation(
        key=unit.key,
        model=unit.model,
        completion=output.completion,
        usage=output.usage,
        elapsed_s=time.perf_counter() - started,
    )


def generate_unit(unit: WorkUnit) -> "Generation | FailedGeneration":
    """Run one unit's model call; pure function of the unit's content.

    The single funnel every sync executor goes through: when a
    :func:`~repro.runtime.faults.fault_scope` is active, the call runs
    under its :class:`~repro.runtime.faults.FaultPolicy` — deterministic
    retry/backoff, per-unit deadline, run-shared retry budget, and
    failure isolation (a quarantined unit comes back as a
    :class:`~repro.runtime.faults.FailedGeneration` instead of raising).
    Without a scope this is exactly the raw provider call it always was.

    Each call is wrapped in a ``span("unit")`` — per-unit latency
    visibility for every sync executor (serial, threaded, MPI-shard),
    retries included.  The constant span name keeps phase profiles
    compact; traces still record one identified span per unit.
    """
    with span("unit"):
        state = active_faults()
        if state is not None:
            return state.run_unit(unit, _generate_once)
        return _generate_once(unit)


@runtime_checkable
class Executor(Protocol):
    """What an execution backend must implement.

    ``execute`` receives units with pairwise-distinct generation keys
    (the runner deduplicates and consults the cache first) and returns
    one generation per key.
    """

    def execute(
        self, units: Sequence[WorkUnit]
    ) -> dict[str, Generation]:  # pragma: no cover - protocol
        ...


class SerialExecutor:
    """One generation at a time, in plan order (the determinism baseline)."""

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        return {unit.key: generate_unit(unit) for unit in units}

    def execute_iter(self, units: Sequence[WorkUnit]) -> Iterator[Generation]:
        """Yield each generation as it completes (still dispatch order).

        The streaming face of the executor: the runner feeds completed
        units straight into the scoring pipeline while later units are
        still generating, instead of waiting for the whole batch.
        """
        for unit in units:
            yield generate_unit(unit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadedExecutor:
    """Fan units out over a persistent thread pool.

    Suited to providers that block on I/O (network endpoints); the
    offline simulator is CPU-bound, where threads mostly help by
    overlapping its numpy sections.

    The pool is created lazily on the first ``execute`` and reused by
    every subsequent call, so multi-plan sweeps stop paying thread-pool
    startup and teardown per run.  Call :meth:`close` (or use the
    executor as a context manager) to release the worker threads; a
    closed executor transparently re-creates its pool on the next
    ``execute``, but *re-entering* a closed executor as a context
    manager raises :class:`~repro.errors.HarnessError` (the ``with``
    block would otherwise silently resurrect a pool the caller just
    tore down).
    """

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise HarnessError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-exec",
                )
                self._closed = False
            return self._pool

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        if not units:
            return {}
        generations = self._ensure_pool().map(generate_unit, units)
        return {gen.key: gen for gen in generations}

    def execute_iter(self, units: Sequence[WorkUnit]) -> Iterator[Generation]:
        """Yield generations in completion order as workers finish them.

        Completion order is nondeterministic but harmless: generations
        are keyed by content and reassembled in plan order, so streamed
        results are bit-identical to :meth:`execute`'s.
        """
        if not units:
            return
        pool = self._ensure_pool()
        futures = [pool.submit(generate_unit, unit) for unit in units]
        for future in concurrent.futures.as_completed(futures):
            yield future.result()

    def close(self) -> None:
        """Shut the pool down and join its worker threads (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadedExecutor":
        # entering an explicitly closed executor would silently resurrect
        # the pool the caller just paid to tear down — make the lifecycle
        # bug loud instead (plain execute() still reopens transparently)
        with self._lock:
            if self._closed:
                raise HarnessError(
                    "ThreadedExecutor was closed; create a new executor "
                    "instead of re-entering the closed one as a context "
                    "manager"
                )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedExecutor(max_workers={self.max_workers})"


class MpiShardExecutor:
    """Shard units across simulated MPI ranks; gather at the root.

    Each rank executes ``units[rank::nprocs]`` serially and the root
    merges the per-rank shards via ``comm.gather`` — the standard SPMD
    decomposition, runnable unchanged on a real communicator.
    """

    def __init__(self, nprocs: int = 4, *, timeout: float = 300.0) -> None:
        if nprocs <= 0:
            raise HarnessError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.timeout = timeout

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        if not units:
            return {}
        from repro.mpi.launcher import mpiexec

        units = list(units)

        def rank_main(comm):
            shard = units[comm.rank :: comm.size]
            local = {unit.key: generate_unit(unit) for unit in shard}
            shards = comm.gather(local, root=0)
            if comm.rank != 0:
                return {}
            merged: dict[str, Generation] = {}
            for part in shards:
                merged.update(part)
            return merged

        from repro.errors import CommunicatorError

        started = time.perf_counter()
        try:
            launch = mpiexec(
                rank_main,
                min(self.nprocs, len(units)),
                timeout=self.timeout,
                comm_timeout=self.timeout,
            )
        except CommunicatorError as exc:
            # a rank failure wraps the provider's exception; unwrap it so
            # all executors surface the same exception types.  A genuine
            # communicator timeout/deadlock has no cause: surface it as a
            # typed deadline error carrying the stuck rank and elapsed
            # wall clock instead of a bare re-raise with no context.
            if exc.__cause__ is not None:
                raise exc.__cause__
            match = re.search(r"mpi-rank-(\d+)", str(exc))
            raise DeadlineExceededError(
                f"MPI shard execution missed its {self.timeout}s deadline: "
                f"{exc}",
                elapsed_s=time.perf_counter() - started,
                deadline_s=self.timeout,
                rank=int(match.group(1)) if match else None,
            ) from exc
        return launch[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MpiShardExecutor(nprocs={self.nprocs})"


class AsyncExecutor:
    """Event-loop execution: many provider calls in flight at once.

    Each ``execute`` spins up an asyncio loop, resolves every unit's
    provider through :func:`repro.llm.api.as_async` (async-native
    providers run on the loop directly; sync ones are offloaded to
    worker threads by the default adapter) and gathers all calls under a
    semaphore of ``max_concurrency``.  Transient
    :class:`~repro.errors.ModelError`\\ s are retried per ``retry``.

    Concurrency here is a cheap integer, not a thread: raising it costs
    nothing for async-native providers, which is why a latency-bound
    sweep scales past what a same-sized thread pool gives.  Results
    remain bit-identical to :class:`SerialExecutor` — seeds travel
    inside units, so in-flight interleaving cannot reorder randomness.

    The adapter thread pool for sync providers is created lazily and
    persists across ``execute`` calls (the loop's own default executor
    is sized by CPU count and dies with each loop, which would both
    throttle the semaphore and pay thread startup per run); it follows
    the same lifecycle as :class:`ThreadedExecutor` — ``close()`` or the
    context manager releases it, plain ``execute`` reopens, re-entering
    a closed executor raises.
    """

    def __init__(
        self, max_concurrency: int = 8, *, retry: RetryPolicy | None = None
    ) -> None:
        if max_concurrency <= 0:
            raise HarnessError(
                f"max_concurrency must be positive, got {max_concurrency}"
            )
        self.max_concurrency = max_concurrency
        self.retry = retry if retry is not None else RetryPolicy()
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_concurrency,
                    thread_name_prefix="repro-async",
                )
                self._closed = False
            return self._pool

    def close(self) -> None:
        """Shut the adapter pool down and join its threads (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "AsyncExecutor":
        with self._lock:
            if self._closed:
                raise HarnessError(
                    "AsyncExecutor was closed; create a new executor "
                    "instead of re-entering the closed one as a context "
                    "manager"
                )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        if not units:
            return {}
        return asyncio.run(self._execute(list(units)))

    async def _execute(self, units: list[WorkUnit]) -> dict[str, Generation]:
        pool = self._ensure_pool()
        semaphore = asyncio.Semaphore(self.max_concurrency)
        state = active_faults()

        async def generate_once(unit: WorkUnit) -> Generation:
            provider = as_async(get_model(unit.model).provider, pool)
            messages = [ChatMessage.user(unit.prompt)]
            started = time.perf_counter()
            output = await provider.agenerate(messages, unit.config)
            return Generation(
                key=unit.key,
                model=unit.model,
                completion=output.completion,
                usage=output.usage,
                elapsed_s=time.perf_counter() - started,
            )

        async def one(unit: WorkUnit) -> "Generation | FailedGeneration":
            tracer = active_tracer()
            if tracer is None:
                return await one_inner(unit)
            # interleaved tasks share this thread, so the per-unit span
            # is folded post-hoc (record_span) instead of riding the
            # thread's span-nesting stack
            start_unix = time.time()
            t0 = time.perf_counter()
            gen = await one_inner(unit)
            tracer.record_span(
                "unit",
                start_unix=start_unix,
                duration_s=time.perf_counter() - t0,
            )
            return gen

        async def one_inner(unit: WorkUnit) -> "Generation | FailedGeneration":
            async with semaphore:
                if state is not None:
                    # the run's FaultPolicy owns retry/deadline/isolation;
                    # the executor's own RetryPolicy applies only outside
                    # a fault scope
                    return await state.run_unit_async(unit, generate_once)
                provider = as_async(get_model(unit.model).provider, pool)
                messages = [ChatMessage.user(unit.prompt)]
                started = time.perf_counter()
                output = await self._generate_with_retry(
                    provider, messages, unit
                )
                elapsed = time.perf_counter() - started
            return Generation(
                key=unit.key,
                model=unit.model,
                completion=output.completion,
                usage=output.usage,
                elapsed_s=elapsed,
            )

        generations = await asyncio.gather(*(one(unit) for unit in units))
        return {gen.key: gen for gen in generations}

    async def _generate_with_retry(self, provider, messages, unit: WorkUnit):
        attempt = 0
        while True:
            try:
                return await provider.agenerate(messages, unit.config)
            except ModelError as exc:
                attempt += 1
                if attempt >= self.retry.max_attempts or not self.retry.is_retryable(exc):
                    raise
                await asyncio.sleep(self.retry.delay(attempt - 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncExecutor(max_concurrency={self.max_concurrency}, "
            f"retry={self.retry})"
        )
