"""Pluggable executors: how a batch of work units reaches the model layer.

All executors consume units whose seeds travel *inside* the unit
(``WorkUnit.config.seed``), so execution order is irrelevant and every
executor produces bit-identical generations:

* :class:`SerialExecutor` — the reference implementation, one call at a
  time in plan order (exactly what the hand-rolled loops used to do);
* :class:`ThreadedExecutor` — a ``concurrent.futures`` thread pool; the
  win is large for latency-bound providers (real API endpoints), modest
  for the CPU-bound offline simulator under the GIL;
* :class:`MpiShardExecutor` — shards units round-robin across simulated
  :mod:`repro.mpi` ranks and gathers generations at the root, the same
  SPMD decomposition a real-MPI deployment would use.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import HarnessError
from repro.llm.api import get_model
from repro.runtime.units import Generation, WorkUnit


def generate_unit(unit: WorkUnit) -> Generation:
    """Run one unit's model call; pure function of the unit's content."""
    output = get_model(unit.model).generate(unit.prompt, unit.config)
    return Generation(
        key=unit.key,
        model=unit.model,
        completion=output.completion,
        usage=output.usage,
    )


@runtime_checkable
class Executor(Protocol):
    """What an execution backend must implement.

    ``execute`` receives units with pairwise-distinct generation keys
    (the runner deduplicates and consults the cache first) and returns
    one generation per key.
    """

    def execute(
        self, units: Sequence[WorkUnit]
    ) -> dict[str, Generation]:  # pragma: no cover - protocol
        ...


class SerialExecutor:
    """One generation at a time, in plan order (the determinism baseline)."""

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        return {unit.key: generate_unit(unit) for unit in units}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadedExecutor:
    """Fan units out over a persistent thread pool.

    Suited to providers that block on I/O (network endpoints); the
    offline simulator is CPU-bound, where threads mostly help by
    overlapping its numpy sections.

    The pool is created lazily on the first ``execute`` and reused by
    every subsequent call, so multi-plan sweeps stop paying thread-pool
    startup and teardown per run.  Call :meth:`close` (or use the
    executor as a context manager) to release the worker threads; a
    closed executor transparently re-creates its pool if used again.
    """

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers <= 0:
            raise HarnessError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-exec",
                )
            return self._pool

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        if not units:
            return {}
        generations = self._ensure_pool().map(generate_unit, units)
        return {gen.key: gen for gen in generations}

    def close(self) -> None:
        """Shut the pool down and join its worker threads (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedExecutor(max_workers={self.max_workers})"


class MpiShardExecutor:
    """Shard units across simulated MPI ranks; gather at the root.

    Each rank executes ``units[rank::nprocs]`` serially and the root
    merges the per-rank shards via ``comm.gather`` — the standard SPMD
    decomposition, runnable unchanged on a real communicator.
    """

    def __init__(self, nprocs: int = 4, *, timeout: float = 300.0) -> None:
        if nprocs <= 0:
            raise HarnessError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.timeout = timeout

    def execute(self, units: Sequence[WorkUnit]) -> dict[str, Generation]:
        if not units:
            return {}
        from repro.mpi.launcher import mpiexec

        units = list(units)

        def rank_main(comm):
            shard = units[comm.rank :: comm.size]
            local = {unit.key: generate_unit(unit) for unit in shard}
            shards = comm.gather(local, root=0)
            if comm.rank != 0:
                return {}
            merged: dict[str, Generation] = {}
            for part in shards:
                merged.update(part)
            return merged

        from repro.errors import CommunicatorError

        try:
            launch = mpiexec(
                rank_main,
                min(self.nprocs, len(units)),
                timeout=self.timeout,
                comm_timeout=self.timeout,
            )
        except CommunicatorError as exc:
            # a rank failure wraps the provider's exception; unwrap it so
            # all executors surface the same exception types (genuine
            # communicator timeouts/deadlocks have no cause and re-raise)
            if exc.__cause__ is not None:
                raise exc.__cause__
            raise
        return launch[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MpiShardExecutor(nprocs={self.nprocs})"
