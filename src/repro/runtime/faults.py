"""The unified fault policy: retries, deadlines, budgets, isolation.

Before this module, second chances existed only inside
:class:`~repro.runtime.executors.AsyncExecutor`; a transient provider
failure on the serial, threaded, MPI-shard or batched path aborted the
whole sweep.  :class:`FaultPolicy` centralizes every fault-handling knob
and :func:`fault_scope` threads it through *all* executors at once:
:func:`repro.runtime.executors.generate_unit` — the single funnel every
sync executor's model calls go through — consults the active
:class:`FaultState`, and the async executor awaits the same policy on
its event loop.  One policy object therefore gives every execution
backend the same deterministic exponential backoff, per-unit wall-clock
deadlines, a run-shared retry budget, and an ``on_failure`` disposition:

* ``"raise"`` — retry per policy, then propagate (the historical
  behavior, and the default);
* ``"isolate"`` — a unit that exhausts its chances is *quarantined*: the
  run completes, the unit's evaluations raise
  :class:`~repro.errors.UnitFailedError` on access, and the failure is
  recorded (in :class:`~repro.runtime.runner.RunStats`, on
  :class:`~repro.runtime.runner.RunResult`, and durably in the run
  manifest when a store is attached) so a later run against the same
  store re-executes exactly the quarantined units;
* ``"skip"`` — like ``"isolate"``, but assembly silently drops the
  failed epochs/samples instead of raising (partial tables).

Only *fault-shaped* exceptions are ever isolated — a
:class:`~repro.errors.ModelError` or an :class:`OSError`.  Anything
else (a scorer bug, a typo'd model name surfacing as
:class:`~repro.errors.UnknownModelError` is still a ``ModelError`` and
deterministic, so it is isolatable but never retried) propagates in
``raise`` mode and is quarantined otherwise; genuine programming errors
(``TypeError`` and friends) always propagate, isolation must not paper
over bugs.

Determinism: backoff is jitter-free, deadlines only convert would-be
retries into failures (a *successful* late sync result is kept — the
work is already done), and the retry budget is exhausted in completion
order; a fault-free run takes the same code path with or without a
policy attached, which is what the gated no-fault overhead bench pins.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Iterator

from repro.errors import (
    BreakerOpenError,
    CalibrationError,
    DeadlineExceededError,
    GenerationError,
    HarnessError,
    ModelError,
    UnknownModelError,
)
from repro.runtime.units import Generation, WorkUnit

ON_FAILURE_MODES = ("raise", "isolate", "skip")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff for transient provider failures.

    A call is retried when it raises a :class:`~repro.errors.ModelError`
    that is plausibly transient — rate limits, timeouts, 5xx-shaped
    failures a real endpoint emits.  Deterministic failures
    (:class:`~repro.errors.UnknownModelError`,
    :class:`~repro.errors.GenerationError`,
    :class:`~repro.errors.CalibrationError`) and non-model exceptions
    are never retried: they would fail identically every attempt.
    :class:`~repro.errors.DeadlineExceededError` is likewise final —
    the budget a deadline protects is already spent.

    Backoff is exponential (``base_delay * 2**attempt``, capped at
    ``max_delay``) and deliberately jitter-free so runs stay
    reproducible; spread load across clients by varying ``base_delay``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise HarnessError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise HarnessError("retry delays must be non-negative")

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, ModelError) and not isinstance(
            exc,
            (
                UnknownModelError,
                GenerationError,
                CalibrationError,
                DeadlineExceededError,
            ),
        )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * (2 ** attempt))


@dataclass(frozen=True)
class FaultPolicy:
    """Every fault-handling knob of one run, in one immutable object.

    * ``retry`` — per-unit retry/backoff schedule;
    * ``unit_deadline_s`` — wall-clock budget per unit across all of its
      attempts (``None`` = unbounded).  Sync attempts cannot be
      interrupted mid-call, so the deadline is enforced between
      attempts (a retry that would start or sleep past the deadline
      fails as :class:`~repro.errors.DeadlineExceededError` instead);
      async attempts are genuinely cancelled via ``asyncio.wait_for``;
    * ``retry_budget`` — maximum *total* retries across the whole run,
      shared by every unit (``None`` = unbounded).  A storm of transient
      failures degrades into isolation instead of retrying forever;
    * ``on_failure`` — what becomes of a unit that is out of chances:
      ``"raise"`` propagates, ``"isolate"`` quarantines it (accessing
      its evaluations raises :class:`~repro.errors.UnitFailedError`),
      ``"skip"`` quarantines and silently drops it from assembled
      results;
    * ``health`` — an optional
      :class:`~repro.runtime.health.BreakerRegistry`: every attempt's
      outcome feeds the unit's model's circuit breaker, and while that
      breaker is open, attempts are refused (a retryable
      :class:`~repro.errors.BreakerOpenError`) without touching the
      provider.  Hand the same registry to
      :class:`~repro.runtime.schedule.AdaptiveScheduler` for
      fault-aware ordering;
    * ``shared_budget`` — an optional cross-process retry budget (any
      object with ``try_acquire() -> bool``, e.g.
      :class:`~repro.serve.client.RemoteRetryBudget` backed by a
      store server's shared counter).  When set, it governs instead of
      the local ``retry_budget``; when it errors (the counter server is
      unreachable), the local budget takes back over — fail open, not
      stuck.
    """

    retry: RetryPolicy = RetryPolicy()
    unit_deadline_s: float | None = None
    retry_budget: int | None = None
    on_failure: str = "raise"
    health: Any = None
    shared_budget: Any = None

    def __post_init__(self) -> None:
        if self.on_failure not in ON_FAILURE_MODES:
            raise HarnessError(
                f"on_failure must be one of {ON_FAILURE_MODES}, "
                f"got {self.on_failure!r}"
            )
        if self.unit_deadline_s is not None and self.unit_deadline_s <= 0:
            raise HarnessError(
                f"unit_deadline_s must be positive, got {self.unit_deadline_s}"
            )
        if self.retry_budget is not None and self.retry_budget < 0:
            raise HarnessError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.health is not None and not hasattr(self.health, "get"):
            raise HarnessError(
                "health must be a BreakerRegistry-like object with .get(name)"
            )
        if self.shared_budget is not None and not hasattr(
            self.shared_budget, "try_acquire"
        ):
            raise HarnessError(
                "shared_budget must expose try_acquire() -> bool"
            )

    @property
    def isolating(self) -> bool:
        return self.on_failure != "raise"


@dataclass(frozen=True)
class UnitFailure:
    """The durable record of one quarantined unit.

    Everything a later session needs to triage without re-running: the
    unit and generation identity, the exception's type and message, how
    many attempts were spent, the wall clock they cost, and a stable
    digest of the traceback (so identical failure sites can be grouped
    without persisting full tracebacks into manifests).
    """

    uid: str
    key: str
    model: str
    error_type: str
    message: str
    attempts: int
    elapsed_s: float
    traceback_digest: str

    def describe(self) -> str:
        return (
            f"{self.uid}: {self.error_type} after {self.attempts} attempt(s) "
            f"in {self.elapsed_s:.2f}s [{self.traceback_digest}] — {self.message}"
        )


class FailedGeneration:
    """The executor-side carrier of one isolated failure.

    Flows through the same ``dict[key, ...]`` channel as
    :class:`~repro.runtime.units.Generation` (it has a ``key``), so no
    executor needs a second return path; the runner partitions it out,
    never caches it, and turns it into per-uid :class:`UnitFailure`
    records.
    """

    __slots__ = (
        "key", "model", "error_type", "message", "attempts",
        "elapsed_s", "traceback_digest",
    )

    def __init__(self, unit: WorkUnit, exc: BaseException,
                 attempts: int, elapsed_s: float) -> None:
        self.key = unit.key
        self.model = unit.model
        self.error_type = type(exc).__name__
        self.message = str(exc)
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.traceback_digest = traceback_digest(exc)

    def unit_failure(self, uid: str) -> UnitFailure:
        return UnitFailure(
            uid=uid,
            key=self.key,
            model=self.model,
            error_type=self.error_type,
            message=self.message,
            attempts=self.attempts,
            elapsed_s=self.elapsed_s,
            traceback_digest=self.traceback_digest,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailedGeneration({self.error_type} after {self.attempts} "
            f"attempt(s), key={self.key[:8]}…)"
        )


def traceback_digest(exc: BaseException) -> str:
    """A short stable digest of an exception's traceback.

    Frame filenames, line numbers and function names only — not the
    message — so the same failure *site* hashes identically across
    units and runs, and manifests stay small.
    """
    frames = "\n".join(
        f"{frame.filename}:{frame.lineno}:{frame.name}"
        for frame in traceback.extract_tb(exc.__traceback__)
    )
    body = f"{type(exc).__name__}\n{frames}"
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]


def _isolatable(exc: BaseException) -> bool:
    # fault-shaped: provider failures and I/O errors.  Programming
    # errors (TypeError, KeyError, …) must always propagate — a policy
    # that quarantines bugs hides them.
    return isinstance(exc, (ModelError, OSError))


class FaultState:
    """One run's live fault-handling state: counters plus the shared budget.

    Thread-safe: serial, threaded and MPI-shard execution all funnel
    through :meth:`run_unit` from arbitrary worker threads, and the
    async path awaits :meth:`run_unit_async` on its loop.  Install for
    the duration of an execution phase with :func:`fault_scope`.
    """

    def __init__(self, policy: FaultPolicy) -> None:
        self.policy = policy
        self._mu = threading.Lock()
        self._budget_left = policy.retry_budget  # None = unbounded
        self.retries = 0  # total retry attempts granted
        self.retry_seconds = 0.0  # failed-attempt time + backoff sleeps
        self._retried_uids: set[str] = set()
        self.budget_exhausted = False

    @property
    def units_retried(self) -> int:
        return len(self._retried_uids)

    def _acquire_retry(self, uid: str, cost_s: float) -> bool:
        """One retry token from the shared budget; False when spent."""
        # The cross-process budget does network I/O, so consult it
        # outside the lock.  None = no verdict (unset, or the counter
        # server was unreachable) → the local budget governs.
        shared = self.policy.shared_budget
        granted: bool | None = None
        if shared is not None:
            try:
                granted = bool(shared.try_acquire())
            except Exception:
                granted = None  # fail open to the local budget
        with self._mu:
            if granted is False:
                self.budget_exhausted = True
                return False
            if granted is None and self._budget_left is not None:
                if self._budget_left <= 0:
                    self.budget_exhausted = True
                    return False
                self._budget_left -= 1
            self.retries += 1
            self.retry_seconds += cost_s
            self._retried_uids.add(uid)
            return True

    def _tracker(self, unit: WorkUnit):
        """The unit's model's circuit breaker, when health tracking is on."""
        health = self.policy.health
        return health.get(unit.model) if health is not None else None

    @staticmethod
    def _observe(tracker, exc: BaseException | None) -> None:
        """Feed one real attempt's outcome into the model's breaker."""
        if tracker is None:
            return
        if exc is None:
            tracker.record_success()
            return
        from repro.runtime.health import _counts_against_breaker

        if _counts_against_breaker(exc):
            tracker.record_failure()

    def _note_sleep(self, seconds: float) -> None:
        with self._mu:
            self.retry_seconds += seconds

    # -- shared per-attempt bookkeeping --------------------------------------

    def _after_failed_attempt(
        self,
        unit: WorkUnit,
        exc: BaseException,
        attempt: int,
        started: float,
        attempt_elapsed: float,
    ) -> "float | FailedGeneration":
        """Decide one failed attempt's fate.

        Returns the backoff delay (seconds) when the unit may retry, or
        the terminal :class:`FailedGeneration` / raises, when it may
        not.  ``attempt`` is 1-based.
        """
        policy = self.policy
        retry = policy.retry
        elapsed = time.perf_counter() - started
        deadline = policy.unit_deadline_s
        if not retry.is_retryable(exc):
            return self._fail(unit, exc, attempt, elapsed)
        if attempt >= retry.max_attempts:
            return self._fail(unit, exc, attempt, elapsed)
        delay = retry.delay(attempt - 1)
        if deadline is not None and elapsed + delay >= deadline:
            timeout = DeadlineExceededError(
                f"unit {unit.uid} exceeded its {deadline}s deadline after "
                f"{attempt} attempt(s) ({elapsed:.2f}s elapsed)",
                elapsed_s=elapsed,
                deadline_s=deadline,
            )
            timeout.__cause__ = exc
            return self._fail(unit, timeout, attempt, elapsed)
        if not self._acquire_retry(unit.uid, attempt_elapsed):
            return self._fail(unit, exc, attempt, elapsed)
        return delay

    def _fail(
        self, unit: WorkUnit, exc: BaseException, attempts: int, elapsed: float
    ) -> FailedGeneration:
        if not self.policy.isolating or not _isolatable(exc):
            raise exc
        return FailedGeneration(unit, exc, attempts, elapsed)

    # -- sync path (serial / threaded / MPI-shard / batched fallback) --------

    def run_unit(
        self,
        unit: WorkUnit,
        generate_once: Callable[[WorkUnit], Generation],
    ) -> "Generation | FailedGeneration":
        """Drive one unit under the policy: retry, deadline, isolate."""
        started = time.perf_counter()
        tracker = self._tracker(unit)
        attempt = 0
        while True:
            attempt += 1
            attempt_started = time.perf_counter()
            try:
                if tracker is not None and not tracker.allow():
                    raise BreakerOpenError(
                        f"model {unit.model!r} breaker is "
                        f"{tracker.state}; attempt refused"
                    )
                result = generate_once(unit)
            except Exception as exc:
                self._observe(tracker, exc)
                attempt_elapsed = time.perf_counter() - attempt_started
                outcome = self._after_failed_attempt(
                    unit, exc, attempt, started, attempt_elapsed
                )
                if isinstance(outcome, FailedGeneration):
                    return outcome
                self._note_sleep(outcome)
                time.sleep(outcome)
            else:
                self._observe(tracker, None)
                return result

    # -- async path ----------------------------------------------------------

    async def run_unit_async(
        self,
        unit: WorkUnit,
        generate_once: Callable[[WorkUnit], Awaitable[Generation]],
    ) -> "Generation | FailedGeneration":
        """The same policy on an event loop; in-flight attempts that blow
        the deadline are genuinely cancelled via ``asyncio.wait_for``."""
        policy = self.policy
        started = time.perf_counter()
        tracker = self._tracker(unit)
        attempt = 0
        while True:
            attempt += 1
            attempt_started = time.perf_counter()
            try:
                if tracker is not None and not tracker.allow():
                    raise BreakerOpenError(
                        f"model {unit.model!r} breaker is "
                        f"{tracker.state}; attempt refused"
                    )
                deadline = policy.unit_deadline_s
                if deadline is not None:
                    remaining = deadline - (time.perf_counter() - started)
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            f"unit {unit.uid} exceeded its {deadline}s "
                            f"deadline after {attempt - 1} attempt(s)",
                            elapsed_s=time.perf_counter() - started,
                            deadline_s=deadline,
                        )
                    try:
                        result = await asyncio.wait_for(
                            generate_once(unit), timeout=remaining
                        )
                    except asyncio.TimeoutError:
                        raise DeadlineExceededError(
                            f"unit {unit.uid} exceeded its {deadline}s "
                            f"deadline mid-attempt {attempt}",
                            elapsed_s=time.perf_counter() - started,
                            deadline_s=deadline,
                        ) from None
                else:
                    result = await generate_once(unit)
            except Exception as exc:
                self._observe(tracker, exc)
                attempt_elapsed = time.perf_counter() - attempt_started
                outcome = self._after_failed_attempt(
                    unit, exc, attempt, started, attempt_elapsed
                )
                if isinstance(outcome, FailedGeneration):
                    return outcome
                self._note_sleep(outcome)
                await asyncio.sleep(outcome)
            else:
                self._observe(tracker, None)
                return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultState({self.policy!r}, retries={self.retries}, "
            f"units_retried={self.units_retried})"
        )


# -- the active scope --------------------------------------------------------
#
# A module-level global, not a threading.local: executors hand units to
# worker threads (ThreadedExecutor), simulated MPI rank threads and
# process-adjacent event loops, none of which inherit the installing
# thread's locals.  Mirrors repro.perf's active-profiler pattern.  One
# scope at a time: nested scopes raise rather than silently shadow.

_active: FaultState | None = None
_active_mu = threading.Lock()


def active_faults() -> FaultState | None:
    """The fault state installed by the innermost :func:`fault_scope`."""
    return _active


@contextlib.contextmanager
def fault_scope(state: FaultState) -> Iterator[FaultState]:
    """Install ``state`` as the process-wide active fault state."""
    global _active
    with _active_mu:
        if _active is not None:
            raise HarnessError(
                "a fault_scope is already active; concurrent runs with "
                "distinct FaultPolicys in one process are not supported"
            )
        _active = state
    try:
        yield state
    finally:
        with _active_mu:
            _active = None


def failure_payload(failure: UnitFailure) -> dict[str, Any]:
    """JSON-ready form of one failure (manifest persistence)."""
    return {
        "uid": failure.uid,
        "key": failure.key,
        "model": failure.model,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
        "elapsed_s": failure.elapsed_s,
        "traceback_digest": failure.traceback_digest,
    }


def failure_from_payload(payload: dict[str, Any]) -> UnitFailure:
    """Rebuild one :class:`UnitFailure` from its manifest payload."""
    try:
        return UnitFailure(
            uid=payload["uid"],
            key=payload["key"],
            model=payload["model"],
            error_type=payload["error_type"],
            message=payload["message"],
            attempts=int(payload["attempts"]),
            elapsed_s=float(payload["elapsed_s"]),
            traceback_digest=payload["traceback_digest"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise HarnessError(f"malformed unit-failure payload: {exc}") from None
