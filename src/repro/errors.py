"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch a single base class at harness boundaries while tests can assert on
precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A workflow configuration file is malformed or semantically invalid."""


class ValidationError(ReproError):
    """An artifact failed validation against a workflow-system surface."""


class WorkflowError(ReproError):
    """A workflow runtime failed during graph construction or execution."""


class CommunicatorError(ReproError):
    """Illegal use of the simulated MPI communicator."""


class StoreError(ReproError):
    """Illegal operation on the simulated filesystem / HDF5 / BP store."""


class PersistError(StoreError):
    """Illegal operation on the durable on-disk run store."""


class RecordCorruptError(PersistError):
    """A persisted record failed checksum or structural validation."""


class ModelError(ReproError):
    """A model provider failed to produce a response."""


class RemoteStoreError(StoreError, ModelError):
    """A networked run-store request failed after the client's retries.

    Deliberately *both* a :class:`StoreError` (it is a persistence
    failure: callers treating the remote store as storage catch it where
    they catch any store problem) and a :class:`ModelError` that is not
    one of the deterministic subclasses — so
    :meth:`repro.runtime.faults.RetryPolicy.is_retryable` classifies a
    transient network fault exactly like a transient provider fault, and
    a :class:`~repro.runtime.faults.FaultPolicy`-armed run retries /
    quarantines it instead of aborting.  The client's own reconnect loop
    uses the same :class:`~repro.runtime.faults.RetryPolicy` machinery
    before this is ever raised.
    """


class ServerOverloadedError(RemoteStoreError):
    """The store server refused a frame: too many in flight, or draining.

    Typed and *retryable*: admission control answers with this instead
    of dropping the connection, so a well-behaved client backs off and
    replays the batch (content addressing makes the replay safe) while
    the server finishes the work it already admitted.
    """


class BreakerOpenError(StoreError, ModelError):
    """A circuit breaker is open: the call was refused without being tried.

    Raised by :class:`~repro.runtime.health.HealthTracker`-guarded call
    sites (remote-store clients, model providers) while the target's
    rolling error rate keeps the breaker open.  Like
    :class:`RemoteStoreError` it is both a :class:`StoreError` and a
    retryable :class:`ModelError`: a
    :class:`~repro.runtime.faults.FaultPolicy`-armed run backs off and
    retries, by which time the breaker may have half-opened and let a
    probe through.
    """


class UnknownModelError(ModelError):
    """The requested model name is not registered."""


class GenerationError(ModelError):
    """The simulated generator could not satisfy the request."""


class CalibrationError(ModelError):
    """Bisection calibration failed to bracket the requested target score."""


class DeadlineExceededError(ModelError):
    """A generation (or an execution shard) blew its wall-clock deadline.

    Carries the measured ``elapsed_s``, the ``deadline_s`` that was
    exceeded, and — for sharded execution — the ``rank`` that was still
    running.  Never retried: the budget the deadline protects is already
    spent.
    """

    def __init__(
        self,
        message: str,
        *,
        elapsed_s: float = 0.0,
        deadline_s: float | None = None,
        rank: int | None = None,
    ) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        self.rank = rank


class HarnessError(ReproError):
    """Misuse of the evaluation harness (task/solver/scorer plumbing)."""


class UnitFailedError(HarnessError):
    """Results of a unit quarantined by the fault policy were accessed.

    Raised at assembly time (``RunResult.eval_result``) when an eval's
    unit set includes failures isolated by
    :class:`~repro.runtime.faults.FaultPolicy`; carries the
    :class:`~repro.runtime.faults.UnitFailure` records so callers can
    decide to resume, skip, or surface them.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


class MetricError(ReproError):
    """Invalid input to a similarity metric."""
