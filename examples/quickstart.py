"""Quickstart: evaluate one model on one experiment cell.

Runs the paper's workflow-configuration experiment for the Wilkins system
against the simulated o3 model (5 trials, temperature 0.2 / top_p 0.95 —
ignored by o3, exactly as in the paper), prints the BLEU/ChrF aggregate,
one generated artifact, and the validator's hallucination audit.

Usage:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.experiments import configuration_task
from repro.core.task import evaluate
from repro.workflows import get_system


def main() -> None:
    task = configuration_task("wilkins", variant="original")
    result = evaluate(task, "sim/o3", epochs=5)

    bleu = result.aggregate("bleu")
    chrf = result.aggregate("chrf")
    print("=== Workflow configuration: Wilkins x sim/o3 (5 trials) ===")
    print(f"BLEU {bleu.render()}   ChrF {chrf.render()}")
    print(f"(paper Table 1 reports BLEU 30.0±1.5, ChrF 29.1±1.0)")

    sample = result.samples[0]
    artifact = sample.scores[0].answer
    print("\n--- generated configuration (trial 0) ---")
    print(artifact)

    system = get_system("wilkins")
    report = system.validate_config(artifact)
    print("\n--- validator audit ---")
    print(report.render())
    hallucinated = sorted({d.symbol for d in report.hallucinations() if d.symbol})
    if hallucinated:
        print(f"hallucinated fields: {', '.join(hallucinated)}")


if __name__ == "__main__":
    main()
