"""Task-code translation study: semantics first, then LLM translations.

Part 1 establishes the *semantic* ground truth of the ADIOS2 ↔ Henson
translation pair: the same producer logic runs on both substrates and
yields identical per-step checksums (so a perfect translation preserves
behaviour, not just tokens).

Part 2 asks every simulated model to translate the annotated ADIOS2
producer to Henson (the paper's hardest direction), scores the result
with BLEU/ChrF, and audits hallucinated API calls — reproducing the
Table 4 analysis for all four models.

Usage:  python examples/translation_study.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.assets import annotated_producer
from repro.data import MODELS, TABLE3
from repro.llm import GenerateConfig, get_model
from repro.metrics import bleu, chrf
from repro.utils.text import strip_markdown_chatter
from repro.workflows.henson import HensonRuntime, Puppet, validate_task_code
from repro.workflows.henson import api as henson
from repro.store import SimFilesystem
from repro.workflows.adios2 import Adios, Mode, StepStatus

STEPS = 3


def make_data(step: int) -> np.ndarray:
    rng = np.random.default_rng(step)
    return rng.random(32)


def run_henson() -> list[float]:
    def producer():
        for t in range(STEPS):
            henson.henson_save_array("array", make_data(t))
            henson.henson_save_int("t", t)
            henson.henson_yield()

    def consumer():
        sums = []
        while henson.henson_active():
            sums.append(float(henson.henson_load_array("array").sum()))
            henson.henson_yield()
        return sums

    runtime = HensonRuntime(
        [Puppet("producer", producer, driver=True), Puppet("consumer", consumer)]
    )
    return runtime.run()["consumer"]


def run_adios2() -> list[float]:
    fs = SimFilesystem()
    ad = Adios(fs=fs)
    wio = ad.declare_io("SimulationOutput"); wio.set_engine("SST")
    rio = ad.declare_io("AnalysisInput"); rio.set_engine("SST")
    sums: list[float] = []

    def writer():
        var = wio.define_variable("array", dtype="float64")
        engine = wio.open("output.bp", Mode.WRITE)
        for t in range(STEPS):
            engine.begin_step()
            engine.put(var, make_data(t))
            engine.end_step()
        engine.close()

    def reader():
        engine = rio.open("output.bp", Mode.READ)
        while engine.begin_step() is StepStatus.OK:
            sums.append(float(np.sum(engine.get("array"))))
            engine.end_step()
        engine.close()

    thread = threading.Thread(target=reader)
    thread.start()
    writer()
    thread.join(10.0)
    return sums


def main() -> None:
    print("=== part 1: semantic equivalence of the translation pair ===")
    henson_sums = run_henson()
    adios_sums = run_adios2()
    print(f"henson per-step sums: {['%.4f' % s for s in henson_sums]}")
    print(f"adios2 per-step sums: {['%.4f' % s for s in adios_sums]}")
    assert np.allclose(henson_sums, adios_sums)
    print("substrates agree: a perfect translation preserves behaviour\n")

    print("=== part 2: LLM translations ADIOS2 -> Henson ===")
    source = annotated_producer("adios2")
    reference = annotated_producer("henson")
    prompt = (
        "Task codes are provided below for the ADIOS2 workflow system for a "
        "2-node workflow. Your task is to translate these codes to use the "
        f"Henson system.\n\n{source}"
    )
    for model_name in MODELS:
        model = get_model(f"sim/{model_name}")
        output = model.generate(prompt, GenerateConfig(seed=0))
        artifact = strip_markdown_chatter(output.completion)
        b = bleu(artifact, reference)
        c = chrf(artifact, reference)
        report = validate_task_code(artifact)
        flagged = sorted(
            {d.symbol for d in report.hallucinations()
             if d.symbol and d.symbol.startswith("henson")}
        )
        paper = TABLE3[(("adios2", "henson"), model_name)]
        print(f"{model_name:18s} BLEU {b:5.1f} (paper {paper.bleu:5.1f})  "
              f"ChrF {c:5.1f}  hallucinated: {flagged or 'none'}")


if __name__ == "__main__":
    main()
