"""Iterative error correction — the paper's §5 future-work direction, working.

For each simulated model: ask for a Wilkins configuration, validate it
against the real schema, feed the diagnostics (plus a known-good 2-node
example) back, and repeat until the config validates.  Prints the
hallucinated fields caught at each iteration and the final, executable
configuration.

Usage:  python examples/llm_repair_loop.py
"""

from __future__ import annotations

from repro.core.repair import RepairLoop
from repro.data import MODELS
from repro.data.prompts import get_template
from repro.workflows.wilkins import WilkinsRuntime, parse_wilkins_yaml


def main() -> None:
    request = get_template("configuration", "original").body.format(system="Wilkins")

    final_artifact = None
    for model in MODELS:
        print(f"=== sim/{model} ===")
        loop = RepairLoop(f"sim/{model}", "wilkins", max_iterations=4)
        outcome = loop.run(request)
        for attempt in outcome.attempts:
            flagged = sorted(
                {d.symbol for d in attempt.report.hallucinations() if d.symbol}
            )
            status = "VALID" if attempt.report.ok else f"invalid: {flagged}"
            print(f"  iteration {attempt.iteration}: {status}")
        print(f"  converged: {outcome.converged} "
              f"after {outcome.iterations} iteration(s)\n")
        if outcome.converged:
            final_artifact = outcome.final_artifact

    assert final_artifact is not None, "no model converged"
    print("=== final repaired configuration (last converged model) ===")
    print(final_artifact)

    # prove the repaired config actually runs
    import numpy as np

    config = parse_wilkins_yaml(final_artifact)

    def producer(comm, ctx):
        for step in range(2):
            if comm.rank == 0:
                for dset in ctx.out_dsets():
                    ctx.write(dset, np.full(4, step, dtype=float), step=step)

    def consumer(comm, ctx):
        return [
            (dset, len(list(ctx.steps(dset)))) for dset in ctx.in_dsets()
        ]

    library = {t.func: producer if not t.inports else consumer for t in config.tasks}
    results = WilkinsRuntime(config, library).run()
    print("\nexecuted repaired workflow:", results)


if __name__ == "__main__":
    main()
