"""Run the paper's 3-node workflow for real on the Wilkins substrate.

The exact YAML the evaluation uses as ground truth (one producer on 3
processes generating ``grid`` and ``particles``, two single-process
consumers) drives an actual in-situ execution: the producer's ranks
cooperate through the simulated MPI, datasets flow through a shared HDF5
namespace with memory (LowFive-style) transport, and the consumers stream
steps concurrently with the producer.

Usage:  python examples/wilkins_insitu_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.assets import reference_config
from repro.workflows.wilkins import WilkinsRuntime, parse_wilkins_yaml

STEPS = 4
POINTS_PER_RANK = 16


def producer(comm, ctx):
    """Simulation: every rank computes a block; rank 0 publishes."""
    rng = np.random.default_rng(100 + comm.rank)
    for step in range(STEPS):
        block = rng.random(POINTS_PER_RANK)
        local_sum = float(block.sum())
        total = comm.reduce(local_sum, root=0)
        blocks = comm.gather(block, root=0)
        if comm.rank == 0:
            grid = np.concatenate(blocks)
            particles = rng.random(4 * (step + 1))
            ctx.write("grid", grid, step=step)
            ctx.write("particles", particles, step=step)
            print(f"[producer t={step}] published grid({grid.size}) "
                  f"particles({particles.size}) total_sum={total:.3f}")
    return "produced"


def consumer_grid(comm, ctx):
    """Analysis: consumes grid steps as they appear (memory transport)."""
    sums = []
    for step, grid in ctx.steps("grid"):
        sums.append(float(grid.sum()))
        print(f"[consumer1 t={step}] grid sum = {sums[-1]:.3f}")
    return sums


def consumer_particles(comm, ctx):
    """Visualization stand-in: counts particles per step."""
    counts = []
    for step, particles in ctx.steps("particles"):
        counts.append(len(particles))
        print(f"[consumer2 t={step}] {counts[-1]} particles")
    return counts


def main() -> None:
    yaml_text = reference_config("wilkins")
    print("=== Wilkins workflow configuration (paper ground truth) ===")
    print(yaml_text)
    print()

    config = parse_wilkins_yaml(yaml_text)
    runtime = WilkinsRuntime(
        config,
        {
            "producer": producer,
            "consumer1": consumer_grid,
            "consumer2": consumer_particles,
        },
    )
    results = runtime.run()

    print("\n=== results ===")
    print(f"producer: {results['producer']}")
    print(f"consumer1 grid sums:      {['%.3f' % s for s in results['consumer1']]}")
    print(f"consumer2 particle counts: {results['consumer2']}")
    assert len(results["consumer1"]) == STEPS
    assert results["consumer2"] == [4 * (s + 1) for s in range(STEPS)]
    print("workflow completed: all steps streamed through memory transport")


if __name__ == "__main__":
    main()
