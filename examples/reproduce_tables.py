"""Regenerate every table and figure of the paper in one run.

Prints Tables 1/2/3/5 with paper-vs-measured deltas and the three
Figure 1 heatmap groups.  All sweeps route through the parallel
evaluation runtime: ``--executor`` picks the backend and one shared
result cache spans the whole run, so e.g. the Figure 1 ``original``
rows reuse the epoch-0 generations already produced for Tables 1-3.

Usage:  python examples/reproduce_tables.py [--fast]
            [--executor {serial,threads,mpi,async,batched}] [--workers N]
            [--scheduler {plan,adaptive}]
"""

from __future__ import annotations

import argparse
import time

from repro.core.experiments import (
    run_annotation,
    run_configuration,
    run_fewshot,
    run_prompt_sensitivity,
    run_translation,
)
from repro.data import TABLE1, TABLE2, TABLE3
from repro.reporting import (
    compare_with_paper,
    render_fewshot_table,
    render_figure1,
    render_grid_table,
)
from repro.runtime import (
    AdaptiveScheduler,
    AsyncExecutor,
    BatchingExecutor,
    InMemoryResultCache,
    MpiShardExecutor,
    SerialExecutor,
    ThreadedExecutor,
)


def make_executor(name: str, workers: int):
    if name == "threads":
        return ThreadedExecutor(max_workers=workers)
    if name == "mpi":
        return MpiShardExecutor(nprocs=workers)
    if name == "async":
        return AsyncExecutor(max_concurrency=workers)
    if name == "batched":
        return BatchingExecutor(group_concurrency=workers)
    return SerialExecutor()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="2 trials per cell")
    parser.add_argument(
        "--executor",
        choices=("serial", "threads", "mpi", "async", "batched"),
        default="serial",
        help="runtime execution backend (default: serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="thread / MPI rank / async in-flight / batch group count",
    )
    parser.add_argument(
        "--scheduler", choices=("plan", "adaptive"), default="plan",
        help="dispatch order: plan order, or longest-expected-unit first "
             "(learned online across the tables)",
    )
    args = parser.parse_args()
    epochs = 2 if args.fast else 5

    executor = make_executor(args.executor, args.workers)
    scheduler = AdaptiveScheduler() if args.scheduler == "adaptive" else None
    cache = InMemoryResultCache()
    started = time.perf_counter()

    grid1 = run_configuration(epochs=epochs, executor=executor, cache=cache,
                              scheduler=scheduler)
    print(render_grid_table(grid1, "Table 1: workflow configuration"))
    print()

    grid2 = run_annotation(epochs=epochs, executor=executor, cache=cache,
                              scheduler=scheduler)
    print(render_grid_table(grid2, "Table 2: task code annotation"))
    print()

    grid3 = run_translation(epochs=epochs, executor=executor, cache=cache,
                              scheduler=scheduler)
    print(render_grid_table(grid3, "Table 3: task code translation"))
    print()

    comparison = run_fewshot(epochs=epochs, executor=executor, cache=cache,
                              scheduler=scheduler)
    print(render_fewshot_table(comparison, "Table 5: few-shot vs zero-shot"))
    print()

    for experiment, title in (
        ("configuration", "Figure 1(a): configuration"),
        ("annotation", "Figure 1(b): annotation"),
        ("translation", "Figure 1(c): translation"),
    ):
        results = run_prompt_sensitivity(
            experiment, epochs=1, executor=executor, cache=cache,
            scheduler=scheduler,
        )
        print(render_figure1(results, title))
        print()

    print("=== paper vs measured (BLEU deltas, original prompts) ===")
    for (system, model), paper in sorted(TABLE1.items()):
        print(compare_with_paper(grid1.cell(system, model), paper,
                                 f"T1 {system}/{model}"))
    for (system, model), paper in sorted(TABLE2.items()):
        print(compare_with_paper(grid2.cell(system, model), paper,
                                 f"T2 {system}/{model}"))
    for (direction, model), paper in sorted(TABLE3.items()):
        print(compare_with_paper(grid3.cell(direction, model), paper,
                                 f"T3 {direction[0]}->{direction[1]}/{model}"))

    print(f"\ntotal time: {time.perf_counter() - started:.1f}s "
          f"({epochs} trial(s) per table cell, executor={args.executor}, "
          f"{len(cache)} cached generations)")


if __name__ == "__main__":
    main()
