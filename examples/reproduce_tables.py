"""Regenerate every table and figure of the paper in one run.

Prints Tables 1/2/3/5 with paper-vs-measured deltas and the three
Figure 1 heatmap groups.  All sweeps route through the parallel
evaluation runtime: ``--executor`` picks the backend and one shared
result cache spans the whole run, so e.g. the Figure 1 ``original``
rows reuse the epoch-0 generations already produced for Tables 1-3.

With ``--store PATH_OR_URL`` the run is durable: generations, scores and
one manifest per sweep land in a :class:`repro.persist.RunStore`, so
re-running the script against the same store performs zero model
generations (and N concurrent runs may share one store).  A plain path
opens an on-disk store in this process; ``tcp://host:port`` or
``unix:///path/to.sock`` connects to a shared store server
(``python -m repro.serve``), so many machines hit one warm cache.  All
runtime knobs travel as one :class:`repro.runtime.RunConfig`.  Inspect a
local store with ``python -m repro.persist {stats,verify,gc,ls-runs} PATH``.

``--score-workers N`` pipelines scoring through a
:class:`repro.runtime.ScoringPool` of N worker processes (completed
units are scored while later ones still generate; grids stay
bit-identical); ``--score-workers auto`` hands the choice to an
:class:`repro.runtime.AdaptiveScoringPool`, whose cost model picks a
worker count per run (0 = inline) from the observed per-unit score and
generation costs.  ``--profile`` prints the :mod:`repro.obs` phase
breakdown of the whole script — where the wall time went, phase by
phase — and ``--profile-json PATH`` saves it for
``python -m repro.obs report PATH``.

``--trace`` arms distributed tracing and the metrics registry for the
whole script: every sweep gets a trace id (printed at the end, one line
per run), spans cross the scoring-pool and store-server process
boundaries, and with ``--store`` each run's trace and metrics snapshot
land on its manifest (``python -m repro.obs trace RUN_ID --store ...
--chrome out.json`` exports it later).  ``--trace-chrome PATH``
additionally saves the last sweep's trace as Chrome trace-event JSON,
ready for ``chrome://tracing`` or Perfetto.  Grids are bit-identical
with telemetry on or off.

The fault-tolerance knobs (see :mod:`repro.runtime.faults`) install a
:class:`repro.runtime.FaultPolicy` on every sweep: ``--max-attempts``,
``--retry-budget`` and ``--unit-deadline`` shape the retry loop, and
``--on-failure isolate`` quarantines units that stay down instead of
aborting the run (the failure set lands in the run's manifest; inspect
with ``python -m repro.persist ls-runs --failures PATH``).
``--resume-failed RUN_ID`` (with ``--store``) prints a prior run's
quarantined units, re-runs the sweeps against the same store — only
failed/missing units re-execute, everything else is a cache hit — and
reports ``units_failed`` before → after.

Usage:  python examples/reproduce_tables.py [--fast]
            [--executor {serial,threads,mpi,async,batched}] [--workers N]
            [--scheduler {plan,adaptive}] [--cache {memory,fs,disk}]
            [--store PATH_OR_URL] [--score-workers N|auto]
            [--on-failure {raise,isolate,skip}] [--max-attempts N]
            [--retry-budget N] [--unit-deadline SECONDS]
            [--resume-failed RUN_ID]
            [--profile] [--profile-json PATH]
            [--trace] [--trace-chrome PATH]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time

from repro import obs

from repro.core.experiments import (
    run_annotation,
    run_configuration,
    run_fewshot,
    run_prompt_sensitivity,
    run_translation,
)
from repro.data import TABLE1, TABLE2, TABLE3
from repro.errors import ReproError
from repro.reporting import (
    compare_with_paper,
    render_fewshot_table,
    render_figure1,
    render_grid_table,
)
from repro.runtime import (
    AdaptiveScheduler,
    AsyncExecutor,
    BatchingExecutor,
    FilesystemResultCache,
    InMemoryResultCache,
    MpiShardExecutor,
    SerialExecutor,
    ThreadedExecutor,
)


class UsageError(Exception):
    """A CLI knob received a value the runtime has no backend for."""


EXECUTORS = ("serial", "threads", "mpi", "async", "batched")
SCHEDULERS = ("plan", "adaptive")
CACHES = ("memory", "fs", "disk")


def make_executor(name: str, workers: int):
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadedExecutor(max_workers=workers)
    if name == "mpi":
        return MpiShardExecutor(nprocs=workers)
    if name == "async":
        return AsyncExecutor(max_concurrency=workers)
    if name == "batched":
        return BatchingExecutor(group_concurrency=workers)
    raise UsageError(f"unknown executor {name!r}; choose from {', '.join(EXECUTORS)}")


def make_scheduler(name: str):
    if name == "plan":
        return None  # runtime default: plan order
    if name == "adaptive":
        return AdaptiveScheduler()
    raise UsageError(f"unknown scheduler {name!r}; choose from {', '.join(SCHEDULERS)}")


def make_scoring(spec: str):
    if spec == "auto":
        from repro.runtime import AdaptiveScoringPool

        return AdaptiveScoringPool()
    try:
        workers = int(spec)
    except ValueError:
        raise UsageError(
            f"--score-workers takes a worker count or 'auto', got {spec!r}"
        ) from None
    if workers < 0:
        raise UsageError(f"--score-workers must be >= 0, got {workers}")
    if workers == 0:
        return None
    from repro.runtime import ScoringPool

    return ScoringPool(max_workers=workers)


def make_faults(args):
    """A :class:`repro.runtime.FaultPolicy`, or None when untouched.

    The default run carries no fault layer at all (zero overhead);
    touching any fault knob — or resuming, which implies quarantine
    semantics — builds one policy shared by every sweep.
    """
    tuned = (
        args.on_failure,
        args.max_attempts,
        args.retry_budget,
        args.unit_deadline,
    )
    if all(value is None for value in tuned) and args.resume_failed is None:
        return None
    from repro.runtime import FaultPolicy, RetryPolicy

    retry = (
        RetryPolicy()
        if args.max_attempts is None
        else RetryPolicy(max_attempts=args.max_attempts)
    )
    on_failure = args.on_failure
    if on_failure is None:
        on_failure = "isolate" if args.resume_failed is not None else "raise"
    return FaultPolicy(
        retry=retry,
        unit_deadline_s=args.unit_deadline,
        retry_budget=args.retry_budget,
        on_failure=on_failure,
    )


def make_cache(name: str, store):
    if name == "memory":
        return InMemoryResultCache()
    if name == "fs":
        return FilesystemResultCache()
    if name == "disk":
        if store is None:
            raise UsageError("--cache disk requires --store PATH_OR_URL")
        return store.result_cache  # local or remote: same facade
    raise UsageError(f"unknown cache {name!r}; choose from {', '.join(CACHES)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="2 trials per cell")
    parser.add_argument(
        "--executor",
        default="serial",
        help=f"runtime execution backend: {', '.join(EXECUTORS)} (default: serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="thread / MPI rank / async in-flight / batch group count",
    )
    parser.add_argument(
        "--scheduler", default="plan",
        help=f"dispatch order: {', '.join(SCHEDULERS)} (default: plan; adaptive = "
             "longest-expected-unit first, learned online across the tables)",
    )
    parser.add_argument(
        "--cache", default=None,
        help=f"result-cache backend: {', '.join(CACHES)} (default: memory, "
             "or disk when --store is given)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH_OR_URL",
        help="durable run store: a directory path (on-disk cross-process "
             "cache plus one recorded manifest per sweep; see python -m "
             "repro.persist), or tcp://host:port / unix:///path/to.sock for "
             "a shared store server (python -m repro.serve)",
    )
    parser.add_argument(
        "--score-workers", default="0", metavar="N",
        help="pipeline scoring through N worker processes (0 = inline "
             "scoring on the run thread; 'auto' = an AdaptiveScoringPool "
             "sizes the pool per run from its learned cost model; grids "
             "are bit-identical either way)",
    )
    parser.add_argument(
        "--on-failure", default=None, choices=("raise", "isolate", "skip"),
        help="what to do with a unit that stays down after retries: raise "
             "(default, abort the sweep), isolate (quarantine it, record it "
             "on the manifest, keep going) or skip (quarantine and assemble "
             "partial results)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="attempts per unit for transient provider errors (default: 3)",
    )
    parser.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="cap the total retries shared by a whole run (default: unlimited)",
    )
    parser.add_argument(
        "--unit-deadline", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock deadline across all attempts "
             "(default: none)",
    )
    parser.add_argument(
        "--resume-failed", default=None, metavar="RUN_ID",
        help="re-run only the units a prior run quarantined (requires "
             "--store; find run ids with python -m repro.persist ls-runs "
             "--failures PATH)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the repro.obs phase breakdown of the whole script",
    )
    parser.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="save the phase profile as JSON (implies --profile; render "
             "later with python -m repro.obs report PATH)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="arm distributed tracing + the metrics registry: one trace "
             "per sweep (ids printed at the end), spans crossing scoring "
             "pool and store server, trace + metrics on each manifest "
             "when --store is given",
    )
    parser.add_argument(
        "--trace-chrome", default=None, metavar="PATH",
        help="save the last sweep's trace as Chrome trace-event JSON "
             "(implies --trace; open in chrome://tracing or Perfetto)",
    )
    args = parser.parse_args()
    epochs = 2 if args.fast else 5

    from repro.errors import HarnessError, StoreError

    try:
        store = None
        if args.store is not None:
            from repro.serve import open_store

            store = open_store(args.store)
        executor = make_executor(args.executor, args.workers)
        scheduler = make_scheduler(args.scheduler)
        cache_name = args.cache or ("disk" if store is not None else "memory")
        cache = make_cache(cache_name, store)
        scoring = make_scoring(args.score_workers)
        faults = make_faults(args)
        from repro.runtime import RunConfig

        config = RunConfig(
            executor=executor, cache=cache, scheduler=scheduler, store=store,
            scoring=scoring, faults=faults,
            store_url=args.store if store is not None else None,
        )
        resume_prior = None
        if args.resume_failed is not None:
            if store is None:
                raise UsageError("--resume-failed requires --store PATH")
            resume_prior = store.manifest(args.resume_failed)
            if resume_prior is None:
                raise UsageError(
                    f"store at {args.store} has no recorded run "
                    f"{args.resume_failed!r}"
                )
    except (UsageError, StoreError, HarnessError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)
    if resume_prior is not None:
        print(f"resuming after {resume_prior.describe()}")
        for failure in resume_prior.failures:
            print(f"    {failure.describe()}")
        print()
    profiling = args.profile or args.profile_json is not None
    profile_ctx = obs.profiling() if profiling else contextlib.nullcontext()
    tracing = args.trace or args.trace_chrome is not None
    traces: list = []
    trace_ctx = (
        obs.tracing(obs.Tracer(on_finish=traces.append))
        if tracing
        else contextlib.nullcontext()
    )
    meter_ctx = obs.metering() if tracing else contextlib.nullcontext()
    started = time.perf_counter()

    try:
        with profile_ctx as prof, trace_ctx, meter_ctx:
            grid1 = run_configuration(epochs=epochs, config=config)
            print(render_grid_table(grid1, "Table 1: workflow configuration"))
            print()

            grid2 = run_annotation(epochs=epochs, config=config)
            print(render_grid_table(grid2, "Table 2: task code annotation"))
            print()

            grid3 = run_translation(epochs=epochs, config=config)
            print(render_grid_table(grid3, "Table 3: task code translation"))
            print()

            comparison = run_fewshot(epochs=epochs, config=config)
            print(render_fewshot_table(comparison, "Table 5: few-shot vs zero-shot"))
            print()

            for experiment, title in (
                ("configuration", "Figure 1(a): configuration"),
                ("annotation", "Figure 1(b): annotation"),
                ("translation", "Figure 1(c): translation"),
            ):
                results = run_prompt_sensitivity(experiment, epochs=1, config=config)
                print(render_figure1(results, title))
                print()

        print("=== paper vs measured (BLEU deltas, original prompts) ===")
        for (system, model), paper in sorted(TABLE1.items()):
            print(compare_with_paper(grid1.cell(system, model), paper,
                                     f"T1 {system}/{model}"))
        for (system, model), paper in sorted(TABLE2.items()):
            print(compare_with_paper(grid2.cell(system, model), paper,
                                     f"T2 {system}/{model}"))
        for (direction, model), paper in sorted(TABLE3.items()):
            print(compare_with_paper(grid3.cell(direction, model), paper,
                                     f"T3 {direction[0]}->{direction[1]}/{model}"))

        print(f"\ntotal time: {time.perf_counter() - started:.1f}s "
              f"({epochs} trial(s) per table cell, executor={args.executor}, "
              f"{len(cache)} cached generations)")
    finally:
        # release worker processes and snapshot the store index even when
        # a sweep fails midway; query the summary first — a remote client
        # cannot answer stats once its connection pool is closed
        if scoring is not None:
            scoring.close()
        store_summary = healed = None
        if store is not None:
            try:
                store_summary = (f"store: {store.stats().describe()}; "
                                 f"{len(store.manifests())} run manifest(s) "
                                 "recorded")
                if resume_prior is not None:
                    healed = store.latest_manifest(resume_prior.plan_fingerprint)
            except ReproError:
                pass  # mid-sweep failure already propagating; don't mask it
            store.close()
    if store_summary is not None:
        print(store_summary)
    if resume_prior is not None:
        after = len(healed.failures) if healed is not None else 0
        print(f"resume-failed: units_failed {len(resume_prior.failures)} "
              f"-> {after}")
    if tracing:
        print(f"\n=== traces ({len(traces)} run(s)) ===")
        for trace in traces:
            print(f"{trace.trace_id}  {trace.name:<32} "
                  f"{len(trace.spans):>5} spans  {trace.root.duration_s:.2f}s")
        if store is not None:
            print("[persisted on each run manifest; export with python -m "
                  "repro.obs trace RUN_ID --store ... --chrome out.json]")
        if args.trace_chrome is not None and traces:
            traces[-1].write_chrome(args.trace_chrome)
            print(f"[chrome trace of {traces[-1].name} saved to "
                  f"{args.trace_chrome}; open in chrome://tracing or Perfetto]")
    if profiling:
        profile = prof.snapshot()
        print()
        print(obs.render_profile(
            profile, title="phase profile (whole script, repro.obs)"
        ))
        if args.profile_json is not None:
            payload = obs.profile_payload(
                profile,
                script="reproduce_tables",
                executor=args.executor,
                epochs=epochs,
                wall_seconds=time.perf_counter() - started,
            )
            with open(args.profile_json, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            print(f"\n[profile saved to {args.profile_json}; render with "
                  f"python -m repro.obs report {args.profile_json}]")


if __name__ == "__main__":
    main()
