"""Simulated MPI: point-to-point, collectives, split, launcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi import ANY_SOURCE, ANY_TAG, MAX, MIN, PROD, SUM, Status, mpiexec


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        result = mpiexec(prog, 2)
        assert result[1] == {"x": 1}

    def test_wildcard_source_and_status(self):
        def prog(comm):
            if comm.rank == 0:
                received = []
                for _ in range(comm.size - 1):
                    status = Status()
                    payload = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
                    received.append((status.source, payload))
                return sorted(received)
            comm.send(comm.rank * 10, dest=0, tag=comm.rank)
            return None

        result = mpiexec(prog, 4)
        assert result[0] == [(1, 10), (2, 20), (3, 30)]

    def test_tag_matching_out_of_order(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert mpiexec(prog, 2)[1] == ("first", "second")

    def test_recv_timeout(self):
        def prog(comm):
            if comm.rank == 1:
                with pytest.raises(CommunicatorError, match="timed out"):
                    comm.recv(source=0, timeout=0.05)
            return True

        mpiexec(prog, 2)

    def test_isend_irecv(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(42, dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        assert mpiexec(prog, 2)[1] == 42


class TestCollectives:
    def test_bcast(self):
        def prog(comm):
            return comm.bcast("hello" if comm.rank == 0 else None, root=0)

        assert mpiexec(prog, 4).returns == ["hello"] * 4

    def test_scatter_gather_roundtrip(self):
        def prog(comm):
            part = comm.scatter(
                [i * i for i in range(comm.size)] if comm.rank == 0 else None
            )
            return comm.gather(part, root=0)

        result = mpiexec(prog, 4)
        assert result[0] == [0, 1, 4, 9]
        assert result[1] is None

    def test_scatter_wrong_length_raises(self):
        def prog(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError):
                    comm.scatter([1, 2])  # size is 3
                comm.send("unblock", dest=1)
                comm.send("unblock", dest=2)
            else:
                comm.recv(source=0, timeout=5.0)
            return True

        # avoid non-root ranks waiting on a scatter that never happens
        def safe(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError):
                    comm.scatter([1, 2])
            return True

        mpiexec(safe, 3)

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.rank)

        assert mpiexec(prog, 3).returns == [[0, 1, 2]] * 3

    def test_alltoall(self):
        def prog(comm):
            return comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)])

        result = mpiexec(prog, 3)
        assert result[2] == ["0->2", "1->2", "2->2"]

    @pytest.mark.parametrize(
        "op,expected",
        [(SUM, 6), (PROD, 6), (MIN, 1), (MAX, 3)],
    )
    def test_reduce_ops(self, op, expected):
        def prog(comm):
            return comm.reduce(comm.rank + 1, op=op, root=0)

        result = mpiexec(prog, 3)
        assert result[0] == expected
        assert result[1] is None

    def test_allreduce_array(self):
        def prog(comm):
            return comm.allreduce(np.full(4, comm.rank, dtype=float), SUM)

        result = mpiexec(prog, 3)
        for rank in range(3):
            assert np.allclose(result[rank], 3.0)

    def test_reduce_deterministic_order(self):
        def prog(comm):
            return comm.reduce(float(comm.rank) * 0.1, SUM, root=0)

        a = mpiexec(prog, 5)[0]
        b = mpiexec(prog, 5)[0]
        assert a == b

    def test_barrier_completes(self):
        def prog(comm):
            for _ in range(5):
                comm.barrier()
            return comm.rank

        assert mpiexec(prog, 4).returns == [0, 1, 2, 3]


class TestSplit:
    def test_split_renumbers(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.rank, sub.size)

        result = mpiexec(prog, 5)
        # evens: world ranks 0,2,4 -> sub ranks 0,1,2 ; odds: 1,3 -> 0,1
        assert result[0] == (0, 3)
        assert result[1] == (0, 2)
        assert result[4] == (2, 3)

    def test_split_isolated_collectives(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            return sub.allreduce(1, SUM)

        result = mpiexec(prog, 5)
        assert result.returns == [3, 2, 3, 2, 3]

    def test_negative_color_returns_none(self):
        def prog(comm):
            return comm.split(-1 if comm.rank == 0 else 0) is None

        result = mpiexec(prog, 3)
        assert result[0] is True
        assert result[1] is False

    def test_key_orders_group(self):
        def prog(comm):
            sub = comm.split(0, key=-comm.rank)  # reverse order
            return sub.rank

        result = mpiexec(prog, 3)
        assert result.returns == [2, 1, 0]


class TestLauncher:
    def test_returns_per_rank(self):
        result = mpiexec(lambda comm: comm.rank * 2, 4)
        assert result.returns == [0, 2, 4, 6]
        assert result.nprocs == 4

    def test_exception_propagates_with_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(CommunicatorError, match="rank 2"):
            mpiexec(prog, 3)

    def test_invalid_nprocs(self):
        with pytest.raises(CommunicatorError):
            mpiexec(lambda comm: None, 0)

    def test_kwargs_forwarded(self):
        def prog(comm, base, offset=0):
            return base + offset + comm.rank

        result = mpiexec(prog, 2, 10, offset=5)
        assert result.returns == [15, 16]
