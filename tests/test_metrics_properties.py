"""Property-based tests (hypothesis) for the similarity metrics.

Invariants:

* scores live in [0, 100] for arbitrary text pairs;
* identity scores 100 for non-trivial text;
* metrics are deterministic;
* appending garbage to a hypothesis never raises;
* single-character corruption cannot *increase* ChrF identity.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import bleu, chrf
from repro.metrics.tokenizers import tokenize_13a

text = st.text(
    alphabet=st.characters(codec="ascii", exclude_categories=("Cc", "Cs")),
    min_size=0,
    max_size=200,
)
word_text = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=4, max_size=30
).map(" ".join)


@settings(max_examples=60, deadline=None)
@given(hyp=text, ref=word_text)
def test_bleu_bounds(hyp, ref):
    score = bleu(hyp, ref)
    assert 0.0 <= score <= 100.0


@settings(max_examples=60, deadline=None)
@given(hyp=text, ref=word_text)
def test_chrf_bounds(hyp, ref):
    score = chrf(hyp, ref)
    assert 0.0 <= score <= 100.0


@settings(max_examples=40, deadline=None)
@given(ref=word_text)
def test_identity_scores_100(ref):
    assert abs(bleu(ref, ref) - 100.0) < 1e-6
    assert abs(chrf(ref, ref) - 100.0) < 1e-6


@settings(max_examples=40, deadline=None)
@given(hyp=word_text, ref=word_text)
def test_metrics_deterministic(hyp, ref):
    assert bleu(hyp, ref) == bleu(hyp, ref)
    assert chrf(hyp, ref) == chrf(hyp, ref)


@settings(max_examples=40, deadline=None)
@given(ref=word_text, junk=st.text(alphabet="xyz!@", min_size=1, max_size=20))
def test_appending_junk_never_beats_identity(ref, junk):
    corrupted = ref + " " + junk
    assert bleu(corrupted, ref) <= 100.0
    assert chrf(corrupted, ref) <= chrf(ref, ref) + 1e-9


@settings(max_examples=40, deadline=None)
@given(ref=word_text)
def test_tokenizer_roundtrip_stability(ref):
    # tokenizing the joined token stream must be a fixed point
    once = tokenize_13a(ref)
    twice = tokenize_13a(" ".join(once))
    assert once == twice


@settings(max_examples=40, deadline=None)
@given(ref=word_text, n=st.integers(min_value=1, max_value=3))
def test_truncation_monotone_in_brevity(ref, n):
    # dropping a strict prefix of words cannot beat the full hypothesis
    words = ref.split()
    truncated = " ".join(words[: max(1, len(words) // (n + 1))])
    assert bleu(truncated, ref) <= bleu(ref, ref) + 1e-9
