"""Wilkins substrate: YAML config, graph matching, runtime, validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assets import reference_config
from repro.errors import ConfigError, WorkflowError
from repro.workflows.wilkins import (
    WilkinsRuntime,
    build_graph,
    parse_wilkins_yaml,
    render_wilkins_yaml,
    validate_config,
)


class TestConfigParsing:
    def test_paper_reference_parses(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))
        assert [t.func for t in config.tasks] == ["producer", "consumer1", "consumer2"]
        producer = config.task("producer")
        assert producer.nprocs == 3
        assert producer.outports[0].filename == "outfile.h5"
        assert [d.name for d in producer.outports[0].dsets] == [
            "/group1/grid", "/group1/particles",
        ]
        assert producer.outports[0].dsets[0].transport == "memory"

    def test_total_procs(self):
        assert parse_wilkins_yaml(reference_config("wilkins")).total_procs() == 5

    def test_unknown_task_field(self):
        bad = reference_config("wilkins").replace("nprocs:", "processes:")
        with pytest.raises(ConfigError, match="unknown task field"):
            parse_wilkins_yaml(bad)

    def test_unknown_top_level(self):
        with pytest.raises(ConfigError, match="unknown top-level"):
            parse_wilkins_yaml("workflow: {}\ntasks:\n- func: a\n  nprocs: 1")

    def test_missing_func(self):
        with pytest.raises(ConfigError, match="missing required field 'func'"):
            parse_wilkins_yaml("tasks:\n- nprocs: 1")

    def test_duplicate_func(self):
        with pytest.raises(ConfigError, match="duplicate task func"):
            parse_wilkins_yaml("tasks:\n- func: a\n- func: a")

    def test_port_requires_dsets(self):
        with pytest.raises(ConfigError, match="dsets"):
            parse_wilkins_yaml(
                "tasks:\n- func: a\n  outports:\n  - filename: f.h5"
            )

    def test_dset_flags_validated(self):
        with pytest.raises(ConfigError, match="file/memory"):
            parse_wilkins_yaml(
                "tasks:\n- func: a\n  outports:\n  - filename: f.h5\n"
                "    dsets:\n    - name: /d\n      file: 2"
            )

    def test_both_flags_zero_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            parse_wilkins_yaml(
                "tasks:\n- func: a\n  outports:\n  - filename: f.h5\n"
                "    dsets:\n    - name: /d\n      file: 0\n      memory: 0"
            )

    def test_malformed_yaml(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_wilkins_yaml("tasks: [unclosed")

    def test_render_roundtrip(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))
        again = parse_wilkins_yaml(render_wilkins_yaml(config))
        assert [t.func for t in again.tasks] == [t.func for t in config.tasks]
        assert again.task("producer").nprocs == 3

    def test_render_matches_paper_layout(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))
        assert render_wilkins_yaml(config) == reference_config("wilkins")


class TestGraphBuilding:
    def test_three_node_links(self):
        graph = build_graph(parse_wilkins_yaml(reference_config("wilkins")))
        assert graph.sources() == ["producer"]
        assert sorted(graph.sinks()) == ["consumer1", "consumer2"]
        link = graph.producers_of("consumer1")[0]
        assert link.dataset == "/group1/grid"
        assert link.transport == "memory"

    def test_glob_matching(self):
        text = reference_config("wilkins").replace(
            "- name: /group1/grid\n      file: 0\n      memory: 1\n"
            "- func: consumer2",
            "- name: /group1/*\n      file: 0\n      memory: 1\n"
            "- func: consumer2",
        )
        graph = build_graph(parse_wilkins_yaml(text))
        # consumer1's glob now matches both datasets
        assert len(graph.producers_of("consumer1")) == 2

    def test_unmatched_inport_rejected(self):
        text = reference_config("wilkins").replace("/group1/particles", "/group1/mesh", 1)
        with pytest.raises(ConfigError, match="no producer"):
            build_graph(parse_wilkins_yaml(text))


class TestRuntime:
    def _library(self):
        def producer(comm, ctx):
            rng = np.random.default_rng(7 + comm.rank)
            for step in range(3):
                local = rng.random(4)
                gathered = comm.gather(local, root=0)
                if comm.rank == 0:
                    ctx.write("grid", np.concatenate(gathered), step=step)
                    ctx.write("particles", np.arange(step + 1.0), step=step)
            return "ok"

        def consumer1(comm, ctx):
            return [float(np.sum(d)) for _s, d in ctx.steps("grid")]

        def consumer2(comm, ctx):
            return [len(d) for _s, d in ctx.steps("particles")]

        return {"producer": producer, "consumer1": consumer1, "consumer2": consumer2}

    def test_three_node_memory_transport(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))
        results = WilkinsRuntime(config, self._library()).run()
        assert results["producer"] == "ok"
        assert len(results["consumer1"]) == 3
        assert results["consumer2"] == [1, 2, 3]

    def test_file_transport_waits_for_close(self):
        text = reference_config("wilkins").replace("file: 0", "file: 1").replace(
            "memory: 1", "memory: 0"
        )
        config = parse_wilkins_yaml(text)

        def consumer1(comm, ctx):
            # file transport: read after producer completes
            return float(np.sum(ctx.read("grid", step=2)))

        library = self._library()
        library["consumer1"] = consumer1
        results = WilkinsRuntime(config, library).run()
        assert isinstance(results["consumer1"], float)

    def test_producer_runs_on_nprocs_ranks(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))
        sizes = []

        def producer(comm, ctx):
            sizes.append(comm.size)
            if comm.rank == 0:
                ctx.write("grid", np.zeros(2), step=0)
                ctx.write("particles", np.zeros(2), step=0)

        library = self._library()
        library["producer"] = producer
        WilkinsRuntime(config, library).run()
        assert sizes[:3] == [3, 3, 3]

    def test_missing_callable_rejected(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))
        with pytest.raises(WorkflowError, match="no callables"):
            WilkinsRuntime(config, {"producer": lambda c, x: None})

    def test_task_failure_propagates(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))

        def bad(comm, ctx):
            raise RuntimeError("task exploded")

        library = self._library()
        library["consumer2"] = bad
        with pytest.raises(WorkflowError, match="consumer2"):
            WilkinsRuntime(config, library, timeout=5.0).run()

    def test_unknown_dataset_in_context(self):
        config = parse_wilkins_yaml(reference_config("wilkins"))

        def bad_producer(comm, ctx):
            ctx.write("nonexistent", np.zeros(1))

        library = self._library()
        library["producer"] = bad_producer
        with pytest.raises(WorkflowError, match="producer"):
            WilkinsRuntime(config, library, timeout=5.0).run()


class TestValidator:
    def test_reference_ok(self):
        assert validate_config(reference_config("wilkins")).ok

    def test_o3_zero_shot_schema_flagged(self):
        from repro.data.case_studies import TABLE6_FLAGGED_FIELDS, TABLE6_ZEROSHOT

        report = validate_config(TABLE6_ZEROSHOT)
        flagged = {d.symbol for d in report.hallucinations()}
        assert set(TABLE6_FLAGGED_FIELDS) <= flagged

    def test_suggestions_point_to_real_fields(self):
        report = validate_config("tasks:\n- func: a\n  nprocs: 1\n  inputs:\n  - x")
        by_symbol = {d.symbol: d for d in report.hallucinations()}
        assert by_symbol["inputs"].suggestion == "inports"

    def test_task_code_rejected_as_structure_error(self):
        report = validate_config("#include <stdio.h>\nint main() { return 0; }")
        assert any(d.code == "structure" for d in report.errors())

    def test_unparseable_yaml_still_reports_fields(self):
        broken = "workflow:\n  tasks:\n    producer:\n      command: [unclosed"
        report = validate_config(broken)
        assert any(d.code == "parse-error" for d in report.errors())
        flagged = {d.symbol for d in report.hallucinations()}
        assert "command" in flagged or "workflow" in flagged
