"""API registries, diagnostics, validation reports, system registry."""

from __future__ import annotations

import pytest

from repro.errors import WorkflowError
from repro.workflows import (
    ApiFunction,
    ApiRegistry,
    Diagnostic,
    Severity,
    ValidationReport,
    all_systems,
    get_system,
)
from repro.workflows.validators import check_api_usage, find_line, scan_prefixed_calls


class TestApiRegistry:
    def make(self) -> ApiRegistry:
        return ApiRegistry(
            "Test",
            [
                ApiFunction("henson_yield", required=True),
                ApiFunction("henson_save_int"),
                ApiFunction("procs", "keyword"),
            ],
        )

    def test_known(self):
        reg = self.make()
        assert reg.known("henson_yield")
        assert not reg.known("henson_put")
        assert "henson_yield" in reg

    def test_names_by_kind(self):
        reg = self.make()
        assert reg.names("keyword") == ["procs"]
        assert len(reg.names()) == 3

    def test_required_names(self):
        assert self.make().required_names() == ["henson_yield"]

    def test_suggest(self):
        assert self.make().suggest("henson_yeild") == "henson_yield"
        assert self.make().suggest("zzzzz") is None

    def test_len(self):
        assert len(self.make()) == 3


class TestValidationReport:
    def test_ok_without_errors(self):
        report = ValidationReport("X", "config")
        assert report.ok
        report.diagnostics.append(
            Diagnostic(Severity.WARNING, "structure", "meh")
        )
        assert report.ok

    def test_error_flips_ok(self):
        report = ValidationReport("X", "config")
        report.diagnostics.append(
            Diagnostic(Severity.ERROR, "nonexistent-api", "bad", symbol="x")
        )
        assert not report.ok
        assert len(report.errors()) == 1
        assert len(report.hallucinations()) == 1

    def test_render_includes_location_and_hint(self):
        d = Diagnostic(
            Severity.ERROR, "unknown-field", "'inputs' is wrong",
            line=4, symbol="inputs", suggestion="inports",
        )
        text = d.render()
        assert "line 4" in text and "inports" in text


class TestScanHelpers:
    def test_scan_prefixed_calls_lines(self):
        text = "a\nhenson_put(x);\nhenson_yield();"
        calls = scan_prefixed_calls(text, r"henson_\w+")
        assert ("henson_put", 2) in calls
        assert ("henson_yield", 3) in calls

    def test_check_api_usage_flags_and_requires(self):
        reg = ApiRegistry("T", [ApiFunction("henson_yield", required=True)])
        diags = check_api_usage(
            "henson_put();", reg, r"henson_\w+", required=["henson_yield"]
        )
        codes = {d.code for d in diags}
        assert codes == {"nonexistent-api", "missing-api"}

    def test_find_line(self):
        assert find_line("a\nb\nc", "b") == 2
        assert find_line("a", "z") is None


class TestSystemRegistry:
    def test_all_five(self):
        names = [s.name for s in all_systems()]
        assert names == ["adios2", "henson", "parsl", "pycompss", "wilkins"]

    def test_aliases_and_case(self):
        assert get_system("ADIOS").name == "adios2"
        assert get_system("Parsl_sim").name == "parsl"

    def test_unknown_raises(self):
        with pytest.raises(WorkflowError, match="unknown workflow system"):
            get_system("airflow")

    def test_exclusion_semantics_match_paper(self):
        # configuration: PyCOMPSs/Parsl excluded; annotation: Wilkins excluded
        assert not get_system("parsl").supports_configuration
        assert not get_system("pycompss").supports_configuration
        assert not get_system("wilkins").supports_annotation
        assert get_system("adios2").supports_configuration
        assert get_system("adios2").supports_annotation
